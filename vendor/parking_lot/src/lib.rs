//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API.
//! A poisoned std lock is recovered by taking the inner guard — matching
//! `parking_lot`'s semantics, where a panicking holder simply unlocks.

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader–writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
