//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to crates.io, so
//! the few external APIs the code actually uses are provided by small
//! local crates under `vendor/`.  This one supplies the [`RngCore`]
//! trait that `sdalloc-sim`'s deterministic xoshiro256++ generator
//! implements; the generator itself has always been ours (exact
//! reproducibility is a requirement, see `crates/sim/src/rng.rs`).
//!
//! Only the surface the workspace uses is implemented.  If code starts
//! needing distributions or seeding helpers, extend this crate rather
//! than reaching for the real `rand` — determinism rules in
//! `cargo xtask check` forbid entropy-seeded generators anyway.

/// Error type for fallible byte-filling; our generators never fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RNG failure")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible for every generator in this workspace.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
