//! Minimal epoch-based deferred reclamation for a single published
//! pointer — the `ArcSwap`-equivalent primitive behind the runtime
//! crate's lock-free snapshot read path.
//!
//! ## Model
//!
//! An [`ArcSwap<T>`] holds the *current* `Arc<T>` behind an atomic
//! pointer.  A writer publishes a replacement with one atomic swap
//! ([`ArcSwap::store`]); the previous value is *retired*, not freed.
//! Readers register a [`Reader`] handle (one per thread), and each
//! load pins the handle's epoch slot, reads the pointer, and returns a
//! [`Guard`] borrowing the value — no lock, no allocation, no
//! reference-count traffic on the hot path.  [`Reader::load_full`]
//! promotes the pinned borrow to an owned `Arc<T>` (one refcount
//! increment) that remains valid arbitrarily long after unpinning.
//!
//! ## Reclamation safety argument
//!
//! Every atomic access uses `SeqCst`, so all operations fall into one
//! total order.  The writer retires as:
//!
//! 1. `old = current.swap(new)`
//! 2. `re = epoch.fetch_add(1) + 1` — the *retirement epoch*
//! 3. push `(re, old)` on the retired list, then try to collect
//!
//! A reader pins as: read `epoch` into `e`, store `e` in its slot,
//! *then* read `current`.  Collection frees a retired `(re, old)` only
//! if every registered slot is unpinned or pinned at `v >= re`.
//!
//! * If a reader's `current` read returned `old`, it preceded the swap
//!   (step 1) in the total order, so its slot store — earlier still —
//!   is visible to any collect scan that runs after the swap, and the
//!   pinned value `e` was read from `epoch` before step 2, hence
//!   `e < re`: the scan keeps `old` alive.
//! * If a reader pins at `v >= re`, its `epoch` read happened after
//!   step 2, therefore after the swap, therefore its `current` read
//!   can only observe `new` (or newer) — it cannot hold `old`.
//!
//! So a value is freed only when no guard can possibly refer to it;
//! a guard held forever blocks its snapshot's reclamation forever
//! (the property pinned by `pinned_reader_blocks_reclamation` below).
//!
//! Up to [`MAX_READERS`] handles use epoch slots; further handles (and
//! [`ArcSwap::load_full_slow`]) fall back to pinning via the retired
//! list's mutex, which excludes collection for the duration of the
//! load instead — strictly slower, never unsound.
//!
//! This module is the one place in the workspace (outside the bench
//! harness's counting allocator) that needs `unsafe`: raw-pointer
//! round-trips through `Arc::into_raw`/`from_raw` and the manual
//! strong-count increment, each justified at the site.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError};

/// Maximum reader handles served by lock-free epoch slots; handles
/// beyond this fall back to mutex pinning.
pub const MAX_READERS: usize = 64;

/// Slot value meaning "not currently in a load".
const UNPINNED: u64 = u64::MAX;

struct Inner<T> {
    /// `Arc::into_raw` of the current value.  Never null.
    current: AtomicPtr<T>,
    /// Global epoch, bumped once per retirement.
    epoch: AtomicU64,
    /// Per-reader pin slots: `UNPINNED`, or the epoch the reader
    /// pinned at.
    slots: [AtomicU64; MAX_READERS],
    /// Bitmap of registered slots.
    in_use: AtomicU64,
    /// Retired `(retirement epoch, Arc::into_raw)` pairs awaiting a
    /// safe moment to drop.  Doubles as the fallback pin lock: a
    /// holder of this mutex excludes collection.
    retired: Mutex<Vec<(u64, *const T)>>,
}

// SAFETY: the raw pointers in `current` and `retired` are owned
// `Arc<T>` references managed exclusively by this module; they are
// only dereferenced (readers) while reclamation is excluded by the
// epoch protocol or the retired mutex, and only dropped once no
// reader can hold them.  Sharing them across threads is exactly as
// safe as sharing the `Arc<T>` they came from.
unsafe impl<T: Send + Sync> Send for Inner<T> {}
unsafe impl<T: Send + Sync> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // SAFETY: by uniqueness of `&mut self` no reader exists any
        // more; every raw pointer here is an owned Arc reference that
        // has not been reclaimed yet.
        unsafe {
            drop(Arc::from_raw(self.current.load(SeqCst).cast_const()));
            let retired = self
                .retired
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .split_off(0);
            for (_, ptr) in retired {
                drop(Arc::from_raw(ptr));
            }
        }
    }
}

/// A single published `Arc<T>` with lock-free reads and epoch-deferred
/// reclamation.  Clone the cell to share it; clones refer to the same
/// published value.
pub struct ArcSwap<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for ArcSwap<T> {
    fn clone(&self) -> Self {
        ArcSwap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").finish_non_exhaustive()
    }
}

impl<T: Send + Sync> ArcSwap<T> {
    /// Create a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap {
            inner: Arc::new(Inner {
                current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
                epoch: AtomicU64::new(0),
                slots: [const { AtomicU64::new(UNPINNED) }; MAX_READERS],
                in_use: AtomicU64::new(0),
                retired: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Publish `new`, retiring the previous value for deferred
    /// reclamation, and opportunistically collect whatever retirements
    /// are already safe.  Any thread may call this; the snapshot
    /// writer is the intended single caller.
    pub fn store(&self, new: Arc<T>) {
        let old = self
            .inner
            .current
            .swap(Arc::into_raw(new).cast_mut(), SeqCst);
        let re = self.inner.epoch.fetch_add(1, SeqCst) + 1;
        let mut retired = self
            .inner
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        retired.push((re, old.cast_const()));
        Self::collect_locked(&self.inner, &mut retired);
    }

    /// Attempt reclamation of retired values; returns how many were
    /// freed.  `store` already collects — this exists for tests and
    /// for writers that want bounded retire-list length while idle.
    pub fn try_collect(&self) -> usize {
        let mut retired = self
            .inner
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Self::collect_locked(&self.inner, &mut retired)
    }

    /// Number of retired values still awaiting reclamation.
    pub fn retired_len(&self) -> usize {
        self.inner
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn collect_locked(inner: &Inner<T>, retired: &mut Vec<(u64, *const T)>) -> usize {
        if retired.is_empty() {
            return 0;
        }
        // The oldest epoch any registered reader is pinned at; nothing
        // retired at or after a pin may be freed.
        let mut floor = u64::MAX;
        let in_use = inner.in_use.load(SeqCst);
        for (i, slot) in inner.slots.iter().enumerate() {
            if in_use & (1u64 << i) == 0 {
                continue;
            }
            let v = slot.load(SeqCst);
            if v != UNPINNED && v < floor {
                floor = v;
            }
        }
        let before = retired.len();
        retired.retain(|&(re, ptr)| {
            if re <= floor {
                // SAFETY: no registered reader is pinned at an epoch
                // `< re` (see module safety argument), so no guard can
                // refer to this retired value; fallback pinners are
                // excluded because we hold the retired mutex.  The
                // pointer is an owned Arc reference retired exactly
                // once.
                unsafe { drop(Arc::from_raw(ptr)) };
                false
            } else {
                true
            }
        });
        before - retired.len()
    }

    /// Register a reader handle.  The first [`MAX_READERS`] handles
    /// pin through lock-free epoch slots; later ones fall back to
    /// mutex pinning (correct, slower).
    pub fn reader(&self) -> Reader<T> {
        let mut bits = self.inner.in_use.load(SeqCst);
        loop {
            let free = (!bits).trailing_zeros() as usize;
            if free >= MAX_READERS {
                return Reader {
                    inner: Arc::clone(&self.inner),
                    slot: None,
                };
            }
            match self
                .inner
                .in_use
                .compare_exchange(bits, bits | (1u64 << free), SeqCst, SeqCst)
            {
                Ok(_) => {
                    self.inner.slots[free].store(UNPINNED, SeqCst);
                    return Reader {
                        inner: Arc::clone(&self.inner),
                        slot: Some(free),
                    };
                }
                Err(actual) => bits = actual,
            }
        }
    }

    /// Owned copy of the current value via the mutex fallback path.
    /// For writer-side peeks and tests; hot readers use
    /// [`Reader::load`] / [`Reader::load_full`].
    pub fn load_full_slow(&self) -> Arc<T> {
        let retired = self
            .inner
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let ptr = self.inner.current.load(SeqCst).cast_const();
        // SAFETY: holding the retired mutex excludes `collect_locked`,
        // and retired values are dropped only there (or in `Inner::drop`,
        // which cannot run while we hold an `Arc<Inner>`), so whatever
        // `current` holds — even if concurrently swapped out — is a
        // live Arc reference; bumping its count hands us our own.
        unsafe {
            Arc::increment_strong_count(ptr);
            drop(retired);
            Arc::from_raw(ptr)
        }
    }
}

/// A registered reader of an [`ArcSwap`].  One per thread; loads take
/// `&mut self` so a handle can hold at most one pin at a time.
pub struct Reader<T> {
    inner: Arc<Inner<T>>,
    /// `None`: slots were exhausted at registration; pin via the
    /// retired mutex instead.
    slot: Option<usize>,
}

impl<T> std::fmt::Debug for Reader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reader").field("slot", &self.slot).finish()
    }
}

impl<T: Send + Sync> Reader<T> {
    /// Whether this handle got a lock-free epoch slot (false: mutex
    /// fallback).
    pub fn is_lock_free(&self) -> bool {
        self.slot.is_some()
    }

    /// Pin and borrow the current value.  The borrow lives as long as
    /// the returned guard; while any guard from any reader is alive,
    /// the value it refers to cannot be reclaimed.
    pub fn load(&mut self) -> Guard<'_, T> {
        match self.slot {
            Some(slot) => {
                let e = self.inner.epoch.load(SeqCst);
                self.inner.slots[slot].store(e, SeqCst);
                let ptr = self.inner.current.load(SeqCst).cast_const();
                Guard {
                    inner: &self.inner,
                    pin: Pin::Slot(slot),
                    ptr,
                }
            }
            None => {
                let lock = self
                    .inner
                    .retired
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let ptr = self.inner.current.load(SeqCst).cast_const();
                Guard {
                    inner: &self.inner,
                    pin: Pin::Lock { _lock: lock },
                    ptr,
                }
            }
        }
    }

    /// Pin, take an owned `Arc<T>` of the current value, unpin.  The
    /// returned Arc stays valid indefinitely — reclamation of a value
    /// a reader still owns is prevented by its reference count, not by
    /// the epoch.
    pub fn load_full(&mut self) -> Arc<T> {
        let guard = self.load();
        let ptr = guard.ptr;
        // SAFETY: `guard` keeps the value unreclaimed for the duration
        // of the increment; afterwards the bumped strong count keeps
        // it alive on its own.
        unsafe {
            Arc::increment_strong_count(ptr);
            drop(guard);
            Arc::from_raw(ptr)
        }
    }
}

impl<T> Drop for Reader<T> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            self.inner.slots[slot].store(UNPINNED, SeqCst);
            self.inner.in_use.fetch_and(!(1u64 << slot), SeqCst);
        }
    }
}

enum Pin<'r, T> {
    /// Epoch-slot pin to clear on drop.
    Slot(usize),
    /// Mutex fallback: holding the lock *is* the pin.
    Lock {
        _lock: std::sync::MutexGuard<'r, Vec<(u64, *const T)>>,
    },
}

/// A pinned borrow of the current value of an [`ArcSwap`].
pub struct Guard<'r, T> {
    inner: &'r Inner<T>,
    pin: Pin<'r, T>,
    ptr: *const T,
}

impl<T> std::ops::Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `ptr` was read from `current` while pinned; the pin
        // (epoch slot or retired mutex) prevents its reclamation for
        // the guard's lifetime (module safety argument).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        if let Pin::Slot(slot) = self.pin {
            self.inner.slots[slot].store(UNPINNED, SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A value whose drops are observable.
    struct Tracked {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    fn tracked(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Tracked> {
        Arc::new(Tracked {
            value,
            drops: Arc::clone(drops),
        })
    }

    #[test]
    fn store_then_load_roundtrip() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(1, &drops));
        let mut reader = cell.reader();
        assert!(reader.is_lock_free());
        assert_eq!(reader.load().value, 1);
        cell.store(tracked(2, &drops));
        assert_eq!(reader.load().value, 2);
        assert_eq!(cell.load_full_slow().value, 2);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(1, &drops));
        let mut reader = cell.reader();
        let guard = reader.load();
        assert_eq!(guard.value, 1);

        // Replace the value twice while the guard pins generation 1.
        cell.store(tracked(2, &drops));
        cell.store(tracked(3, &drops));
        assert_eq!(cell.try_collect(), 0, "pinned snapshot must survive");
        assert_eq!(drops.load(SeqCst), 0, "nothing freed while pinned");
        assert_eq!(guard.value, 1, "guard still reads its snapshot");

        drop(guard);
        assert_eq!(cell.try_collect(), 2, "both retirees free after unpin");
        assert_eq!(drops.load(SeqCst), 2);
        assert_eq!(reader.load().value, 3);
    }

    #[test]
    fn owned_arc_outlives_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(1, &drops));
        let mut reader = cell.reader();
        let owned = reader.load_full();
        cell.store(tracked(2, &drops));
        // The epoch no longer protects value 1 (the reader unpinned),
        // so the cell's reference is collected …
        cell.try_collect();
        // … but the reader's own Arc keeps the value alive.
        assert_eq!(owned.value, 1);
        assert_eq!(drops.load(SeqCst), 0);
        drop(owned);
        assert_eq!(drops.load(SeqCst), 1, "freed once the last Arc drops");
    }

    #[test]
    fn unpinned_readers_do_not_block_collection() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(0, &drops));
        let _idle = cell.reader(); // registered but never loading
        for i in 1..=10 {
            cell.store(tracked(i, &drops));
        }
        cell.try_collect();
        assert_eq!(drops.load(SeqCst), 10, "only the current value lives");
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn reader_slots_recycle_and_fallback_works() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(7, &drops));
        let mut held: Vec<Reader<Tracked>> = (0..MAX_READERS).map(|_| cell.reader()).collect();
        let mut overflow = cell.reader();
        assert!(!overflow.is_lock_free(), "65th reader must fall back");
        assert_eq!(overflow.load().value, 7);
        assert_eq!(overflow.load_full().value, 7);
        // Dropping a slotted reader frees its slot for reuse.
        held.pop();
        let recycled = cell.reader();
        assert!(recycled.is_lock_free());
    }

    #[test]
    fn fallback_reader_pins_against_collection() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::new(tracked(1, &drops));
        let _slots: Vec<Reader<Tracked>> = (0..MAX_READERS).map(|_| cell.reader()).collect();
        let mut overflow = cell.reader();
        let guard = overflow.load();
        // A store from another thread retires value 1 but must not
        // free it while the fallback guard holds the retired mutex.
        let cell2 = cell.clone();
        let d2 = Arc::clone(&drops);
        let t = std::thread::spawn(move || cell2.store(tracked(2, &d2)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(guard.value, 1);
        assert_eq!(drops.load(SeqCst), 0);
        drop(guard);
        t.join().unwrap();
        cell.try_collect();
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn concurrent_writer_and_readers_see_consistent_snapshots() {
        /// Internally-consistent payload: `double` must always be
        /// `2 * value`; a torn or recycled read would break it.
        struct Pair {
            value: u64,
            double: u64,
        }
        let cell = ArcSwap::new(Arc::new(Pair {
            value: 0,
            double: 0,
        }));
        let stop = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for _ in 0..3 {
            let cell = cell.clone();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut reader = cell.reader();
                let mut seen = 0u64;
                while stop.load(SeqCst) == 0 {
                    let g = reader.load();
                    assert_eq!(g.double, g.value * 2, "torn snapshot");
                    seen = seen.max(g.value);
                    drop(g);
                    let full = reader.load_full();
                    assert_eq!(full.double, full.value * 2, "torn full load");
                }
                seen
            }));
        }
        for i in 1..=5_000u64 {
            cell.store(Arc::new(Pair {
                value: i,
                double: i * 2,
            }));
        }
        stop.store(1, SeqCst);
        for t in threads {
            assert!(t.join().unwrap() <= 5_000);
        }
        cell.try_collect();
        assert_eq!(cell.retired_len(), 0, "quiescent cell fully collected");
        assert_eq!(cell.load_full_slow().value, 5_000);
    }
}
