//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s bounded MPMC channel API over
//! `std::sync::mpsc`.  The workspace only ever uses single-consumer
//! topologies (one background agent thread per handle), so mpsc
//! semantics are sufficient; the `Receiver` is additionally wrapped in a
//! mutex so the type stays `Sync` like crossbeam's.
//!
//! Additionally provides [`epoch`], a minimal epoch-based
//! deferred-reclamation cell (`ArcSwap`-equivalent) for the runtime
//! crate's lock-free snapshot read path: a single writer publishes
//! `Arc<T>` values with an atomic pointer swap while readers pin an
//! epoch, borrow the current value without locking, and optionally
//! promote the borrow to an owned `Arc<T>`.  Retired values are freed
//! only once every pinned reader has moved past their retirement
//! epoch — never while a reader still holds them.

pub mod epoch;

/// Multi-producer channels with a bounded capacity.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting; senders still connected.
        Empty,
        /// No message waiting and every sender has disconnected.
        Disconnected,
    }

    /// Create a channel that holds at most `cap` queued messages.
    /// `cap == 0` gives a rendezvous channel, as in crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.try_recv() {
                Ok(v) => Ok(v),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(41).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(rx.try_recv(), Ok(42));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_senders_share_channel() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap())
            .join()
            .unwrap();
        tx.send(8).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }
}
