//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the SAP wire codec uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with big-endian
//! integer accessors.  Backed by plain `Vec<u8>` — the zero-copy
//! machinery of the real crate is irrelevant at announcement rates
//! (SAP's entire global budget is a few packets per second).

use std::ops::Deref;

/// An immutable byte buffer (cheaply cloneable).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: std::sync::Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: std::sync::Arc::from(data),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: std::sync::Arc::from(v.into_boxed_slice()),
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `cnt` bytes.  Panics if out of bounds.
    fn advance(&mut self, cnt: usize);
    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian u16 and advance.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian u32 and advance.
    fn get_u32(&mut self) -> u32;
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write access to a byte buffer (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEADBEEF);
        let mut rest = [0u8; 3];
        cursor.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [9u8, 8, 7, 6];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 1);
    }
}
