//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, `any::<T>()`, integer-range strategies, tuple strategies,
//! regex-subset string strategies, and the `collection`/`option`
//! modules.  Differences from the real crate, by design:
//!
//! * **Deterministic**: each test's RNG is seeded from its module path
//!   (override with `PROPTEST_SEED=<u64>`), so CI failures reproduce
//!   exactly.
//! * **No shrinking**: a failing case reports its seed and case number
//!   instead of a minimised input.
//! * **Regex strategies** support the subset used here: character
//!   classes `[a-z0-9 ._-]`, alternation `(a|b|c)`, `.`, escapes, and
//!   `{m}`/`{m,n}`/`?`/`+`/`*` quantifiers.

use std::hash::Hasher;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (stable across runs) unless `PROPTEST_SEED`
    /// overrides it.
    pub fn deterministic(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng { state: seed };
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write(name.as_bytes());
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of test values (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's full domain; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix plain uniform values with boundary cases, which is
                // where integer bugs live.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        pattern::any_char(rng)
    }
}

// ---------------------------------------------------------------------
// Integer range strategies
// ---------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let pick = ((u128::from(rng.next_u64()) * width) >> 64) as i128;
                (start as i128 + pick) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

mod pattern {
    use super::TestRng;

    /// Pool for `.`: printable ASCII, whitespace controls, and a few
    /// multibyte scalars so UTF-8 handling gets exercised.
    pub(crate) fn any_char(rng: &mut TestRng) -> char {
        const EXTRA: [char; 8] = ['\t', '\n', '\r', 'à', 'ß', 'λ', '中', '🦀'];
        let roll = rng.below(100);
        if roll < 90 {
            char::from(0x20 + rng.below(0x5F) as u8) // ASCII 0x20..=0x7E
        } else {
            EXTRA[rng.below(EXTRA.len() as u64) as usize]
        }
    }

    enum Atom {
        Class(Vec<char>),
        Alt(Vec<String>),
        Any,
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pat: &str) -> Vec<Piece> {
        let mut chars = pat.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(k) = chars.next() else {
                            panic!("unterminated character class in pattern {pat:?}");
                        };
                        match k {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                                let lo = prev.take().expect("checked above");
                                let hi = chars.next().expect("peeked above");
                                for v in lo..=hi {
                                    set.push(v);
                                }
                            }
                            '\\' => {
                                let esc = chars.next().unwrap_or('\\');
                                if let Some(p) = prev.replace(esc) {
                                    set.push(p);
                                }
                            }
                            _ => {
                                if let Some(p) = prev.replace(k) {
                                    set.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
                    Atom::Class(set)
                }
                '(' => {
                    let mut alts = vec![String::new()];
                    loop {
                        let Some(k) = chars.next() else {
                            panic!("unterminated group in pattern {pat:?}");
                        };
                        match k {
                            ')' => break,
                            '|' => alts.push(String::new()),
                            '\\' => {
                                let esc = chars.next().unwrap_or('\\');
                                alts.last_mut().expect("non-empty").push(esc);
                            }
                            _ => alts.last_mut().expect("non-empty").push(k),
                        }
                    }
                    Atom::Alt(alts)
                }
                '.' => Atom::Any,
                '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
                _ => Atom::Lit(c),
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for k in chars.by_ref() {
                        if k == '}' {
                            break;
                        }
                        spec.push(k);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub(crate) fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pat) {
            let span = (piece.max - piece.min) as u64 + 1;
            let reps = piece.min + rng.below(span) as usize;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Alt(alts) => out.push_str(&alts[rng.below(alts.len() as u64) as usize]),
                    Atom::Any => out.push(any_char(rng)),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

// ---------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------

/// Size specifications for collection strategies.
pub trait SizeRange {
    /// Pick a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategies over collections (mirrors `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a size drawn from `sizes`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, sizes: R) -> VecStrategy<S, R> {
        VecStrategy { element, sizes }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        sizes: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.sizes.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with *up to* the drawn size
    /// (duplicates shrink the set, as in real proptest).
    pub fn hash_set<S, R>(element: S, sizes: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { element, sizes }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, R> {
        element: S,
        sizes: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.sizes.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option` (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`: `None` about a quarter of the
    /// time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros + prelude
// ---------------------------------------------------------------------

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::TestRng::deterministic(test_name);
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion (no shrinking, so a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Common imports (mirrors `proptest::prelude`).
pub mod prelude {
    /// Re-export so `proptest::collection::..` paths work via prelude
    /// glob too.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn deterministic_rng_stable() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full domain, nothing to assert beyond type
            let s = (1i64..=1).generate(&mut rng);
            assert_eq!(s, 1);
        }
    }

    #[test]
    fn class_pattern_generates_members() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..300 {
            let s = "[a-]".generate(&mut rng);
            assert!(s == "a" || s == "-", "{s:?}");
        }
    }

    #[test]
    fn alternation_picks_alternatives() {
        let mut rng = TestRng::from_seed(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert("(audio|video|text)".generate(&mut rng));
        }
        assert_eq!(seen.len(), 3, "{seen:?}");
        assert!(seen.contains("audio"));
    }

    #[test]
    fn dot_quantified_length() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let s = ".{0,16}".generate(&mut rng);
            assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn literal_pieces_kept() {
        let mut rng = TestRng::from_seed(6);
        assert_eq!("v=0".generate(&mut rng), "v=0");
    }

    #[test]
    fn vec_and_hashset_sizes() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let v = collection::vec(any::<u8>(), 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let s = collection::hash_set(0u32..4, 0..10).generate(&mut rng);
            assert!(s.len() <= 4 + 6); // duplicates collapse; never exceeds draw
        }
    }

    #[test]
    fn option_of_mixes() {
        let mut rng = TestRng::from_seed(8);
        let strat = option::of(1u32..10);
        let results: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(results.iter().any(Option::is_some));
        assert!(results.iter().any(Option::is_none));
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_seed(9);
        let strat = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u32..10, y in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!(u8::from(y) <= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn macro_config_respected(x in 0u64..u64::MAX / 2) {
            prop_assert!(x < u64::MAX / 2);
        }
    }
}
