//! Offline stand-in for the `criterion` crate.
//!
//! Implements enough of criterion's API for the workspace's bench
//! targets to compile and run without crates.io access.  Instead of
//! statistical sampling it runs each benchmark a fixed small number of
//! iterations and prints the mean wall-clock time — a smoke-benchmark
//! runner that keeps `cargo bench` usable as a regression *functional*
//! gate offline.  Absolute numbers are indicative only.

use std::time::Instant;

pub use std::hint::black_box;

/// How many timed iterations the smoke runner performs per benchmark.
const SMOKE_ITERS: u64 = 3;

/// Batch sizing hint (accepted for API compatibility, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_named(&full, f);
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

fn run_named<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        0
    } else {
        b.total_nanos / u128::from(b.iters)
    };
    println!(
        "bench {name:<60} {mean:>12} ns/iter (smoke, {} iters)",
        b.iters
    );
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the smoke iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Time `routine` with a fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Define a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| ran += 1));
        assert_eq!(u64::from(ran), SMOKE_ITERS);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0u32;
        group.bench_function(format!("inner_{}", 1), |b| {
            b.iter_batched(|| 5u32, |x| count += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(u64::from(count), 5 * SMOKE_ITERS);
    }
}
