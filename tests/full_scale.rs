//! Paper-scale smoke tests, `#[ignore]`d by default (minutes each in
//! release mode).  Run with:
//!
//! ```sh
//! cargo test --release -p sdalloc --test full_scale -- --ignored
//! ```

use sdalloc::rr::sim::{run_many, RrParams};
use sdalloc::sim::{SimDuration, SimRng};
use sdalloc::topology::doar::{generate, DoarParams};
use sdalloc::topology::hopcount::ttl_table;
use sdalloc::topology::mbone::MboneMap;

#[test]
#[ignore = "paper-scale: ~1 min in release"]
fn full_mbone_hop_count_table() {
    // The Figure 10 table on the full 1864-node map, every source.
    let map = MboneMap::generate_default();
    let table = ttl_table(&map.topo, 1);
    let mf: Vec<f64> = table.iter().map(|r| r.most_frequent).collect();
    let mx: Vec<u32> = table.iter().map(|r| r.max_hops).collect();
    // Paper: most-frequent 3.1 / 7.0 / 7.7 / 10.6; max 10 / 18 / 18 / 26.
    assert!((1.0..=6.0).contains(&mf[0]), "ttl16 mode {mf:?}");
    assert!((4.0..=11.0).contains(&mf[1]), "ttl47 mode {mf:?}");
    assert!((4.0..=12.0).contains(&mf[2]), "ttl63 mode {mf:?}");
    assert!((6.0..=16.0).contains(&mf[3]), "ttl127 mode {mf:?}");
    assert!(mx[3] <= 32, "ttl127 max {mx:?} exceeds DVMRP infinity");
    assert!(mx[0] < mx[3], "maxima not ordered {mx:?}");
}

#[test]
#[ignore = "paper-scale: tens of seconds in release"]
fn rr_at_25600_sites() {
    // Figure 15's upper-right corner: a 25 600-site group.
    let topo = generate(&DoarParams::new(25_600, 42));
    let params = RrParams::figure15a(SimDuration::from_secs_f64(51.2));
    let mut rng = SimRng::new(43);
    let agg = run_many(&topo, &params, 2, &mut rng);
    assert!(agg.mean_responses >= 1.0);
    assert!(
        agg.mean_responses < 200.0,
        "suppression collapsed at scale: {}",
        agg.mean_responses
    );
}

#[test]
#[ignore = "paper-scale: ~1 min in release"]
fn mbone_default_scope_structure() {
    // Full-size structural checks (the unit tests use small maps).
    use sdalloc::topology::scope::{Scope, ScopeCache};
    use sdalloc::topology::NodeId;
    let map = MboneMap::generate_default();
    assert_eq!(map.topo.node_count(), 1864);
    let mut scopes = ScopeCache::new(map.topo.clone());
    // Global scope covers the world from anywhere sampled.
    for i in (0..1864).step_by(311) {
        let z = scopes.zone_size(Scope::new(NodeId(i as u32), 191));
        assert_eq!(z, 1864, "global zone from node {i} covers {z}");
    }
    // Site scopes stay tiny.
    for i in (0..1864).step_by(97) {
        let z = scopes.zone_size(Scope::new(NodeId(i as u32), 15));
        assert!(z <= 16, "site zone from node {i} covers {z}");
    }
}
