//! Integration tests pinning the paper's quoted numbers.
//!
//! Every concrete number the paper states is asserted here against the
//! implementation, so a regression in any crate that shifts a headline
//! result fails loudly.

use sdalloc::core::analytic::{
    birthday_allocations_at_probability, birthday_clash_probability, eq1_allocations_at_half,
    section_2_3,
};
use sdalloc::core::PartitionMap;
use sdalloc::rr::analytic::{expected_responses_exponential, EXPONENTIAL_FLOOR};
use sdalloc::sap::schedule::BackoffSchedule;
use sdalloc::sim::{Channel, SimDuration};

#[test]
fn section_1_dvmrp_infinity_is_32() {
    assert_eq!(sdalloc::topology::DVMRP_INFINITY, 32);
}

#[test]
fn section_2_ipv4_multicast_space_is_2_pow_28() {
    // "In IPv4, there are 2^28 (approximately 270 million) multicast
    // addresses available."
    let total = 1u64 << 28;
    assert_eq!(total, 268_435_456);
    assert!((total as f64 - 270e6).abs() / 270e6 < 0.01);
}

#[test]
fn figure_4_birthday_at_10000() {
    // The figure's curve: ~50% around 118 allocations, near 1 by 400.
    let half = birthday_allocations_at_probability(10_000, 0.5);
    assert!((115..=122).contains(&half), "50% point at {half}");
    assert!(birthday_clash_probability(10_000, 400) > 0.996);
}

#[test]
fn section_2_3_effective_delay_12s() {
    // "(0.98*0.2)+(0.02*600)= 12 seconds"
    let eff = section_2_3::effective_delay_secs(0.2, 0.02, 600.0);
    assert!((eff - 12.196).abs() < 0.01);
    // Same number through the channel model.
    let ch = Channel::mbone_default();
    let eff2 = ch.effective_delay(SimDuration::from_mins(10)).as_secs_f64();
    assert!((eff - eff2).abs() < 1e-9);
}

#[test]
fn section_2_3_invisible_fraction_0_1_percent() {
    // "approximately 0.1% of sessions currently advertised are not
    // visible at any time" (4-hour advertisement).
    let f = section_2_3::invisible_fraction(12.196, 4.0 * 3600.0);
    assert!((0.0005..0.0015).contains(&f), "fraction {f}");
}

#[test]
fn section_2_3_16496_concurrent_sessions() {
    // "a total of approximately 16496 concurrent sessions ... before the
    // probability of a clash exceeds 0.5" (65536 addresses, 8 regions,
    // i = 0.001m).
    let total = section_2_3::concurrent_sessions(65_536.0, 8.0, 0.001);
    assert!((total - 16_496.0).abs() < 350.0, "got {total}");
}

#[test]
fn section_2_3_fast_repeat_0_3s_and_i_0_00005() {
    // "repeating the announcement 5 seconds after it is first made gives
    // a mean delay of about 0.3 seconds, and hence i = 0.00005m".
    let sched = BackoffSchedule::default();
    let eff = sched
        .effective_initial_delay(SimDuration::from_millis(200), 0.02)
        .as_secs_f64();
    assert!((eff - 0.296).abs() < 0.01, "effective delay {eff}");
    let i = section_2_3::invisible_fraction(eff, 2.0 * 3600.0 + 2.0 * 3600.0);
    assert!((i - 0.00005).abs() < 0.00004, "i = {i}");
}

#[test]
fn section_2_4_1_margin_2_gives_55_partitions() {
    assert_eq!(PartitionMap::new(2).len(), 55);
}

#[test]
fn figure_6_anchor_67_percent_at_10000() {
    // 67% was chosen "as approximately the proportion of the address
    // space that can be allocated for a band of 10000 addresses" at the
    // fast-announcement operating point.
    let m = eq1_allocations_at_half(10_000.0, 0.00005);
    let frac = m / 10_000.0;
    assert!((0.55..0.85).contains(&frac), "occupancy {frac}");
}

#[test]
fn section_3_1_exponential_limit_1_442698() {
    // "the limit in this case is a mean of 1.442698 responses".
    #[allow(clippy::approx_constant)] // the paper's quoted digits
    const PAPER_LIMIT: f64 = 1.442695;
    assert!((EXPONENTIAL_FLOOR - PAPER_LIMIT).abs() < 1e-5);
    let e = expected_responses_exponential(1_000_000, 500);
    assert!((e - EXPONENTIAL_FLOOR).abs() < 0.02, "e = {e}");
}

#[test]
fn conclusions_backoff_from_5s() {
    // "it should start from a high announcement rate (say a 5 second
    // interval) and exponentially back off".
    let s = BackoffSchedule::default();
    assert_eq!(s.interval_after(0), SimDuration::from_secs(5));
    assert!(s.interval_after(1) > s.interval_after(0));
    // ...and eventually reaches a low background rate.
    assert_eq!(s.interval_after(50), s.cap);
}

#[test]
fn conclusions_flat_space_bound_10000() {
    // Section 4.1: a flat scheme is reasonable "up to 10,000 addresses";
    // Eq 1 at the slow-announcement i = 0.001m still supports ~23% of
    // such a space (and ~67% at the fast-announcement operating point) —
    // useful, but visibly sub-linear beyond.
    let m10k = eq1_allocations_at_half(10_000.0, 0.001);
    assert!(m10k > 2_000.0, "10k-space capacity {m10k}");
    // The 270-million-address space cannot be allocated effectively:
    // occupancy collapses by orders of magnitude.
    let m270m = eq1_allocations_at_half(268_435_456.0, 0.001);
    assert!(
        m270m / 268_435_456.0 < 0.02,
        "a global flat space should pack terribly, got {}",
        m270m / 268_435_456.0
    );
}
