//! Property-based tests over the workspace's core data structures and
//! invariants (proptest).

use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

use sdalloc::core::{
    AdaptiveIpr, Addr, AddrSpace, Allocator, InformedRandomAllocator, PartitionMap, StaticIpr,
    View, VisibleSession,
};
use sdalloc::sap::sdp::{Media, Origin, SessionDescription};
use sdalloc::sap::wire::{MessageType, SapPacket};
use sdalloc::sim::{SimDuration, SimRng, SimTime};
use sdalloc::topology::{NodeId, NodeSet};

// ---------------------------------------------------------------------
// SimRng
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }
}

// ---------------------------------------------------------------------
// SimTime / SimDuration arithmetic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
    }

    #[test]
    fn duration_ordering_consistent(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da < db, a < b);
    }
}

// ---------------------------------------------------------------------
// NodeSet vs a HashSet model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn nodeset_matches_hashset_model(ops in proptest::collection::vec((0u32..256, any::<bool>()), 0..200)) {
        let mut set = NodeSet::with_capacity(256);
        let mut model: HashSet<u32> = HashSet::new();
        for (id, insert) in ops {
            if insert {
                set.insert(NodeId(id));
                model.insert(id);
            } else {
                set.remove(NodeId(id));
                model.remove(&id);
            }
        }
        prop_assert_eq!(set.len(), model.len());
        for id in 0..256u32 {
            prop_assert_eq!(set.contains(NodeId(id)), model.contains(&id));
        }
        let iterated: Vec<u32> = set.iter().map(|n| n.0).collect();
        let mut expected: Vec<u32> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(iterated, expected);
    }

    #[test]
    fn nodeset_intersection_model(
        xs in proptest::collection::hash_set(0u32..128, 0..64),
        ys in proptest::collection::hash_set(0u32..128, 0..64),
    ) {
        let mut a = NodeSet::with_capacity(128);
        let mut b = NodeSet::with_capacity(128);
        for &x in &xs { a.insert(NodeId(x)); }
        for &y in &ys { b.insert(NodeId(y)); }
        prop_assert_eq!(a.intersects(&b), xs.intersection(&ys).next().is_some());
        let mut i = a.clone();
        i.intersect_with(&b);
        let expected: HashSet<u32> = xs.intersection(&ys).copied().collect();
        prop_assert_eq!(i.len(), expected.len());
    }
}

// ---------------------------------------------------------------------
// SDP and SAP wire roundtrips
// ---------------------------------------------------------------------

fn arb_sdp() -> impl Strategy<Value = SessionDescription> {
    (
        "[a-zA-Z0-9 ._-]{1,32}",
        any::<u64>(),
        1u64..1_000_000,
        any::<u32>(),
        0u32..(1 << 28),
        any::<u8>(),
        proptest::option::of("[a-zA-Z0-9 ,.]{1,64}"),
        proptest::collection::vec(
            ("(audio|video|whiteboard|text)", any::<u16>(), 0u32..128),
            0..4,
        ),
    )
        .prop_map(
            |(name, session_id, version, origin_ip, group_off, ttl, info, media)| {
                SessionDescription {
                    origin: Origin {
                        username: "-".into(),
                        session_id,
                        version,
                        address: Ipv4Addr::from(origin_ip),
                    },
                    name,
                    info,
                    group: Ipv4Addr::from(0xE000_0000u32 + group_off),
                    ttl,
                    start: 0,
                    stop: 0,
                    media: media
                        .into_iter()
                        .map(|(kind, port, format)| Media {
                            kind,
                            port,
                            proto: "RTP/AVP".into(),
                            format,
                        })
                        .collect(),
                }
            },
        )
}

proptest! {
    #[test]
    fn sdp_roundtrip(desc in arb_sdp()) {
        let text = desc.format();
        let parsed = SessionDescription::parse(&text).unwrap();
        prop_assert_eq!(parsed, desc);
    }

    #[test]
    fn sap_wire_roundtrip(
        desc in arb_sdp(),
        hash in any::<u16>(),
        delete in any::<bool>(),
        auth in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let payload = desc.format();
        let mut pkt = if delete {
            SapPacket::delete(desc.origin.address, hash, payload)
        } else {
            SapPacket::announce(desc.origin.address, hash, payload)
        };
        pkt.auth = auth.clone();
        let decoded = SapPacket::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded.msg_id_hash, hash);
        prop_assert_eq!(
            decoded.message_type,
            if delete { MessageType::Delete } else { MessageType::Announce }
        );
        prop_assert_eq!(decoded.source, pkt.source);
        prop_assert_eq!(&decoded.auth[..auth.len()], &auth[..]);
        prop_assert_eq!(decoded.payload, pkt.payload);
    }

    #[test]
    fn sap_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SapPacket::decode(&bytes);
    }

    #[test]
    fn sdp_parse_never_panics(text in ".{0,256}") {
        let _ = SessionDescription::parse(&text);
    }
}

// ---------------------------------------------------------------------
// Allocator invariants
// ---------------------------------------------------------------------

fn arb_view() -> impl Strategy<Value = Vec<VisibleSession>> {
    proptest::collection::vec((0u32..500, any::<u8>()), 0..64).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(a, t)| VisibleSession::new(Addr(a), t))
            .collect()
    })
}

proptest! {
    #[test]
    fn informed_random_never_returns_visible(sessions in arb_view(), ttl in any::<u8>(), seed in any::<u64>()) {
        let space = AddrSpace::abstract_space(500);
        let view = View::new(&sessions);
        let mut rng = SimRng::new(seed);
        if let Some(addr) = InformedRandomAllocator.allocate(&space, ttl, &view, &mut rng) {
            prop_assert!(!view.in_use(addr), "returned in-use {addr}");
            prop_assert!(space.contains(addr));
        } else {
            // Refusal only when the space is genuinely full.
            prop_assert_eq!(view.occupied().len(), 500);
        }
    }

    #[test]
    fn static_ipr_respects_band(sessions in arb_view(), ttl in any::<u8>(), seed in any::<u64>()) {
        let space = AddrSpace::abstract_space(500);
        let alg = StaticIpr::seven_band();
        let view = View::new(&sessions);
        let mut rng = SimRng::new(seed);
        if let Some(addr) = alg.allocate(&space, ttl, &view, &mut rng) {
            let band = alg.band_of(ttl);
            let (lo, hi) = alg.band_range(band, 500);
            prop_assert!((lo..hi).contains(&addr.0), "addr {addr} outside band [{lo},{hi})");
            prop_assert!(!view.in_use(addr));
        }
    }

    #[test]
    fn adaptive_never_returns_visible(sessions in arb_view(), ttl in any::<u8>(), seed in any::<u64>()) {
        let space = AddrSpace::abstract_space(500);
        let alg = AdaptiveIpr::aipr1();
        let view = View::new(&sessions);
        let mut rng = SimRng::new(seed);
        if let Some(addr) = alg.allocate(&space, ttl, &view, &mut rng) {
            prop_assert!(!view.in_use(addr));
            prop_assert!(space.contains(addr));
        }
    }

    #[test]
    fn adaptive_geometry_depends_only_on_high_ttl_sessions(
        high in proptest::collection::vec((0u32..500, 100u8..=255), 0..24),
        low_a in proptest::collection::vec((0u32..500, 0u8..100), 0..24),
        low_b in proptest::collection::vec((0u32..500, 0u8..100), 0..24),
    ) {
        // Two sites share the high-TTL view but see different low-TTL
        // local sessions; their geometry for a TTL-100 request must
        // agree (the deterministic rule).
        let space = AddrSpace::abstract_space(500);
        let alg = AdaptiveIpr::aipr3();
        let mk = |extra: &[(u32, u8)]| -> Vec<VisibleSession> {
            high.iter()
                .chain(extra.iter())
                .map(|&(a, t)| VisibleSession::new(Addr(a), t))
                .collect()
        };
        let va = mk(&low_a);
        let vb = mk(&low_b);
        let ra = alg.band_range(&space, 100, &View::new(&va));
        let rb = alg.band_range(&space, 100, &View::new(&vb));
        prop_assert_eq!(ra, rb);
    }
}

// ---------------------------------------------------------------------
// Partition map
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn partition_map_tiles_and_is_monotone(margin in 1u32..8) {
        let map = PartitionMap::new(margin);
        let mut prev_hi: i32 = -1;
        for p in map.partitions() {
            prop_assert_eq!(p.lo as i32, prev_hi + 1);
            prop_assert!(p.hi >= p.lo);
            prev_hi = p.hi as i32;
        }
        prop_assert_eq!(prev_hi, 255);
        for ttl in 0..=255u8 {
            prop_assert!(map.partition(ttl).contains(ttl));
        }
    }

    #[test]
    fn partition_map_every_ttl_mapped(margin in 1u32..8, ttl in any::<u8>()) {
        // Every TTL 0..=255 resolves to an in-range partition index and
        // the lookup table agrees with the range list.
        let map = PartitionMap::new(margin);
        let idx = map.partition_of(ttl);
        prop_assert!(idx < map.len());
        let p = map.partitions()[idx];
        prop_assert_eq!(p, map.partition(ttl));
        prop_assert!(p.contains(ttl));
    }

    #[test]
    fn partition_map_disjoint_and_contiguous(margin in 1u32..8) {
        // Partitions are pairwise disjoint and leave no TTL uncovered:
        // exactly 256 TTL values across all partitions, each claimed once.
        let map = PartitionMap::new(margin);
        let mut claimed = [0u32; 256];
        for p in map.partitions() {
            for t in p.lo..=p.hi {
                claimed[t as usize] += 1;
            }
        }
        for (t, &n) in claimed.iter().enumerate() {
            prop_assert_eq!(n, 1, "TTL {} claimed {} times", t, n);
        }
    }

    #[test]
    fn partition_map_paper_default_is_55(_dummy in any::<bool>()) {
        // The paper's margin-2 configuration yields exactly 55 partitions.
        let map = PartitionMap::paper_default();
        prop_assert_eq!(map.len(), 55);
        prop_assert_eq!(map.margin(), 2);
    }
}

// ---------------------------------------------------------------------
// Deterministic Adaptive IPRMA geometry invariants
// ---------------------------------------------------------------------

proptest! {
    /// Bands for different TTLs never overlap under a shared view: a
    /// session in a band above the target always has TTL above the whole
    /// target partition, so the upper stack is identical for every
    /// requester — the structural guarantee behind the paper's
    /// "no clash can occur due to the failings above".
    #[test]
    fn adaptive_bands_disjoint_across_ttls(
        sessions in proptest::collection::vec((0u32..2_000, any::<u8>()), 0..48),
        ttl_a in any::<u8>(),
        ttl_b in any::<u8>(),
    ) {
        let space = AddrSpace::abstract_space(2_000);
        let alg = AdaptiveIpr::aipr1();
        let data: Vec<VisibleSession> = sessions
            .iter()
            .map(|&(a, t)| VisibleSession::new(Addr(a), t))
            .collect();
        let view = View::new(&data);
        let ra = alg.band_range(&space, ttl_a, &view);
        let rb = alg.band_range(&space, ttl_b, &view);
        if let (Some((lo_a, hi_a)), Some((lo_b, hi_b))) = (ra, rb) {
            let band_a = alg.band_map().band_of(ttl_a);
            let band_b = alg.band_map().band_of(ttl_b);
            if band_a == band_b {
                // Same partition: the band top is target-independent;
                // widths may differ (the ≥x filter can exclude sessions
                // inside the partition), giving nested ranges.
                prop_assert_eq!(hi_a, hi_b);
            } else {
                let disjoint = hi_a <= lo_b || hi_b <= lo_a;
                prop_assert!(
                    disjoint,
                    "bands overlap: ttl {} -> [{},{}), ttl {} -> [{},{})",
                    ttl_a, lo_a, hi_a, ttl_b, lo_b, hi_b
                );
                // Higher TTL band sits higher in the space.
                if band_a < band_b {
                    prop_assert!(hi_a <= lo_b);
                } else {
                    prop_assert!(hi_b <= lo_a);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Routing invariants on random topologies
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn source_tree_invariants(n in 10usize..120, seed in any::<u64>()) {
        use sdalloc::topology::doar::{generate, DoarParams};
        use sdalloc::topology::routing::{SourceTree, TTL_UNREACHABLE};

        let topo = generate(&DoarParams::new(n, seed));
        let tree = SourceTree::compute(&topo, NodeId(0));
        for i in 0..n {
            let v = NodeId(i as u32);
            if tree.metric[i] == u32::MAX {
                prop_assert_eq!(tree.required_ttl[i], TTL_UNREACHABLE);
                continue;
            }
            // Reaching v needs at least hops+1 TTL (per-hop decrement),
            // and reachability is monotone in TTL.
            if i != 0 {
                prop_assert!(tree.required_ttl[i] as u32 > tree.hops[i]);
                let (parent, _) = tree.parent[i].expect("reachable node has parent");
                // Parent metrics/hops/delays are monotone along the tree.
                prop_assert!(tree.metric[parent.index()] <= tree.metric[i]);
                prop_assert_eq!(tree.hops[parent.index()] + 1, tree.hops[i]);
                prop_assert!(tree.delay[parent.index()] <= tree.delay[i]);
                prop_assert!(
                    tree.required_ttl[parent.index()] <= tree.required_ttl[i]
                );
            }
            if tree.required_ttl[i] != TTL_UNREACHABLE && tree.required_ttl[i] > 0 {
                let req = tree.required_ttl[i];
                if req <= 255 {
                    prop_assert!(tree.reaches(v, req as u8));
                }
                if req >= 2 && req - 1 <= 255 {
                    prop_assert!(!tree.reaches(v, (req - 1) as u8));
                }
            }
        }
    }

    #[test]
    fn shared_tree_distance_is_a_metric_on_the_tree(n in 10usize..80, seed in any::<u64>()) {
        use sdalloc::topology::doar::{generate, DoarParams};
        use sdalloc::topology::routing::SharedTree;

        let topo = generate(&DoarParams::new(n, seed));
        let st = SharedTree::compute(&topo, NodeId(0));
        let pick = |k: u64| NodeId((k % n as u64) as u32);
        for k in 0..8u64 {
            let a = pick(seed.wrapping_add(k));
            let b = pick(seed.wrapping_add(k * 7 + 1));
            let c = pick(seed.wrapping_add(k * 13 + 2));
            let dab = st.path_delay(a, b).unwrap();
            let dba = st.path_delay(b, a).unwrap();
            prop_assert_eq!(dab, dba, "symmetry");
            let daa = st.path_delay(a, a).unwrap();
            prop_assert!(daa.is_zero(), "identity");
            // Triangle inequality on tree distances.
            let dac = st.path_delay(a, c).unwrap();
            let dcb = st.path_delay(c, b).unwrap();
            prop_assert!(dab <= dac + dcb, "triangle");
        }
    }
}

// ---------------------------------------------------------------------
// Slab session store: id recycling vs a residency-epoch model
// ---------------------------------------------------------------------

/// Session `i`'s description for the slab-recycling model: distinct
/// origin per index, TTLs spread across all four partition bands so
/// the per-shard digests all see traffic.
fn slab_session(i: usize, version: u64) -> SessionDescription {
    const BAND_TTLS: [u8; 4] = [8, 32, 100, 200];
    SessionDescription {
        origin: Origin {
            username: "-".into(),
            session_id: i as u64,
            version,
            address: Ipv4Addr::from(0x0a00_0100 + i as u32),
        },
        name: format!("slab{i}"),
        info: None,
        group: Ipv4Addr::new(224, 5, 0, (i % 200) as u8),
        ttl: BAND_TTLS[i % BAND_TTLS.len()],
        start: 0,
        stop: 0,
        media: vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }],
    }
}

proptest! {
    /// Interleaved admit / refresh / expire / evict / delete /
    /// mass-expiry ("restart": a rebooted directory relearns the scope
    /// from the wire, so the cache sees its whole population age out
    /// and re-admit into recycled slots) sequences never let a stale
    /// handle resolve: a [`sdalloc::sap::slab::SessionHandle`] minted
    /// during one residency goes dead the moment that record is
    /// removed, even when the dense id is immediately recycled for a
    /// new admit.  Alongside, the per-shard reconciliation digests
    /// stay XOR-consistent with a from-scratch recompute over the live
    /// population after every operation.
    #[test]
    fn slab_handles_never_alias_across_recycling(
        ops in proptest::collection::vec((0u8..6, 0usize..24, 1u64..40), 1..120),
    ) {
        use sdalloc::sap::cache::{AnnouncementCache, CacheKey, DIGEST_BUCKETS, TTL_BANDS};
        use sdalloc::sap::slab::SessionHandle;
        use std::collections::HashMap;

        let timeout = SimDuration::from_secs(30);
        let mut cache = AnnouncementCache::new(timeout);
        let mut now = SimTime::ZERO;

        // Residency epochs: bumped every time session `i`'s record
        // leaves the cache.  A handle is valid iff its mint epoch is
        // still current.
        let mut epoch: HashMap<usize, u64> = HashMap::new();
        let mut index_of: HashMap<CacheKey, usize> = HashMap::new();
        let mut handles: Vec<(usize, u64, SessionHandle)> = Vec::new();

        for (op, i, delta) in ops {
            let desc = slab_session(i, 1);
            let key = CacheKey {
                origin: desc.origin.address,
                session_id: desc.origin.session_id,
            };
            match op {
                // Admit (or refresh) and mint a handle.
                0 | 1 => {
                    now += SimDuration::from_secs(1);
                    cache.observe_announce(now, desc);
                    index_of.insert(key, i);
                    let h = cache.handle_of(key.origin, key.session_id).unwrap();
                    handles.push((i, *epoch.entry(i).or_insert(0), h));
                }
                // Evict (governor displacement).
                2 => {
                    if cache.evict(key).is_some() {
                        *epoch.entry(i).or_insert(0) += 1;
                    }
                }
                // Deletion packet.
                3 => {
                    if cache.observe_delete(key.origin, key.session_id) {
                        *epoch.entry(i).or_insert(0) += 1;
                    }
                }
                // Partial expiry: step the clock, purge the aged.
                4 => {
                    now += SimDuration::from_secs(delta);
                    for purged in cache.purge_expired(now).to_vec() {
                        let idx = index_of[&purged];
                        *epoch.entry(idx).or_insert(0) += 1;
                    }
                }
                // Restart: the whole population ages out, then the
                // session re-admits into a recycled slot.
                _ => {
                    now = now + timeout + SimDuration::from_secs(1);
                    for purged in cache.purge_expired(now).to_vec() {
                        let idx = index_of[&purged];
                        *epoch.entry(idx).or_insert(0) += 1;
                    }
                    cache.observe_announce(now, desc);
                    index_of.insert(key, i);
                    let h = cache.handle_of(key.origin, key.session_id).unwrap();
                    handles.push((i, *epoch.entry(i).or_insert(0), h));
                }
            }

            // Generation check: stale handles are dead, live handles
            // resolve to the record they were minted for.
            for &(hi, he, h) in &handles {
                let current = *epoch.get(&hi).unwrap_or(&0);
                match cache.resolve(h) {
                    Some(entry) => {
                        prop_assert_eq!(
                            he, current,
                            "stale handle (session {} epoch {} vs {}) resolved",
                            hi, he, current
                        );
                        prop_assert_eq!(entry.key().session_id, hi as u64);
                    }
                    None => prop_assert_ne!(
                        he, current,
                        "live handle (session {}) failed to resolve",
                        hi
                    ),
                }
            }

            // Per-shard digests match a from-scratch recompute over
            // the live population.
            let mut fresh = [[0u64; DIGEST_BUCKETS]; TTL_BANDS];
            for (_, entry) in cache.iter() {
                let d = entry.desc();
                let (bucket, hash) = AnnouncementCache::desc_digest(&d);
                fresh[AnnouncementCache::ttl_band(d.ttl)][bucket] ^= hash;
            }
            let mut folded = [0u64; DIGEST_BUCKETS];
            for (band, acc) in fresh.iter().enumerate() {
                prop_assert_eq!(
                    &cache.shard_digest(band), acc,
                    "shard {} digest diverges from recompute", band
                );
                for (b, h) in acc.iter().enumerate() {
                    folded[b] ^= h;
                }
            }
            prop_assert_eq!(cache.digest(), folded, "global digest is not the band XOR");
        }
    }
}
