//! Differential test: the pre-refactor poll-loop drive and the new
//! event-driven drive (`next_deadline` / `pop_due_timer` / `on_timer` /
//! `on_packet`) must produce byte-identical packet traces through
//! identical seeded scenarios.  `poll(now)` is specified as a thin
//! compat wrapper — draining every due timer in deadline order — so any
//! divergence here means the wrapper and the event core disagree.
//!
//! Traces are compared via the 64-bit FNV-1a fingerprint from
//! `sdalloc_sap::wire`: equal fingerprints ⇔ byte-identical traces
//! (each record is `time ‖ node ‖ encoded packet`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

use sdalloc_core::{AddrSpace, InformedRandomAllocator};
use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory};
use sdalloc_sap::sdp::Media;
use sdalloc_sap::wire::{fnv1a_64, SapPacket};
use sdalloc_sim::{SimDuration, SimRng, SimTime};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Drive {
    /// The compat wrapper: `poll(now)` drains everything due.
    PollLoop,
    /// The event API: pop each due timer and feed it to `on_timer`.
    EventDriven,
}

enum Item {
    Wake(usize),
    Deliver(usize, SapPacket),
}

/// One-hop propagation delay between every pair of nodes.
const DELAY: SimDuration = SimDuration::from_millis(50);

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// Run a fixed three-node scenario under the given drive mode and
/// return the FNV-1a fingerprints of (emission trace, per-node
/// telemetry snapshots).  The tiny two-address space forces clashes, so
/// the trace exercises announce timers, cache expiry, phase-1/2
/// recovery and third-party defences — every `TimerKind` — and the
/// telemetry fingerprint covers every counter/gauge/histogram those
/// paths touch.
fn run_scenario(seed: u64, drive: Drive) -> (u64, u64) {
    const N: usize = 3;
    let mut dirs: Vec<SessionDirectory> = (0..N)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(2);
            cfg.cache_timeout = SimDuration::from_secs(120);
            let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
            d.set_telemetry_identity(i as u32, seed);
            d
        })
        .collect();
    let mut rngs: Vec<SimRng> = (0..N)
        .map(|i| SimRng::new(seed * 1000 + i as u64))
        .collect();

    // Deterministic mini event loop: (time, seq) ordered, FIFO at ties.
    type Queue = BinaryHeap<Reverse<((SimTime, u64), usize)>>;
    struct Loop {
        queue: Queue,
        items: Vec<Item>,
        seq: u64,
        trace: Vec<u8>,
    }
    impl Loop {
        fn push(&mut self, at: SimTime, item: Item) {
            self.queue.push(Reverse(((at, self.seq), self.items.len())));
            self.items.push(item);
            self.seq += 1;
        }
        fn record_and_fan(&mut self, now: SimTime, from: usize, pkts: Vec<SapPacket>, n: usize) {
            for pkt in pkts {
                self.trace.extend_from_slice(&now.as_nanos().to_le_bytes());
                self.trace.push(from as u8);
                self.trace.extend_from_slice(&pkt.encode());
                for to in 0..n {
                    if to != from {
                        self.push(now + DELAY, Item::Deliver(to, pkt.clone()));
                    }
                }
            }
        }
    }
    let mut ev = Loop {
        queue: BinaryHeap::new(),
        items: Vec::new(),
        seq: 0,
        trace: Vec::new(),
    };

    // Every node creates one session at a staggered start; with two
    // addresses and three nodes at least one clash is guaranteed.
    for (i, d) in dirs.iter_mut().enumerate() {
        let at = SimTime::from_secs(i as u64);
        d.create_session(at, &format!("s{i}"), 63, media(), &mut rngs[i])
            .expect("space has room for the initial allocation");
        let deadline = d.next_deadline().expect("create schedules an announce");
        ev.push(at.max(deadline), Item::Wake(i));
    }

    let horizon = SimTime::from_secs(400);
    while let Some(Reverse(((now, _), idx))) = ev.queue.pop() {
        if now > horizon {
            break;
        }
        match &ev.items[idx] {
            Item::Wake(node) => {
                let node = *node;
                let pkts = match drive {
                    Drive::PollLoop => dirs[node].poll(now),
                    Drive::EventDriven => {
                        let mut out = Vec::new();
                        while let Some(kind) = dirs[node].pop_due_timer(now) {
                            out.extend(dirs[node].on_timer(now, kind));
                        }
                        out
                    }
                };
                ev.record_and_fan(now, node, pkts, N);
                if let Some(at) = dirs[node].next_deadline() {
                    ev.push(at.max(now), Item::Wake(node));
                }
            }
            Item::Deliver(node, pkt) => {
                let (node, pkt) = (*node, pkt.clone());
                let (replies, _events) = dirs[node].on_packet(now, &pkt, &mut rngs[node]);
                ev.record_and_fan(now, node, replies, N);
                if let Some(at) = dirs[node].next_deadline() {
                    ev.push(at.max(now), Item::Wake(node));
                }
            }
        }
    }
    assert!(
        !ev.trace.is_empty(),
        "scenario produced no traffic (seed {seed})"
    );
    let mut tele = Vec::new();
    for d in &dirs {
        tele.extend_from_slice(d.telemetry_snapshot_json().as_bytes());
    }
    (fnv1a_64(&ev.trace), fnv1a_64(&tele))
}

#[test]
fn poll_loop_and_event_drive_produce_identical_traces() {
    for seed in [1u64, 2, 3, 7, 11, 42] {
        let (poll_fp, poll_tele) = run_scenario(seed, Drive::PollLoop);
        let (event_fp, event_tele) = run_scenario(seed, Drive::EventDriven);
        assert_eq!(
            poll_fp, event_fp,
            "poll-loop and event-driven traces diverge for seed {seed}"
        );
        // The wrapper must also leave identical telemetry: counters and
        // histograms are part of the observable protocol execution.
        assert_eq!(
            poll_tele, event_tele,
            "poll-loop and event-driven telemetry diverge for seed {seed}"
        );
    }
}

#[test]
fn same_seed_same_trace_across_runs() {
    for seed in [5u64, 13] {
        assert_eq!(
            run_scenario(seed, Drive::EventDriven),
            run_scenario(seed, Drive::EventDriven),
            "event drive is not deterministic for seed {seed}"
        );
    }
}

#[test]
fn testbed_telemetry_is_byte_identical_per_seed() {
    // Full byte equality (not just fingerprints) of the per-node
    // telemetry snapshots AND flight-recorder dumps across two runs of
    // the same seeded testbed scenario.
    use sdalloc_sap::testbed::Testbed;
    use sdalloc_sim::Channel;
    let run = |seed: u64| {
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(4);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(DELAY),
            seed,
        );
        let mut rng = SimRng::new(seed ^ 0xABCD);
        let now = tb.now();
        tb.directory_mut(0)
            .create_session(now, "tele", 63, media(), &mut rng)
            .expect("space has room");
        tb.kick(0);
        tb.run_until(SimTime::from_secs(120));
        (
            tb.telemetry_json(),
            tb.flight_dump("event_driven determinism probe"),
        )
    };
    for seed in [31u64, 99] {
        let (tele_a, dumps_a) = run(seed);
        let (tele_b, dumps_b) = run(seed);
        assert_eq!(tele_a, tele_b, "telemetry JSON diverges for seed {seed}");
        assert_eq!(dumps_a, dumps_b, "flight dumps diverge for seed {seed}");
        assert!(tele_a.contains("\"announce.sent\""), "{tele_a}");
    }
}

#[test]
fn chaos_smoke_reports_are_byte_identical_per_seed() {
    // The chaos experiment drives the full wake-on-deadline Testbed
    // (faults as events, wakeup dedup); its rendered JSON must be
    // byte-identical across runs of the same seed.
    for seed in [421u64, 422] {
        let a = sdalloc_experiments::chaos::run(seed, true);
        let b = sdalloc_experiments::chaos::run(seed, true);
        assert_eq!(
            fnv1a_64(a.as_bytes()),
            fnv1a_64(b.as_bytes()),
            "chaos smoke not deterministic for seed {seed}"
        );
    }
}
