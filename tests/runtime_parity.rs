//! Differential tests for the threaded runtime.
//!
//! 1. **Driver parity** — a single agent driven by the runtime's
//!    deterministic loopback drive ([`AgentDriver::run_deterministic_until`]
//!    over a [`VirtualClock`]) must produce a byte-identical packet
//!    trace *and* byte-identical directory telemetry to the
//!    discrete-event [`Testbed`] running the same seeded scenario.  Both
//!    sides implement the same wake-on-deadline discipline; any
//!    divergence means the production driver and the simulator disagree
//!    about the protocol, which would invalidate every simulated result.
//!
//! 2. **Snapshot integrity under churn** — many readers loading
//!    snapshots lock-free while the writer churns the cache through the
//!    slab arena (entries expiring and being recycled) and publishes at
//!    full rate must never observe a torn or recycled row (per-row FNV
//!    checksums), must see versions move monotonically, and must always
//!    see rows sorted.
//!
//! Traces are compared via the 64-bit FNV-1a fingerprint from
//! `sdalloc_sap::wire`: equal fingerprints ⇔ byte-identical traces
//! (each record is `time ‖ node ‖ encoded packet`).

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sdalloc_core::{AddrSpace, InformedRandomAllocator};
use sdalloc_runtime::{
    AgentDriver, Clock, DriverConfig, LoopbackBus, SnapshotCadence, SnapshotPublisher, VirtualClock,
};
use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory};
use sdalloc_sap::sdp::{Media, Origin, SessionDescription};
use sdalloc_sap::testbed::Testbed;
use sdalloc_sap::wire::fnv1a_64;
use sdalloc_sim::{Channel, FaultPlan, SimDuration, SimRng, SimTime};

const SEED: u64 = 0xD1FF;
const HORIZON: SimTime = SimTime::from_secs(600);

fn config() -> DirectoryConfig {
    let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
    cfg.space = AddrSpace::abstract_space(256);
    cfg
}

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

/// The scenario, testbed-side: one directory, one session created at
/// t = 0, run to the horizon.  Returns (trace, telemetry).
fn testbed_run() -> (Vec<u8>, String) {
    let mut tb = Testbed::new(
        vec![config()],
        || Box::new(InformedRandomAllocator),
        Channel::perfect(SimDuration::from_millis(50)),
        SEED,
    );
    tb.enable_packet_trace();
    let mut rng = SimRng::new(99);
    let now = tb.now();
    tb.directory_mut(0)
        .create_session(now, "parity", 127, media(), &mut rng)
        .unwrap();
    tb.kick(0);
    tb.run_until(HORIZON);
    let telemetry = tb.directory(0).telemetry_snapshot_json();
    (tb.take_packet_trace(), telemetry)
}

/// The same scenario, runtime-side: one agent driver on a loopback bus
/// under a virtual clock, deterministic drive.
fn runtime_run() -> (Vec<u8>, String) {
    let clock = Arc::new(VirtualClock::new());
    let bus = LoopbackBus::new(Arc::clone(&clock) as Arc<dyn Clock>, SEED, FaultPlan::new());
    bus.enable_packet_trace();
    let mut driver = AgentDriver::new(
        0,
        SEED,
        config(),
        Box::new(InformedRandomAllocator),
        bus.endpoint(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        DriverConfig::default(),
    );
    let mut rng = SimRng::new(99);
    let now = clock.now();
    driver
        .directory_mut()
        .create_session(now, "parity", 127, media(), &mut rng)
        .unwrap();
    driver.run_deterministic_until(&clock, HORIZON).unwrap();
    let telemetry = driver.directory().telemetry_snapshot_json();
    (bus.take_packet_trace(), telemetry)
}

#[test]
fn runtime_drive_matches_testbed_byte_for_byte() {
    let (tb_trace, tb_telemetry) = testbed_run();
    let (rt_trace, rt_telemetry) = runtime_run();
    assert!(
        !tb_trace.is_empty(),
        "scenario must emit packets for the comparison to mean anything"
    );
    assert_eq!(
        fnv1a_64(&tb_trace),
        fnv1a_64(&rt_trace),
        "packet traces diverge: testbed {} bytes, runtime {} bytes",
        tb_trace.len(),
        rt_trace.len()
    );
    assert_eq!(tb_trace, rt_trace, "fingerprints collide but bytes differ");
    assert_eq!(
        fnv1a_64(tb_telemetry.as_bytes()),
        fnv1a_64(rt_telemetry.as_bytes()),
        "telemetry diverges:\n--- testbed ---\n{tb_telemetry}\n--- runtime ---\n{rt_telemetry}"
    );
}

#[test]
fn runtime_drive_is_deterministic_across_runs() {
    let (a_trace, a_tel) = runtime_run();
    let (b_trace, b_tel) = runtime_run();
    assert_eq!(a_trace, b_trace);
    assert_eq!(a_tel, b_tel);
}

/// Feed one synthetic announcement into the directory's cache.
fn observe(dir: &mut SessionDirectory, now: SimTime, i: u64) {
    let desc = SessionDescription {
        origin: Origin {
            username: "-".into(),
            session_id: i,
            version: 1,
            address: Ipv4Addr::new(10, 0, 1, 1 + (i % 200) as u8),
        },
        name: format!("stress-session-{i}"),
        info: None,
        group: Ipv4Addr::new(224, 2, (i / 250 % 250) as u8, (i % 250) as u8),
        ttl: 127,
        start: 0,
        stop: 0,
        media: vec![],
    };
    dir.cache_observe_for_test(now, desc);
}

#[test]
fn readers_never_observe_torn_or_recycled_rows() {
    // Writer: churn the cache hard — a short cache timeout expires
    // entries continuously, so slab slots and interned names are
    // recycled while snapshots referencing the old rows are still held
    // by readers.  Publish on every mutation (far above any production
    // cadence) to maximise reclamation pressure.
    let mut cfg = config();
    cfg.cache_timeout = SimDuration::from_millis(40);
    let mut dir = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
    dir.set_telemetry_identity(0, 7);
    let mut publisher = SnapshotPublisher::new(SnapshotCadence::default());
    let handle = publisher.handle();

    const READERS: usize = 4;
    const PUBLISHES: u64 = 3_000;
    let stop = Arc::new(AtomicBool::new(false));
    let corrupt = Arc::new(AtomicU64::new(0));
    let disorder = Arc::new(AtomicU64::new(0));
    let regressions = Arc::new(AtomicU64::new(0));
    let loads: Vec<Arc<AtomicU64>> = (0..READERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            let corrupt = Arc::clone(&corrupt);
            let disorder = Arc::clone(&disorder);
            let regressions = Arc::clone(&regressions);
            let loads = Arc::clone(&loads[r]);
            std::thread::spawn(move || {
                assert!(reader.is_lock_free(), "reader {r} fell off the fast path");
                let mut last_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.load();
                    corrupt.fetch_add(snap.corrupt_rows() as u64, Ordering::Relaxed);
                    if snap.version() < last_version {
                        regressions.fetch_add(1, Ordering::Relaxed);
                    }
                    last_version = snap.version();
                    if !snap.rows().windows(2).all(|w| w[0].key < w[1].key) {
                        disorder.fetch_add(1, Ordering::Relaxed);
                    }
                    // Exercise the query surface while pinned.
                    let _ = snap.group_in_use(Ipv4Addr::new(224, 2, 0, 50));
                    let _ = snap.matching("stress").count();
                    drop(snap);
                    loads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let mut now = SimTime::ZERO;
    for i in 0..PUBLISHES {
        now = now.checked_add(SimDuration::from_millis(1)).unwrap();
        observe(&mut dir, now, i);
        // Run the engine's timers so expired entries are actually purged
        // (recycling their slab slots and interned names).
        let _ = dir.poll(now);
        publisher.publish(now, &dir);
    }
    stop.store(true, Ordering::Relaxed);
    for t in readers {
        t.join().unwrap();
    }
    assert_eq!(
        corrupt.load(Ordering::Relaxed),
        0,
        "torn/recycled rows observed"
    );
    assert_eq!(
        disorder.load(Ordering::Relaxed),
        0,
        "unsorted snapshot observed"
    );
    assert_eq!(
        regressions.load(Ordering::Relaxed),
        0,
        "version went backwards"
    );
    for (r, l) in loads.iter().enumerate() {
        assert!(l.load(Ordering::Relaxed) > 0, "reader {r} made no progress");
    }
    assert_eq!(publisher.stats().published, PUBLISHES);
    // With a 40 ms timeout and 1 ms steps the cache must have cycled
    // through far more sessions than it can hold at once — i.e. slots
    // really were recycled under the readers.
    assert!(
        dir.cached_sessions() < PUBLISHES as usize / 10,
        "churn did not recycle: {} entries still cached",
        dir.cached_sessions()
    );
}
