//! Cross-crate integration tests: the full pipeline from topology
//! generation through SAP announcement to allocation and clash
//! recovery, exercised end to end.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use sdalloc::core::{AdaptiveIpr, AddrSpace, Allocator, InformedRandomAllocator};
use sdalloc::experiments::fill::fill_until_clash;
use sdalloc::experiments::world::World;
use sdalloc::sap::directory::{DirectoryConfig, DirectoryEvent};
use sdalloc::sap::sdp::Media;
use sdalloc::sap::testbed::Testbed;
use sdalloc::sim::{Channel, SimDuration, SimRng, SimTime};
use sdalloc::topology::mbone::{MboneMap, MboneParams};
use sdalloc::topology::workload::TtlDistribution;

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

#[test]
fn mbone_fill_pipeline_all_algorithms() {
    // Topology generation → scope caching → visibility → allocation,
    // for every algorithm family in one go.
    let map = MboneMap::generate(&MboneParams {
        seed: 21,
        target_nodes: 250,
    });
    let dist = TtlDistribution::ds3();
    let algorithms: Vec<Box<dyn Allocator>> = vec![
        Box::new(InformedRandomAllocator),
        Box::new(sdalloc::core::StaticIpr::seven_band()),
        Box::new(AdaptiveIpr::aipr1()),
        Box::new(AdaptiveIpr::hybrid()),
    ];
    let mut world = World::new(map.topo.clone(), AddrSpace::abstract_space(300));
    for alg in &algorithms {
        let mut rng = SimRng::new(5);
        let n = fill_until_clash(&mut world, alg.as_ref(), &dist, &mut rng, 2_400);
        assert!(n >= 5, "{} managed only {n} allocations", alg.name());
    }
}

#[test]
fn ten_directories_converge_without_persistent_clashes() {
    // Ten SAP directories on one lossy scope, each creating sessions at
    // staggered times; after the dust settles no two sessions of
    // overlapping scope share an address.  (All directories share one
    // flat scope here, so *any* two sessions overlap.)
    let configs: Vec<DirectoryConfig> = (0..10)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 1, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(64);
            cfg
        })
        .collect();
    let mut tb = Testbed::new(
        configs,
        || Box::new(AdaptiveIpr::aipr1()),
        Channel {
            loss: sdalloc::sim::LossModel::new(0.02),
            delay: sdalloc::sim::DelayModel::Constant(SimDuration::from_millis(120)),
        },
        99,
    );
    for node in 0..10 {
        let now = tb.now();
        let mut rng = SimRng::new(1_000 + node as u64);
        let ttl = [15u8, 63, 127, 191][node % 4];
        tb.directory_mut(node)
            .create_session(now, &format!("session-{node}"), ttl, media(), &mut rng)
            .unwrap();
        tb.kick(node);
        let horizon = tb.now() + SimDuration::from_secs(7);
        tb.run_until(horizon);
    }
    // Let recovery finish.
    let horizon = tb.now() + SimDuration::from_secs(1_300);
    tb.run_until(horizon);

    let mut groups = Vec::new();
    for node in 0..10 {
        for (_, s) in tb.directory(node).own_sessions() {
            groups.push(s.desc.group);
        }
    }
    let distinct: HashSet<_> = groups.iter().collect();
    assert_eq!(
        distinct.len(),
        groups.len(),
        "post-recovery sessions still share addresses: {groups:?}"
    );
}

#[test]
fn directory_cache_matches_announced_population() {
    // Whatever one directory announces, every unpartitioned peer's
    // cache converges to it.
    let configs: Vec<DirectoryConfig> = (0..4)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 2, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(128);
            cfg
        })
        .collect();
    let mut tb = Testbed::new(
        configs,
        || Box::new(InformedRandomAllocator),
        Channel::perfect(SimDuration::from_millis(30)),
        7,
    );
    let mut rng = SimRng::new(17);
    for k in 0..5 {
        let now = tb.now();
        tb.directory_mut(0)
            .create_session(now, &format!("s{k}"), 127, media(), &mut rng)
            .unwrap();
    }
    tb.kick(0);
    tb.run_until(SimTime::from_secs(10));
    for node in 1..4 {
        assert_eq!(
            tb.directory(node).cached_sessions(),
            5,
            "node {node} cache incomplete"
        );
    }
    // Withdraw two sessions; deletions propagate.
    let ids: Vec<u64> = tb
        .directory(0)
        .own_sessions()
        .map(|(id, _)| *id)
        .take(2)
        .collect();
    for id in ids {
        if let Some(del) = tb.directory_mut(0).withdraw_session(id) {
            // Deliver the deletion by hand through the testbed's channel:
            // simplest is to ask each peer to handle it directly.
            for node in 1..4 {
                let now = tb.now();
                let mut rng = SimRng::new(23);
                tb.directory_mut(node).handle_packet(now, &del, &mut rng);
            }
        }
    }
    for node in 1..4 {
        assert_eq!(tb.directory(node).cached_sessions(), 3);
    }
}

#[test]
fn third_party_defence_repairs_deaf_originator() {
    // A (node 0) announces, then goes deaf (partitioned from everyone).
    // B (node 1) later picks the same address.  C (node 2) hears both
    // and must defend A's session so that B moves.
    let configs: Vec<DirectoryConfig> = (0..3)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 3, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(2);
            cfg
        })
        .collect();
    let mut tb = Testbed::new(
        configs,
        || Box::new(InformedRandomAllocator),
        Channel::perfect(SimDuration::from_millis(40)),
        13,
    );
    // B never hears A (partitioned from the start), so B's informed
    // allocator can land on A's address.
    tb.partition(0, 1);

    let mut rng_a = SimRng::new(31);
    let now = tb.now();
    tb.directory_mut(0)
        .create_session(now, "alpha", 127, media(), &mut rng_a)
        .unwrap();
    let group_a = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
    tb.kick(0);
    tb.run_until(SimTime::from_secs(2));
    assert_eq!(tb.directory(2).cached_sessions(), 1, "C must cache alpha");

    // Now A also goes deaf to C: only the third party can defend it.
    tb.partition(0, 2);

    // B allocates blindly until it lands on A's address.
    let mut rng_b = SimRng::new(37);
    loop {
        let now = tb.now();
        let id = tb
            .directory_mut(1)
            .create_session(now, "beta", 127, media(), &mut rng_b)
            .unwrap();
        let g = tb
            .directory(1)
            .own_sessions()
            .find(|(i, _)| **i == id)
            .unwrap()
            .1
            .desc
            .group;
        if g == group_a {
            break;
        }
        tb.directory_mut(1).withdraw_session(id);
    }
    tb.kick(1);
    let horizon = tb.now() + SimDuration::from_secs(60);
    tb.run_until(horizon);

    // C must have armed (and possibly fired) a third-party defence, and
    // B must have moved off A's address.
    let beta_group = tb
        .directory(1)
        .own_sessions()
        .find(|(_, s)| s.desc.name == "beta")
        .unwrap()
        .1
        .desc
        .group;
    assert_ne!(beta_group, group_a, "B must move off the defended address");
    let c_defended = tb.log.iter().any(|e| {
        e.node == 2
            && matches!(
                e.event,
                DirectoryEvent::Clash {
                    action: sdalloc::core::ClashAction::ThirdPartyArmed { .. },
                    ..
                }
            )
    });
    assert!(
        c_defended,
        "C never armed a third-party defence: {:?}",
        tb.log
    );
}
