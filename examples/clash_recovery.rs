//! Clash detection and recovery, end to end.
//!
//! Reproduces the Section 3 scenario on the in-memory SAP testbed:
//! two session directories are partitioned from each other, both
//! allocate the same address from a tiny space, the partition heals,
//! and the three-phase protocol resolves the clash — the tiebreak
//! loser moves to a new address while a third directory watches (and
//! would defend the incumbent had its originator gone silent).
//!
//! Run with: `cargo run --example clash_recovery`

use std::net::Ipv4Addr;

use sdalloc::core::{AddrSpace, InformedRandomAllocator};
use sdalloc::sap::directory::{DirectoryConfig, DirectoryEvent};
use sdalloc::sap::sdp::Media;
use sdalloc::sap::testbed::Testbed;
use sdalloc::sim::{Channel, SimDuration, SimRng, SimTime};

fn media() -> Vec<Media> {
    vec![Media {
        kind: "audio".into(),
        port: 5004,
        proto: "RTP/AVP".into(),
        format: 0,
    }]
}

fn main() {
    // Three directories on one SAP scope; 50 ms delay, no loss.
    let configs: Vec<DirectoryConfig> = (0..3)
        .map(|i| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
            cfg.space = AddrSpace::abstract_space(4); // tiny: collisions likely
            cfg
        })
        .collect();
    let mut tb = Testbed::new(
        configs,
        || Box::new(InformedRandomAllocator),
        Channel::perfect(SimDuration::from_millis(50)),
        7,
    );

    println!("t=0s: partitioning directory 0 from directory 1");
    tb.partition(0, 1);

    // Both partitioned directories allocate from the 4-address space
    // until they hold the same group.
    let mut rng0 = SimRng::new(41);
    let mut rng1 = SimRng::new(42);
    let (g0, g1) = loop {
        let now = tb.now();
        let id0 = tb
            .directory_mut(0)
            .create_session(now, "alpha", 127, media(), &mut rng0);
        let id1 = tb
            .directory_mut(1)
            .create_session(now, "beta", 127, media(), &mut rng1);
        let (Ok(id0), Ok(id1)) = (id0, id1) else {
            panic!("tiny space exhausted before a collision occurred");
        };
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        if g0 == g1 {
            break (g0, g1);
        }
        tb.directory_mut(0).withdraw_session(id0);
        tb.directory_mut(1).withdraw_session(id1);
    };
    println!("t=0s: directory 0 announced 'alpha' on {g0}");
    println!(
        "t=0s: directory 1 announced 'beta'  on {g1}  <-- same address, neither can hear the other"
    );

    tb.kick(0);
    tb.kick(1);
    tb.run_until(SimTime::from_secs(60));
    println!(
        "t=60s: both sessions announced repeatedly; directory 2 heard only one side per address"
    );

    println!("t=60s: healing the partition");
    tb.heal(0, 1);
    tb.run_until(SimTime::from_secs(1_400));

    // Report what the three-phase protocol did.
    for e in &tb.log {
        match &e.event {
            DirectoryEvent::Clash { group, action } => {
                println!(
                    "  [{:>7.1}s] node {} detected a clash on {group}: {:?}",
                    e.at.as_secs_f64(),
                    e.node,
                    action
                );
            }
            DirectoryEvent::Moved {
                session_id,
                from,
                to,
            } => {
                println!(
                    "  [{:>7.1}s] node {} MOVED session {session_id}: {from} -> {to}",
                    e.at.as_secs_f64(),
                    e.node
                );
            }
            DirectoryEvent::Degraded {
                session_id,
                group,
                ttl,
                exhausted_band,
                fallback_range,
            } => {
                println!(
                    "  [{:>7.1}s] node {} DEGRADED allocation for session {session_id} on \
                     {group} (ttl {ttl}: band {exhausted_band:?} exhausted, fell back to \
                     {fallback_range:?})",
                    e.at.as_secs_f64(),
                    e.node
                );
            }
            DirectoryEvent::Heard(_) => {}
        }
    }

    let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
    let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
    println!("\nfinal state: 'alpha' on {g0}, 'beta' on {g1}");
    assert_ne!(g0, g1, "the clash must be resolved");
    println!("clash resolved: the tiebreak loser moved, the incumbent kept its address.");
}
