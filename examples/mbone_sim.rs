//! Mbone-scale allocation simulation.
//!
//! Generates the synthetic 1998 Mbone map (or a smaller one with
//! `--nodes N`), prints its TTL/hop-count profile, then races the
//! paper's allocation algorithms against each other: how many sessions
//! can each allocate before the first address clash?
//!
//! Run with: `cargo run --release --example mbone_sim [-- --nodes 600 --space 400]`

use sdalloc::core::{
    AdaptiveIpr, AddrSpace, Allocator, InformedRandomAllocator, RandomAllocator, StaticIpr,
};
use sdalloc::experiments::fill::fill_until_clash;
use sdalloc::experiments::world::World;
use sdalloc::sim::SimRng;
use sdalloc::topology::hopcount::ttl_table;
use sdalloc::topology::mbone::{MboneMap, MboneParams};
use sdalloc::topology::workload::TtlDistribution;

fn main() {
    let mut nodes = 600usize;
    let mut space = 400u32;
    let mut trials = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).unwrap_or(600),
            "--space" => space = args.next().and_then(|v| v.parse().ok()).unwrap_or(400),
            "--trials" => trials = args.next().and_then(|v| v.parse().ok()).unwrap_or(5),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    println!("generating an Mbone-like map with {nodes} mrouters…");
    let map = MboneMap::generate(&MboneParams {
        seed: 98,
        target_nodes: nodes,
    });
    println!(
        "  {} nodes, {} links, {} countries",
        map.topo.node_count(),
        map.topo.link_count(),
        map.countries.len()
    );

    println!("\nTTL scope profile (cf. the paper's Section 2.4.1 table):");
    println!(
        "  {:>4}  {:>18}  {:>8}",
        "TTL", "most frequent hops", "max hops"
    );
    for row in ttl_table(&map.topo, (nodes / 200).max(1)) {
        println!(
            "  {:>4}  {:>18}  {:>8}",
            row.ttl, row.most_frequent, row.max_hops
        );
    }

    let dist = TtlDistribution::ds4();
    println!("\nfilling a {space}-address space with ds4-scoped sessions until the first clash");
    println!("(mean of {trials} trials per algorithm):\n");
    let algorithms: Vec<Box<dyn Allocator>> = vec![
        Box::new(RandomAllocator),
        Box::new(InformedRandomAllocator),
        Box::new(StaticIpr::three_band()),
        Box::new(StaticIpr::seven_band()),
        Box::new(AdaptiveIpr::aipr1()),
        Box::new(AdaptiveIpr::aipr3()),
        Box::new(AdaptiveIpr::hybrid()),
    ];
    println!("  {:>18}  {:>22}", "algorithm", "allocations to clash");
    let mut world = World::new(map.topo.clone(), AddrSpace::abstract_space(space));
    for alg in &algorithms {
        let mut rng = SimRng::new(7);
        let mut total = 0usize;
        for _ in 0..trials {
            total += fill_until_clash(
                &mut world,
                alg.as_ref(),
                &dist,
                &mut rng,
                space as usize * 8,
            );
        }
        println!(
            "  {:>18}  {:>22.1}",
            alg.name(),
            total as f64 / trials as f64
        );
    }
    println!("\nThe ordering mirrors the paper's Figure 5: random ≈ informed-random");
    println!("≪ partitioned, with perfect static partitioning (IPR-7) using the");
    println!("space almost linearly.  The adaptive variants give up first-clash");
    println!("headroom (their gap cushions reserve space) to stay robust when the");
    println!("TTL boundary policy is NOT known in advance — the trade-off the");
    println!("paper's Figures 12/13 quantify.");
}
