//! Quickstart: allocate multicast addresses the sdr way.
//!
//! Shows the core API in under a minute:
//!   1. pick an address space and an allocator,
//!   2. feed it the sessions your session directory can hear,
//!   3. get back a clash-avoiding multicast address for each new session.
//!
//! Run with: `cargo run --example quickstart`

use sdalloc::core::{
    AdaptiveIpr, Addr, AddrSpace, Allocator, InformedRandomAllocator, View, VisibleSession,
};
use sdalloc::sim::SimRng;

fn main() {
    // The sdr dynamic range: 224.2.128.0 – 224.2.255.255.
    let space = AddrSpace::sdr_dynamic();
    let mut rng = SimRng::new(2024);

    // ---------------------------------------------------------------
    // 1. The naive way: informed random over the whole space.
    // ---------------------------------------------------------------
    let ir = InformedRandomAllocator;
    let nothing_heard = View::empty();
    let addr = ir
        .allocate(&space, 127, &nothing_heard, &mut rng)
        .expect("empty space cannot be full");
    println!("IR allocated      {} for a TTL-127 session", space.ip(addr));

    // ---------------------------------------------------------------
    // 2. The paper's answer: Deterministic Adaptive IPRMA (AIPR-3).
    //    The allocator partitions the space by session TTL, adapts the
    //    partitions to what is actually in use, and bases the geometry
    //    for TTL x only on sessions with TTL >= x, so all sites that
    //    could clash agree on where the partition is.
    // ---------------------------------------------------------------
    let aipr = AdaptiveIpr::aipr3();

    // Suppose our session directory currently hears three sessions:
    let cache = [
        VisibleSession::new(Addr(32_700), 191), // a global session
        VisibleSession::new(Addr(32_650), 127), // an intercontinental one
        VisibleSession::new(Addr(31_000), 15),  // someone's site-local session
    ];
    let view = View::new(&cache);

    for ttl in [15u8, 63, 127, 191] {
        let addr = aipr
            .allocate(&space, ttl, &view, &mut rng)
            .expect("plenty of space");
        let (lo, hi) = aipr.band_range(&space, ttl, &view).expect("band exists");
        println!(
            "AIPR-3 allocated  {} for a TTL-{ttl:<3} session   (band [{lo}, {hi}) of {})",
            space.ip(addr),
            space.size()
        );
        assert!(!view.in_use(addr), "never hands out a visible address");
    }

    // ---------------------------------------------------------------
    // 3. Why partition at all?  Local sessions elsewhere are invisible
    //    to us, but they can only occupy their own TTL's band — so a
    //    global allocation can never land on an invisible local
    //    session.  That is the whole point of IPRMA.
    // ---------------------------------------------------------------
    println!();
    println!("each TTL gets its own sliver of the space (higher TTL = higher band),");
    println!("so invisible locally-scoped sessions elsewhere cannot collide with");
    println!("globally-scoped allocations made here.");
}
