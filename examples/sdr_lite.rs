//! sdr-lite: a real session directory over UDP multicast.
//!
//! Joins a SAP group on the local network, announces a session with an
//! AIPRMA-allocated address, and prints every session it discovers —
//! the same announce/listen loop sdr ran on the Mbone.
//!
//! Run two instances side by side to watch them discover each other
//! (multicast loopback is enabled, so one machine is enough):
//!
//! ```text
//! cargo run --example sdr_lite -- --name "team meeting" --ttl 63
//! cargo run --example sdr_lite -- --listen
//! ```
//!
//! By default it uses an administratively-scoped test group
//! (239.195.255.250:9875) rather than the real Mbone SAP group.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use sdalloc::core::AdaptiveIpr;
use sdalloc::sap::directory::DirectoryConfig;
use sdalloc::sap::net::{SapAgent, SapSocket};
use sdalloc::sap::sdp::Media;

fn main() {
    let mut name: Option<String> = None;
    let mut ttl: u8 = 15;
    let mut seconds: u64 = 30;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--name" => name = args.next(),
            "--ttl" => ttl = args.next().and_then(|v| v.parse().ok()).unwrap_or(15),
            "--seconds" => seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or(30),
            "--listen" => name = None,
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: sdr_lite [--name <session name> --ttl <ttl>] [--listen] [--seconds N]"
                );
                std::process::exit(2);
            }
        }
    }

    let group = Ipv4Addr::new(239, 195, 255, 250);
    let port = 9875;
    let socket = match SapSocket::open(group, port, 1) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot join multicast group {group}:{port}: {e}");
            eprintln!("(multicast may be unavailable in this environment)");
            std::process::exit(1);
        }
    };
    println!("joined {group}:{port}");

    let host = Ipv4Addr::new(127, 0, 0, 1);
    let cfg = DirectoryConfig::new(host);
    let seed = std::process::id() as u64;
    let mut agent = SapAgent::new(cfg, Box::new(AdaptiveIpr::aipr3()), socket, seed);

    if let Some(session_name) = &name {
        let media = vec![Media {
            kind: "audio".into(),
            port: 49_170,
            proto: "RTP/AVP".into(),
            format: 0,
        }];
        match agent.create_session(session_name, ttl, media) {
            Ok(id) => {
                let group = agent
                    .directory_mut()
                    .own_sessions()
                    .find(|(sid, _)| **sid == id)
                    .map(|(_, s)| s.desc.group)
                    .expect("just created");
                println!("announcing '{session_name}' (TTL {ttl}) on {group}");
            }
            Err(e) => {
                eprintln!("could not allocate an address: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!("listening for session announcements…");
    }

    let start = Instant::now();
    let mut last_report = 0usize;
    while start.elapsed() < Duration::from_secs(seconds) {
        if let Err(e) = agent.step(Duration::from_millis(200)) {
            eprintln!("socket error: {e}");
            break;
        }
        let cached = agent.stats().cached_sessions;
        if cached != last_report {
            last_report = cached;
            println!("--- directory now holds {cached} remote session(s) ---");
            let space = agent.directory_mut().config().space;
            let _ = space;
            for (key, entry) in agent.directory_mut().cache().iter() {
                println!(
                    "  '{}' on {}/{} (from {}, v{})",
                    entry.name(),
                    entry.group(),
                    entry.ttl(),
                    key.origin,
                    entry.version()
                );
            }
        }
    }
    let stats = agent.stats();
    println!(
        "done: sent {} announcement(s), received {} packet(s), {} session(s) cached",
        stats.sent, stats.received, stats.cached_sessions
    );
}
