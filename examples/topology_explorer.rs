//! Topology explorer: inspect the two generators the experiments run on.
//!
//! Prints structural statistics for the synthetic Mbone map (threshold
//! rings, scope-zone sizes, hop counts) and a Doar-style random
//! topology (degree distribution, link-length profile) — useful for
//! eyeballing whether a parameter change keeps the substrates honest.
//!
//! Run with: `cargo run --release --example topology_explorer`

use std::collections::BTreeMap;

use sdalloc::sim::SimRng;
use sdalloc::topology::doar::{generate, DoarParams};
use sdalloc::topology::mbone::{ttl as scope_ttl, MboneMap, MboneParams};
use sdalloc::topology::routing::SourceTree;
use sdalloc::topology::{NodeId, Scope, ScopeCache};

fn main() {
    explore_mbone();
    println!();
    explore_doar();
}

fn explore_mbone() {
    println!("=== synthetic Mbone map (paper scale: 1864 mrouters) ===");
    let map = MboneMap::generate(&MboneParams {
        seed: 7,
        target_nodes: 1_864,
    });
    println!(
        "{} nodes, {} links, {} countries",
        map.topo.node_count(),
        map.topo.link_count(),
        map.countries.len()
    );

    // Threshold census.
    let mut thresholds: BTreeMap<u8, usize> = BTreeMap::new();
    for l in map.topo.links() {
        *thresholds.entry(l.threshold).or_default() += 1;
    }
    println!("link TTL thresholds:");
    for (t, n) in &thresholds {
        println!("  threshold {t:>3}: {n:>5} links");
    }

    // Scope-zone sizes from a European and a North-American vantage.
    let uk = map
        .countries
        .iter()
        .position(|c| c.name == "uk")
        .expect("uk exists");
    let uk_src = map.countries[uk].backbone[0];
    let us_src = map.countries[0].backbone[0];
    let mut scopes = ScopeCache::new(map.topo.clone());
    println!("scope-zone sizes (mrouters reached):");
    println!("  {:>18} {:>10} {:>10}", "TTL", "from UK", "from US");
    for (label, ttl) in [
        ("1 (subnet)", scope_ttl::SUBNET),
        ("15 (site)", scope_ttl::SITE),
        ("47 (national)", scope_ttl::NATIONAL_EU),
        ("63 (internat.)", scope_ttl::INTERNATIONAL),
        ("127 (intercont.)", scope_ttl::INTERCONTINENTAL),
        ("191 (global)", scope_ttl::GLOBAL),
    ] {
        let z_uk = scopes.zone_size(Scope::new(uk_src, ttl));
        let z_us = scopes.zone_size(Scope::new(us_src, ttl));
        println!("  {label:>18} {z_uk:>10} {z_us:>10}");
    }
    println!("note the Figure-3 asymmetry: TTL 47 ≈ TTL 63 from the US (no 48-");
    println!("boundaries there), but much smaller from the UK.");
}

fn explore_doar() {
    println!("=== Doar-style random topology (request-response substrate) ===");
    let n = 5_000;
    let topo = generate(&DoarParams::new(n, 11));
    println!("{} nodes, {} links", topo.node_count(), topo.link_count());

    // Degree distribution.
    let mut degrees: BTreeMap<usize, usize> = BTreeMap::new();
    for v in topo.node_ids() {
        *degrees.entry(topo.degree(v)).or_default() += 1;
    }
    let max_degree = degrees.keys().max().copied().unwrap_or(0);
    println!("degree distribution (tree + redundant backbone links):");
    for (d, c) in degrees.iter().take(8) {
        println!("  degree {d:>2}: {c:>6} nodes");
    }
    if max_degree > 8 {
        println!("  …max degree {max_degree}");
    }

    // Delay profile from a few random sources.
    let mut rng = SimRng::new(3);
    let mut max_delay = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for _ in 0..5 {
        let src = NodeId(rng.below(n as u64) as u32);
        let tree = SourceTree::compute(&topo, src);
        for d in tree.delay.iter() {
            if *d != sdalloc::sim::SimDuration::MAX {
                let secs = d.as_secs_f64();
                max_delay = max_delay.max(secs);
                sum += secs;
                count += 1;
            }
        }
    }
    println!(
        "one-way delays over shortest-path trees: mean {:.1} ms, max {:.1} ms",
        1e3 * sum / count as f64,
        1e3 * max_delay
    );
    println!("(the early links form long 'backbone' spans; later links cluster locally)");
}
