#!/usr/bin/env bash
# The full local quality gate: formatting, clippy (deny warnings), the
# workspace's own lint pass + invariant verifier + semantic lint tier,
# then the test suite.  Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo xtask check
# Semantic tier again in machine-readable form: emits the SARIF-lite
# artifact and enforces the baseline diff and the <10s wall-time budget
# (both are gate failures inside xtask — new findings or a budget
# overrun exit non-zero).
echo "==> cargo xtask check --semantic --json  (artifact: target/semantic.json)"
mkdir -p target
cargo xtask check --semantic --json > target/semantic.json
# Smoke-check the rule-documentation command so a broken rule table
# fails the gate, not a developer's first `--explain` invocation.
echo "==> cargo xtask check --explain wire-taint"
cargo xtask check --explain wire-taint > /dev/null
run cargo xtask model --smoke
run cargo run -q -p sdalloc-experiments -- chaos --smoke
# The chaos smoke must carry the recovery/admission rows: the digest
# reconciliation speedup and the storm-quota budget invariant are gate
# signals, not optional extras.
echo "==> chaos smoke gates: crash_restart_recon + storm_quota rows"
for row in crash_restart_recon storm_quota; do
    grep -q "\"$row\"" results_full/chaos_smoke.json \
        || { echo "missing $row row in results_full/chaos_smoke.json"; exit 1; }
done
# The threaded-runtime soak writes its own (wall-clock) sidecar; its
# invariants — no stalled readers, no torn rows — are enforced inside
# the chaos command, but the artifact must exist and record clean runs.
echo "==> runtime_soak sidecar: no stalls, no torn rows"
grep -q '"runtime_soak"' results_full/runtime_soak_smoke.json \
    || { echo "missing results_full/runtime_soak_smoke.json"; exit 1; }
grep -q '"stalled_readers": 0' results_full/runtime_soak_smoke.json \
    || { echo "runtime_soak smoke recorded stalled readers"; exit 1; }
grep -q '"integrity_failures": 0' results_full/runtime_soak_smoke.json \
    || { echo "runtime_soak smoke recorded torn rows"; exit 1; }
run cargo run -q -p sdalloc-bench --bin directory_scale -- --smoke
run cargo run -q -p sdalloc-bench --bin runtime_throughput -- --smoke
run cargo test -q

echo "All checks passed."
