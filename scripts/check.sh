#!/usr/bin/env bash
# The full local quality gate: formatting, clippy (deny warnings), the
# workspace's own lint pass + invariant verifier, then the test suite.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo xtask check
run cargo xtask model --smoke
run cargo run -q -p sdalloc-experiments -- chaos --smoke
run cargo run -q -p sdalloc-bench --bin directory_scale -- --smoke
run cargo test -q

echo "All checks passed."
