//! The session directory engine — an sdr-alike.
//!
//! Ties together the four mechanisms the paper describes into one
//! transport-agnostic state machine:
//!
//! * the **announcement cache** (announce/listen, [`crate::cache`]);
//! * the **announcement schedule** (exponential back-off,
//!   [`crate::schedule`]);
//! * the **address allocator** (any [`sdalloc_core::Allocator`] — the
//!   dual use of announcements as reservations);
//! * the **clash detector/responder** (three-phase recovery,
//!   [`sdalloc_core::clash`]).
//!
//! The engine never touches a socket or a clock: callers feed it
//! received packets and the current time, and it returns packets to
//! send.  The same code therefore runs under the discrete-event
//! simulator ([`crate::testbed`]), the real UDP transport
//! ([`crate::net`]) and the examples.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdalloc_core::{
    Addr, AddrSpace, Allocator, ClashAction, ClashPolicy, ClashResponder, Incumbent, SessionId,
    View, VisibleSession,
};
use sdalloc_sim::{ShardToken, ShardedTimerQueue, SimDuration, SimRng, SimTime};
use sdalloc_telemetry::{CounterId, GaugeId, Severity, Telemetry, NO_ARG};

use crate::cache::{
    AnnouncementCache, CacheKey, CacheUpdate, DIGEST_BUCKETS, DIGEST_SEED, TTL_BANDS,
};
use crate::schedule::BackoffSchedule;
use crate::sdp::{DescRef, Media, Origin, SessionDescription};
use crate::wire::{
    msg_id_hash, CacheDigest, MessageType, ReconMessage, ReconcileRequest, SapPacket,
};

/// Static configuration of a directory instance.
#[derive(Debug, Clone)]
pub struct DirectoryConfig {
    /// This host's unicast address (goes into `o=` lines).
    pub host: Ipv4Addr,
    /// The address space allocations are made from.
    pub space: AddrSpace,
    /// Announcement repeat schedule.
    pub schedule: BackoffSchedule,
    /// Cache expiry timeout.
    pub cache_timeout: SimDuration,
    /// Clash-recovery timing policy.
    pub clash_policy: ClashPolicy,
    /// Announcement bandwidth budget for the whole scope, bits/second.
    /// When set, the background repeat interval stretches with the
    /// number of sessions sharing the scope (sdr/RFC 2974 behaviour —
    /// and the scaling pressure behind the paper's Section 4: "the
    /// inter-announcement interval would become too long to give any
    /// kind of assurance of reliability").  `None` = unpaced.
    pub bandwidth_limit_bps: Option<f64>,
    /// Graceful degradation: when the allocator's own partition is
    /// exhausted, widen to the whole space (via
    /// [`sdalloc_core::Allocator::allocate_or_widen`]) and log a
    /// [`DirectoryEvent::Degraded`] instead of failing the create.
    pub exhaustion_fallback: bool,
    /// Staleness-aware cache expiry: when set to `Some(k)`, entries not
    /// refreshed within `k` background announcement periods (the
    /// schedule cap) are purged ahead of the hard cache timeout.  After
    /// a partition heal or restart this sheds state from sessions that
    /// moved or died unheard, at the cost of forgetting sessions whose
    /// announcements were merely lost.  `None` = hard timeout only.
    pub staleness_factor: Option<u32>,
    /// Anti-entropy digest reconciliation.  When enabled the directory
    /// periodically broadcasts a cache digest, answers divergent peers,
    /// and — after [`SessionDirectory::restart`] — rebuilds its cache
    /// from a live peer in a handful of RTTs instead of waiting out a
    /// full announce cycle.  `None` = announce/listen only.
    pub reconcile: Option<ReconcileConfig>,
    /// Ingest resource governor: per-source token-bucket rate limits
    /// plus cache admission control (per-source quotas, a hard entry
    /// budget, tiered eviction) so announcement storms cannot grow the
    /// cache unboundedly or evict legitimate sessions.  `None` =
    /// admit everything (the paper's original trusting behaviour).
    pub governor: Option<GovernorConfig>,
}

/// Timing and rate-limit knobs of the anti-entropy reconciliation
/// protocol (see [`DirectoryConfig::reconcile`]).
#[derive(Debug, Clone, Copy)]
pub struct ReconcileConfig {
    /// Interval between periodic digest broadcasts.
    pub digest_interval: SimDuration,
    /// Digest cadence while *rebuilding*: a restarted node re-digests
    /// on this (much shorter) interval until a peer's digest matches,
    /// so one lost or rate-limited exchange costs seconds, not a full
    /// `digest_interval`.
    pub rebuild_interval: SimDuration,
    /// Minimum gap between digests sent in *response* to a rebuilding
    /// peer — the rate limit that keeps a digest storm from amplifying.
    pub min_digest_gap: SimDuration,
    /// Minimum gap between reconcile requests we originate.
    pub min_request_gap: SimDuration,
    /// Cap on sessions re-announced in answer to one request.
    pub max_reannounce_per_request: usize,
}

impl Default for ReconcileConfig {
    fn default() -> Self {
        ReconcileConfig {
            digest_interval: SimDuration::from_secs(30),
            rebuild_interval: SimDuration::from_secs(2),
            min_digest_gap: SimDuration::from_secs(1),
            min_request_gap: SimDuration::from_secs(1),
            max_reannounce_per_request: 64,
        }
    }
}

/// Resource limits of the ingest governor (see
/// [`DirectoryConfig::governor`]).
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// Hard cache entry budget.  A new entry arriving at the budget
    /// triggers tiered eviction (stale → unverified-new →
    /// quota-exceeding); with no evictable victim the entry is refused.
    pub max_entries: usize,
    /// Per-source cache quota: a source already holding this many
    /// entries has further *new* sessions refused (refreshes of its
    /// existing entries still land).
    pub per_source_quota: u32,
    /// Sustained per-source announcement rate, packets/second.
    pub rate_per_sec: f64,
    /// Token-bucket burst depth, packets.
    pub burst: f64,
    /// Upper bound on tracked per-source token buckets.  At the bound,
    /// fully-refilled buckets are pruned first; if every tracked source
    /// is still active, untracked sources bypass the rate limit (the
    /// quota and budget tiers still hold the state bound).
    pub max_tracked_sources: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            max_entries: 4096,
            per_source_quota: 64,
            rate_per_sec: 10.0,
            burst: 20.0,
            max_tracked_sources: 1024,
        }
    }
}

impl DirectoryConfig {
    /// A sensible default for host `host`: sdr dynamic space, paper
    /// back-off schedule, one-hour cache timeout.
    pub fn new(host: Ipv4Addr) -> Self {
        DirectoryConfig {
            host,
            space: AddrSpace::sdr_dynamic(),
            schedule: BackoffSchedule::default(),
            cache_timeout: SimDuration::from_hours(1),
            clash_policy: ClashPolicy::default(),
            bandwidth_limit_bps: None,
            exhaustion_fallback: false,
            staleness_factor: None,
            reconcile: None,
            governor: None,
        }
    }
}

/// One of our own announced sessions.
#[derive(Debug, Clone)]
pub struct OwnSession {
    /// Current description (including the allocated group).
    pub desc: SessionDescription,
    /// When we first announced it.
    pub first_announced: SimTime,
    /// Number of announcements sent.
    pub sends: u32,
    /// When the next scheduled announcement is due.
    pub next_send: SimTime,
}

/// Why a session could not be created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CreateError {
    /// The allocator found no free address for this TTL.
    SpaceFull,
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::SpaceFull => write!(f, "no free multicast address for this scope"),
        }
    }
}

impl std::error::Error for CreateError {}

/// Events a caller may want to react to (logging, metrics, tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryEvent {
    /// A clash was detected on `group`; we are taking `action`.
    Clash {
        /// The contested group.
        group: Ipv4Addr,
        /// What the three-phase protocol decided.
        action: ClashAction,
    },
    /// We moved one of our sessions to a new address after losing a race.
    Moved {
        /// Our session id.
        session_id: u64,
        /// The abandoned group.
        from: Ipv4Addr,
        /// The replacement group.
        to: Ipv4Addr,
    },
    /// Cache update classification for an incoming announcement.
    Heard(CacheUpdate),
    /// Graceful degradation: the allocator's partition was exhausted
    /// and the address was taken from outside it (whole-space informed
    /// random).  The session exists, but without the partition's
    /// clash-avoidance guarantees — callers should surface this.
    Degraded {
        /// Our session id.
        session_id: u64,
        /// The out-of-partition group it landed on.
        group: Ipv4Addr,
        /// The session's scope (TTL) whose partition was exhausted.
        ttl: u8,
        /// The exhausted partition band, as `[lo, hi)` address indexes
        /// into the configured space.
        exhausted_band: (u32, u32),
        /// The fallback range the address was actually drawn from
        /// (whole-space informed random), as `[lo, hi)` indexes.
        fallback_range: (u32, u32),
    },
}

/// The kinds of deadline the directory schedules in its timer queue.
/// Exposed so event-driven callers ([`crate::testbed`], the
/// differential trace tests) can drive [`SessionDirectory::on_timer`]
/// directly instead of going through the [`SessionDirectory::poll`]
/// compat wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// The next scheduled announcement of one of our own sessions.
    Announce(u64),
    /// The earliest cache entry may have aged out (expiry or staleness
    /// horizon).  Conservative: a refresh after arming makes the wake a
    /// no-op purge, never a missed one.
    CacheExpiry,
    /// The earliest pending third-party clash defence is due.
    /// Conservative in the same way: a suppressed defence leaves the
    /// wake a no-op.
    Defence,
    /// The next periodic reconciliation digest broadcast is due (only
    /// armed when [`DirectoryConfig::reconcile`] is set).
    Reconcile,
}

/// Pre-registered metric ids for the directory's hot paths.  Built
/// once per [`SessionDirectory`]; every update afterwards is a branch
/// plus a `Vec` index (see `sdalloc_telemetry`).
#[derive(Debug, Clone, Copy)]
struct DirMetrics {
    sessions_created: CounterId,
    sessions_withdrawn: CounterId,
    degraded: CounterId,
    moved: CounterId,
    restarts: CounterId,
    announce_sent: CounterId,
    defence_sent: CounterId,
    rx_packets: CounterId,
    rx_deletes: CounterId,
    rx_unparseable: CounterId,
    rx_dropped: CounterId,
    heard_new: CounterId,
    heard_refreshed: CounterId,
    heard_modified: CounterId,
    heard_stale: CounterId,
    purged_expired: CounterId,
    purged_stale: CounterId,
    cache_size: GaugeId,
    recon_digest_sent: CounterId,
    recon_digest_heard: CounterId,
    recon_request_sent: CounterId,
    recon_request_heard: CounterId,
    recon_reannounced: CounterId,
    recon_completed: CounterId,
    recon_rebuilding: GaugeId,
    rebuild_fraction: GaugeId,
    gov_rate_limited: CounterId,
    gov_rejected_quota: CounterId,
    gov_rejected_budget: CounterId,
    gov_evicted_stale: CounterId,
    gov_evicted_unverified: CounterId,
    gov_evicted_quota: CounterId,
}

impl DirMetrics {
    fn register(t: &mut Telemetry) -> DirMetrics {
        DirMetrics {
            sessions_created: t.counter("dir.sessions_created"),
            sessions_withdrawn: t.counter("dir.sessions_withdrawn"),
            degraded: t.counter("dir.degraded"),
            moved: t.counter("dir.moved"),
            restarts: t.counter("dir.restarts"),
            announce_sent: t.counter("announce.sent"),
            defence_sent: t.counter("announce.defence_sent"),
            rx_packets: t.counter("net.rx_packets"),
            rx_deletes: t.counter("net.rx_deletes"),
            rx_unparseable: t.counter("net.rx_unparseable"),
            rx_dropped: t.counter("net.rx_dropped"),
            heard_new: t.counter("cache.heard_new"),
            heard_refreshed: t.counter("cache.heard_refreshed"),
            heard_modified: t.counter("cache.heard_modified"),
            heard_stale: t.counter("cache.heard_stale"),
            purged_expired: t.counter("cache.purged_expired"),
            purged_stale: t.counter("cache.purged_stale"),
            cache_size: t.gauge("cache.size"),
            recon_digest_sent: t.counter("recon.digest_sent"),
            recon_digest_heard: t.counter("recon.digest_heard"),
            recon_request_sent: t.counter("recon.request_sent"),
            recon_request_heard: t.counter("recon.request_heard"),
            recon_reannounced: t.counter("recon.reannounced"),
            recon_completed: t.counter("recon.completed"),
            recon_rebuilding: t.gauge("recon.rebuilding"),
            rebuild_fraction: t.gauge("cache.rebuild_fraction"),
            gov_rate_limited: t.counter("governor.rate_limited"),
            gov_rejected_quota: t.counter("governor.rejected_quota"),
            gov_rejected_budget: t.counter("governor.rejected_budget"),
            gov_evicted_stale: t.counter("governor.evicted_stale"),
            gov_evicted_unverified: t.counter("governor.evicted_unverified"),
            gov_evicted_quota: t.counter("governor.evicted_quota"),
        }
    }
}

/// Rebuild progress after a [`SessionDirectory::restart`] with
/// reconciliation enabled: the directory stays in this phase until a
/// peer digest matches its own.
#[derive(Debug, Clone)]
struct RebuildState {
    /// Cache entries held at the instant of the crash — the
    /// denominator of the `cache.rebuild_fraction` gauge.
    entries_at_crash: u64,
    /// The most recent peer digest heard while rebuilding; when our
    /// scope digest reaches it, the rebuild is complete.
    last_peer_digest: Option<[u64; DIGEST_BUCKETS]>,
}

/// One source's ingest token bucket.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_refill: SimTime,
}

/// The timer shard holding the single-instance control timers (cache
/// expiry, clash defence, reconciliation).  Shards `0..TTL_BANDS` hold
/// the announce timers of sessions in the matching TTL partition band.
const CONTROL_SHARD: usize = TTL_BANDS;

/// The session directory engine.
pub struct SessionDirectory {
    cfg: DirectoryConfig,
    allocator: Box<dyn Allocator>,
    cache: AnnouncementCache,
    // lint:bounded: this host's own sessions, created by the local application — wire traffic cannot grow it, and a site announces a handful of sessions
    own: BTreeMap<u64, OwnSession>,
    responder: ClashResponder,
    next_session_id: u64,
    /// Events produced outside [`Self::on_packet`] (e.g. degraded
    /// allocations during [`Self::create_session`]), drained by
    /// [`Self::take_events`] or appended to the next `on_packet`
    /// result.
    pending_events: Vec<DirectoryEvent>,
    /// Every deadline the directory owns, sharded by TTL partition
    /// band: announce timers for a session live in the shard of its
    /// TTL band (so churn in one band never reshuffles another band's
    /// heap), and the single-instance control timers (cache expiry,
    /// clash defence, reconciliation) live in [`CONTROL_SHARD`].  The
    /// global token sequence preserves exact single-queue fire order.
    timers: ShardedTimerQueue<TimerKind>,
    /// Live announce-timer token per own session (cancelled on
    /// withdraw).
    announce_timers: BTreeMap<u64, ShardToken>,
    /// The single outstanding cache-expiry timer, with the deadline it
    /// was armed for.  Armed deadlines are never later than required
    /// (the earliest `last_heard` can only move forward), so the timer
    /// is left alone until it fires and re-arms.
    cache_timer: Option<(ShardToken, SimTime)>,
    /// The single outstanding clash-defence timer, with its deadline.
    /// Re-armed earlier when a new clash undercuts it.
    defence_timer: Option<(ShardToken, SimTime)>,
    /// The single outstanding periodic-digest timer, with its deadline
    /// (only armed when reconciliation is configured).
    recon_timer: Option<(ShardToken, SimTime)>,
    /// Scratch buffer for [`Self::poll`]'s batch drain; kept across
    /// calls so a steady-state poll allocates nothing.
    due_scratch: Vec<(SimTime, TimerKind)>,
    /// Post-restart rebuild progress; `None` once a peer digest
    /// confirms we are back in sync (or when reconciliation is off).
    rebuilding: Option<RebuildState>,
    /// When we last transmitted a digest (periodic or responsive) —
    /// the [`ReconcileConfig::min_digest_gap`] rate-limit clock.
    last_digest_sent: Option<SimTime>,
    /// When we last originated a reconcile request — the
    /// [`ReconcileConfig::min_request_gap`] rate-limit clock.
    last_request_sent: Option<SimTime>,
    /// Per-source ingest token buckets, bounded by
    /// [`GovernorConfig::max_tracked_sources`].  `BTreeMap` so pruning
    /// order — and therefore every governor decision — is
    /// deterministic.
    // lint:bounded: capped at GovernorConfig::max_tracked_sources with full-bucket pruning at the bound
    gov_buckets: BTreeMap<Ipv4Addr, TokenBucket>,
    /// Per-node telemetry: counters/gauges for the directory paths plus
    /// the flight recorder.  Clash-decision metrics live in the
    /// responder's own bundle and are folded in on snapshot/dump.
    telemetry: Telemetry,
    metrics: DirMetrics,
}

impl SessionDirectory {
    /// Create a directory with the given allocator.
    pub fn new(cfg: DirectoryConfig, allocator: Box<dyn Allocator>) -> Self {
        let cache = AnnouncementCache::new(cfg.cache_timeout);
        let responder =
            ClashResponder::with_telemetry(cfg.clash_policy.clone(), Telemetry::new(0, 0));
        let mut telemetry = Telemetry::new(0, 0);
        let metrics = DirMetrics::register(&mut telemetry);
        let mut dir = SessionDirectory {
            cfg,
            allocator,
            cache,
            own: BTreeMap::new(),
            responder,
            next_session_id: 1,
            pending_events: Vec::new(),
            timers: ShardedTimerQueue::new(TTL_BANDS + 1),
            announce_timers: BTreeMap::new(),
            cache_timer: None,
            defence_timer: None,
            recon_timer: None,
            due_scratch: Vec::new(),
            rebuilding: None,
            last_digest_sent: None,
            last_request_sent: None,
            gov_buckets: BTreeMap::new(),
            telemetry,
            metrics,
        };
        dir.arm_recon_timer(SimTime::ZERO);
        dir
    }

    /// The directory's own telemetry bundle.  Clash-decision metrics
    /// live in the responder's bundle; use
    /// [`Self::telemetry_snapshot_json`] for the merged view.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the telemetry bundle, e.g. so transports
    /// ([`crate::net`]) can register and record their own events.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Turn all recording (directory + clash responder) on or off.
    /// Disabled recording costs a single branch per instrumented site;
    /// registered ids stay valid.
    pub fn set_telemetry_enabled(&mut self, on: bool) {
        self.telemetry.set_enabled(on);
        let mut t = self.responder.take_telemetry();
        t.set_enabled(on);
        self.responder.set_telemetry(t);
    }

    /// Stamp the node id and seed rendered into snapshots and dumps.
    pub fn set_telemetry_identity(&mut self, node: u32, seed: u64) {
        self.telemetry.set_identity(node, seed);
        let mut t = self.responder.take_telemetry();
        t.set_identity(node, seed);
        self.responder.set_telemetry(t);
    }

    /// Deterministic per-node metrics snapshot as JSON: the directory's
    /// bundle with the clash responder's metrics folded in.
    pub fn telemetry_snapshot_json(&self) -> String {
        let mut merged = self.telemetry.clone();
        merged.merge_metrics_from(self.responder.telemetry());
        merged.snapshot_json()
    }

    /// Post-mortem flight-recorder dump (merged metrics + the retained
    /// trace events) as JSON, stamped with `reason`.
    pub fn flight_dump_json(&self, reason: &str) -> String {
        let mut merged = self.telemetry.clone();
        merged.merge_metrics_from(self.responder.telemetry());
        merged.dump_json(reason)
    }

    /// The configuration.
    pub fn config(&self) -> &DirectoryConfig {
        &self.cfg
    }

    /// Number of sessions in the listen cache.
    pub fn cached_sessions(&self) -> usize {
        self.cache.len()
    }

    /// Our own sessions.
    pub fn own_sessions(&self) -> impl Iterator<Item = (&u64, &OwnSession)> {
        self.own.iter()
    }

    /// Direct read access to the cache.
    pub fn cache(&self) -> &AnnouncementCache {
        &self.cache
    }

    /// Test helper: inject a cache entry without going through a packet.
    #[doc(hidden)]
    pub fn cache_observe_for_test(&mut self, now: SimTime, desc: SessionDescription) {
        self.cache.observe_announce(now, desc);
        self.arm_cache_timer();
    }

    /// The allocator's current view: everything cached plus our own
    /// sessions (we must not collide with ourselves).
    pub fn current_view(&self) -> Vec<VisibleSession> {
        let mut v = self.cache.visible_sessions(&self.cfg.space);
        for s in self.own.values() {
            if let Some(addr) = self.cfg.space.index_of(s.desc.group) {
                v.push(VisibleSession::new(addr, s.desc.ttl));
            }
        }
        v.sort_by_key(|s| (s.addr, s.ttl));
        v
    }

    /// Create and start announcing a session.  Returns the session id;
    /// the first announcement is emitted by the next [`Self::poll`].
    pub fn create_session(
        &mut self,
        now: SimTime,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
        rng: &mut SimRng,
    ) -> Result<u64, CreateError> {
        let view_data = self.current_view();
        let view = View::new(&view_data);
        let (addr, widened, band) = if self.cfg.exhaustion_fallback {
            let out = self
                .allocator
                .allocate_or_widen(&self.cfg.space, ttl, &view, rng)
                .ok_or(CreateError::SpaceFull)?;
            (out.addr, out.widened, out.band)
        } else {
            let addr = self
                .allocator
                .allocate(&self.cfg.space, ttl, &view, rng)
                .ok_or(CreateError::SpaceFull)?;
            (addr, false, (0, self.cfg.space.size()))
        };
        let session_id = self.next_session_id;
        self.next_session_id += 1;
        self.telemetry.inc(self.metrics.sessions_created);
        self.telemetry.record(
            now.as_nanos(),
            Severity::Info,
            "allocate",
            "created",
            [
                ("session", session_id),
                ("addr", u64::from(addr.0)),
                ("ttl", u64::from(ttl)),
            ],
        );
        if widened {
            self.telemetry.inc(self.metrics.degraded);
            self.telemetry.record(
                now.as_nanos(),
                Severity::Warn,
                "allocate",
                "widened",
                [
                    ("session", session_id),
                    ("band_lo", u64::from(band.0)),
                    ("band_hi", u64::from(band.1)),
                ],
            );
            self.pending_events.push(DirectoryEvent::Degraded {
                session_id,
                group: self.cfg.space.ip(addr),
                ttl,
                exhausted_band: band,
                fallback_range: (0, self.cfg.space.size()),
            });
        }
        let desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id,
                version: 1,
                address: self.cfg.host,
            },
            name: name.to_string(),
            info: None,
            group: self.cfg.space.ip(addr),
            ttl,
            start: 0,
            stop: 0,
            media,
        };
        self.own.insert(
            session_id,
            OwnSession {
                desc,
                first_announced: now,
                sends: 0,
                next_send: now,
            },
        );
        let token = self.timers.schedule(
            AnnouncementCache::ttl_band(ttl),
            now,
            TimerKind::Announce(session_id),
        );
        self.announce_timers.insert(session_id, token);
        Ok(session_id)
    }

    /// Stop announcing a session; returns the deletion packet to send.
    pub fn withdraw_session(&mut self, session_id: u64) -> Option<SapPacket> {
        let s = self.own.remove(&session_id)?;
        self.telemetry.inc(self.metrics.sessions_withdrawn);
        if let Some(token) = self.announce_timers.remove(&session_id) {
            self.timers.cancel(token);
        }
        let payload = s.desc.format();
        Some(SapPacket::delete(
            self.cfg.host,
            msg_id_hash(&payload),
            payload,
        ))
    }

    /// The cache purge horizon: the hard timeout, tightened by the
    /// staleness factor when configured.
    fn cache_horizon(&self) -> SimDuration {
        let mut horizon = self.cfg.cache_timeout;
        if let Some(k) = self.cfg.staleness_factor {
            horizon = horizon.min(self.cfg.schedule.cap.saturating_mul(k as u64));
        }
        horizon
    }

    /// Arm (or keep) the cache-expiry timer for the oldest entry.  The
    /// purge condition is strict (`elapsed > horizon`), so the deadline
    /// is one nanosecond past the horizon.  An already-armed timer is
    /// never later than required — the earliest `last_heard` only moves
    /// forward — so it is left in place; an early fire is a no-op purge.
    fn arm_cache_timer(&mut self) {
        if self.cache_timer.is_some() {
            return;
        }
        if let Some(oldest) = self.cache.earliest_last_heard() {
            let deadline = oldest + self.cache_horizon() + SimDuration::from_nanos(1);
            let token = self
                .timers
                .schedule(CONTROL_SHARD, deadline, TimerKind::CacheExpiry); // lint:allow(wire-taint): the deadline is the locally-stamped receipt time of the oldest entry plus the configured horizon; no wire field reaches it
            self.cache_timer = Some((token, deadline));
        }
    }

    /// Arm or tighten the clash-defence timer to the responder's next
    /// deadline.  A new clash can undercut the armed deadline, so this
    /// reschedules earlier when needed; suppression (the originator
    /// defended itself) just leaves a no-op early fire behind.
    fn arm_defence_timer(&mut self) {
        let Some(deadline) = self.responder.next_deadline() else {
            return;
        };
        match self.defence_timer {
            Some((_, armed)) if armed <= deadline => {}
            current => {
                if let Some((token, _)) = current {
                    self.timers.cancel(token);
                }
                let token = self
                    .timers
                    .schedule(CONTROL_SHARD, deadline, TimerKind::Defence);
                self.defence_timer = Some((token, deadline));
            }
        }
    }

    /// The deadline of the next periodic digest broadcast.  Kept as a
    /// named seam for the dataflow lint: reconciliation timing derives
    /// only from the local clock and the configured interval — wire
    /// digests trigger an exchange but never parameterise when our own
    /// timers fire.
    // lint:sanitizer(wire-taint): deadline = local now + configured interval; no wire-derived field reaches the timer queue
    fn reconcile_deadline(now: SimTime, interval: SimDuration) -> SimTime {
        now + interval
    }

    /// Arm (or keep) the periodic digest timer.  No-op when
    /// reconciliation is not configured.
    fn arm_recon_timer(&mut self, now: SimTime) {
        if self.recon_timer.is_some() {
            return;
        }
        let Some(rc) = &self.cfg.reconcile else {
            return;
        };
        let interval = if self.rebuilding.is_some() {
            rc.rebuild_interval.min(rc.digest_interval)
        } else {
            rc.digest_interval
        };
        let deadline = Self::reconcile_deadline(now, interval);
        let token = self
            .timers
            .schedule(CONTROL_SHARD, deadline, TimerKind::Reconcile);
        self.recon_timer = Some((token, deadline));
    }

    /// The scope digest: the cache's accumulators with our own
    /// (uncached) sessions folded in, so two in-sync peers digest
    /// identically no matter who originated which session.
    fn scope_digest(&self) -> [u64; DIGEST_BUCKETS] {
        let mut d = self.cache.digest();
        for s in self.own.values() {
            let (bucket, hash) = AnnouncementCache::desc_digest(&s.desc);
            d[bucket] ^= hash; // lint:allow(panic-reach): desc_digest masks the bucket into 0..DIGEST_BUCKETS
        }
        d
    }

    /// Build a digest broadcast packet and stamp the rate-limit clock.
    fn digest_packet(&mut self, now: SimTime) -> SapPacket {
        let digest = self.scope_digest();
        let msg = ReconMessage::Digest(CacheDigest {
            seed: DIGEST_SEED,
            entries: (self.cache.len() + self.own.len()) as u64,
            rebuilding: self.rebuilding.is_some(),
            buckets: digest.to_vec(), // lint:allow(hot-alloc): DIGEST_BUCKETS u64s into the wire message; digest sends are rate-limited
        });
        let payload = msg.encode_payload();
        self.last_digest_sent = Some(now);
        self.telemetry.inc(self.metrics.recon_digest_sent);
        SapPacket::announce(self.cfg.host, msg_id_hash(&payload), payload)
    }

    /// Update the `cache.rebuild_fraction` gauge (per-mille: recovered
    /// entries / entries at crash) from the current cache size.
    fn update_rebuild_fraction(&mut self) {
        let Some(rb) = &self.rebuilding else { return };
        let fraction = (self.cache.len() as u64)
            .saturating_mul(1000)
            .checked_div(rb.entries_at_crash)
            .map_or(1000, |f| f.min(1000));
        self.telemetry
            .set(self.metrics.rebuild_fraction, fraction as i64);
    }

    /// Leave the rebuilding phase (a peer digest matched ours).
    fn complete_rebuild(&mut self, now: SimTime) {
        if self.rebuilding.take().is_none() {
            return;
        }
        self.telemetry.inc(self.metrics.recon_completed);
        self.telemetry.set(self.metrics.recon_rebuilding, 0);
        self.telemetry.record(
            now.as_nanos(),
            Severity::Info,
            "recon",
            "rebuilt",
            [("entries", self.cache.len() as u64), NO_ARG, NO_ARG],
        );
    }

    /// Handle a reconciliation payload (already marker-checked).  This
    /// is the trust boundary of the digest exchange: the seed and
    /// bucket count are validated before any comparison, the request
    /// fan-out is capped by configuration, and nothing here ever
    /// schedules a timer from a wire-derived value.
    fn on_recon_packet(&mut self, now: SimTime, pkt: &SapPacket, out: &mut Vec<SapPacket>) {
        let Some(msg) = ReconMessage::parse(&pkt.payload) else {
            self.telemetry.inc(self.metrics.rx_unparseable);
            return;
        };
        let Some(rc) = self.cfg.reconcile else {
            return; // reconciliation disabled: ignore peers' exchanges
        };
        match msg {
            ReconMessage::Digest(d) => {
                self.telemetry.inc(self.metrics.recon_digest_heard);
                if d.seed != DIGEST_SEED || d.buckets.len() != DIGEST_BUCKETS {
                    return; // incomparable digest (foreign seed or shape)
                }
                let mut theirs = [0u64; DIGEST_BUCKETS];
                theirs.copy_from_slice(&d.buckets);
                let ours = self.scope_digest();
                if ours == theirs {
                    // In sync with this peer: any rebuild is over.
                    self.complete_rebuild(now);
                    return;
                }
                if let Some(rb) = &mut self.rebuilding {
                    rb.last_peer_digest = Some(theirs);
                }
                // Pull what we are missing: ask for every divergent
                // bucket, rate-limited against digest storms.
                let can_request = self
                    .last_request_sent
                    .is_none_or(|at| now.saturating_since(at) >= rc.min_request_gap);
                if can_request {
                    let buckets: Vec<u16> = (0..DIGEST_BUCKETS)
                        .filter(|&b| ours[b] != theirs[b]) // lint:allow(panic-reach): b ranges over 0..DIGEST_BUCKETS, the length of both arrays
                        .map(|b| b as u16)
                        .collect(); // lint:allow(hot-alloc): at most DIGEST_BUCKETS indices; requests are rate-limited by min_request_gap
                    let req = ReconMessage::Request(ReconcileRequest { buckets });
                    let payload = req.encode_payload();
                    out.push(SapPacket::announce(
                        self.cfg.host,
                        msg_id_hash(&payload),
                        payload,
                    ));
                    self.last_request_sent = Some(now);
                    self.telemetry.inc(self.metrics.recon_request_sent);
                }
                // Push what the peer is missing: a rebuilding peer gets
                // our digest promptly so it can diff and fetch, under
                // the same style of rate limit.
                if d.rebuilding {
                    let can_digest = self
                        .last_digest_sent
                        .is_none_or(|at| now.saturating_since(at) >= rc.min_digest_gap);
                    if can_digest {
                        let pkt = self.digest_packet(now);
                        out.push(pkt);
                    }
                }
            }
            ReconMessage::Request(r) => {
                self.telemetry.inc(self.metrics.recon_request_heard);
                // Compact re-announce of everything we hold in the
                // requested buckets: cached entries on their
                // originators' behalf, plus our own sessions.
                let mut requested = [false; DIGEST_BUCKETS];
                for &b in &r.buckets {
                    if let Some(slot) = requested.get_mut(b as usize) {
                        *slot = true;
                    }
                }
                let mut keys: Vec<CacheKey> = Vec::new(); // lint:allow(hot-alloc): key snapshot decouples the re-announce loop from the cache borrow; bounded by max_reannounce_per_request
                for (b, hit) in requested.iter().enumerate() {
                    if *hit {
                        keys.extend(self.cache.keys_in_bucket(b));
                    }
                }
                keys.sort_unstable();
                keys.truncate(rc.max_reannounce_per_request);
                for key in keys {
                    if let Some(entry) = self.cache.get(key.origin, key.session_id) {
                        out.push(Self::announcement_packet(key.origin, &entry.desc()));
                        self.telemetry.inc(self.metrics.recon_reannounced);
                    }
                }
                for s in self.own.values() {
                    let (bucket, _) = AnnouncementCache::desc_digest(&s.desc);
                    if requested.get(bucket).copied().unwrap_or(false) {
                        out.push(Self::announcement_packet(self.cfg.host, &s.desc));
                        self.telemetry.inc(self.metrics.recon_reannounced);
                    }
                }
            }
        }
    }

    /// Per-source token-bucket check; `true` admits the packet.
    fn governor_rate_ok(&mut self, now: SimTime, source: Ipv4Addr) -> bool {
        let Some(g) = self.cfg.governor else {
            return true;
        };
        if !self.gov_buckets.contains_key(&source)
            && self.gov_buckets.len() >= g.max_tracked_sources
        {
            // Prune buckets that have fully refilled — their sources
            // are idle and unconstrained anyway.
            let (rate, burst) = (g.rate_per_sec, g.burst);
            self.gov_buckets.retain(|_, b| {
                b.tokens + now.saturating_since(b.last_refill).as_secs_f64() * rate < burst
            });
            if self.gov_buckets.len() >= g.max_tracked_sources {
                return true; // fail open: quota and budget still bound state
            }
        }
        // Tracking wire sources is the governor's job; growth is capped
        // at max_tracked_sources by the prune/fail-open branch above.
        let fresh = TokenBucket {
            tokens: g.burst,
            last_refill: now,
        };
        let bucket = self.gov_buckets.entry(source).or_insert(fresh); // lint:allow(wire-taint): bounded by max_tracked_sources; the prune above fails open rather than growing
        let elapsed = now.saturating_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * g.rate_per_sec).min(g.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Admission control for a *new* cache entry from `source`: the
    /// per-source quota, then the hard budget with tiered eviction
    /// (stale → unverified-new → quota-exceeding).  `true` admits.
    fn governor_admit_new(&mut self, now: SimTime, source: Ipv4Addr) -> bool {
        let Some(g) = self.cfg.governor else {
            return true;
        };
        if self.cache.origin_count(source) as u64 >= u64::from(g.per_source_quota) {
            self.telemetry.inc(self.metrics.gov_rejected_quota);
            return false;
        }
        if self.cache.len() < g.max_entries {
            return true;
        }
        // At the budget: free one slot, cheapest tier first.
        // Tier 1 — an entry already past the purge horizon.
        let horizon = self.cache_horizon();
        if let Some((key, last)) = self.cache.oldest_entry() {
            if now.saturating_since(last) > horizon {
                self.cache.evict(key);
                self.telemetry.inc(self.metrics.gov_evicted_stale);
                return true;
            }
        }
        // Tier 2 — the oldest entry heard exactly once (unverified).
        if let Some(key) = self.cache.oldest_unverified() {
            self.cache.evict(key);
            self.telemetry.inc(self.metrics.gov_evicted_unverified);
            return true;
        }
        // Tier 3 — the stalest session of a quota-exceeding source.
        if let Some(key) = self.cache.quota_violator(g.per_source_quota) {
            self.cache.evict(key);
            self.telemetry.inc(self.metrics.gov_evicted_quota);
            return true;
        }
        // Every cached session is legitimate (verified, within quota):
        // refuse the newcomer rather than evict an incumbent.
        self.telemetry.inc(self.metrics.gov_rejected_budget);
        false
    }

    /// Account one datagram dropped before decode (truncation,
    /// corruption, forged framing).  Transports call this so storm
    /// telemetry reflects actual wire pressure, not just the packets
    /// that survived to the parser.
    pub fn note_rx_dropped(&mut self, now: SimTime) {
        self.telemetry.inc(self.metrics.rx_dropped);
        self.telemetry.record(
            now.as_nanos(),
            Severity::Debug,
            "net",
            "rx_dropped",
            [NO_ARG, NO_ARG, NO_ARG],
        );
    }

    /// Run the cache purges (hard expiry plus the staleness horizon)
    /// and re-arm the expiry timer for whatever remains.  Returns
    /// (expired, stale) purge counts.
    fn purge_cache(&mut self, now: SimTime) -> (usize, usize) {
        let expired = self.cache.purge_expired(now).len();
        let mut stale = 0;
        if self.cfg.staleness_factor.is_some() {
            // Entries missing for more than k background periods are
            // presumed dead or moved; shed them early.
            let horizon = self.cache_horizon();
            stale = self.cache.purge_stale(now, horizon).len();
        }
        (expired, stale)
    }

    /// The bandwidth-pacing floor for background repeats, if a budget is
    /// configured.  Under a budget, the steady repeat interval grows
    /// with the number of sessions sharing the scope (ours plus
    /// everything cached), so the scope's total announcement traffic
    /// stays within the budget.
    fn paced_floor(&self) -> Option<SimDuration> {
        self.cfg.bandwidth_limit_bps.map(|bps| {
            let population = self.cache.len() + self.own.len();
            let bytes = self
                .own
                .values()
                .next()
                .map(|s| s.desc.format().len() + 8)
                .unwrap_or(256);
            crate::schedule::bandwidth_limited_interval(
                population.max(1),
                bytes,
                bps,
                self.cfg.schedule.cap,
            )
        })
    }

    /// Handle one due timer.  This is the event-driven core: callers
    /// obtain due timers from [`Self::pop_due_timer`] (or equivalently
    /// let [`Self::poll`] drain them) and feed them here with the
    /// current time.
    pub fn on_timer(&mut self, now: SimTime, kind: TimerKind) -> Vec<SapPacket> {
        let mut out = Vec::new(); // lint:allow(hot-alloc): out-buffer for the packets this call returns; empty when nothing is due
        match kind {
            TimerKind::Announce(session_id) => {
                // Direct (non-popped) invocation: retire the queued
                // timer so it cannot fire twice.
                if let Some(token) = self.announce_timers.remove(&session_id) {
                    self.timers.cancel(token);
                }
                let paced_floor = self.paced_floor();
                let Some(s) = self.own.get_mut(&session_id) else {
                    return out; // withdrawn between scheduling and firing
                };
                out.push(Self::announcement_packet(self.cfg.host, &s.desc));
                let sends_before = s.sends;
                let mut interval = self.cfg.schedule.interval_after(s.sends);
                if let Some(floor) = paced_floor {
                    // Pacing only stretches the background rate; the
                    // fast initial repeats (which fix the effective
                    // propagation delay of *new* sessions) stay.
                    if interval >= self.cfg.schedule.cap {
                        interval = interval.max(floor);
                    }
                }
                s.sends += 1;
                // Catch-up clamp: the schedule is wall-clock anchored,
                // but after a restart or a clock jump we emit ONE
                // announcement and re-anchor, instead of a back-to-back
                // burst for every missed period.
                let mut next = s.next_send + interval;
                if next <= now {
                    next = now + interval;
                }
                s.next_send = next;
                // A session's TTL is fixed at creation (moves change the
                // group, never the scope), so its timer shard is stable.
                let shard = AnnouncementCache::ttl_band(s.desc.ttl);
                self.telemetry.inc(self.metrics.announce_sent);
                self.telemetry.record(
                    now.as_nanos(),
                    Severity::Debug,
                    "announce",
                    "sent",
                    [
                        ("session", session_id),
                        ("sends", u64::from(sends_before)),
                        NO_ARG,
                    ],
                );
                let token = self
                    .timers
                    .schedule(shard, next, TimerKind::Announce(session_id));
                self.announce_timers.insert(session_id, token); // lint:allow(wire-taint): keyed by our own session id — the map is bounded by the application's own sessions, not wire input
            }
            TimerKind::CacheExpiry => {
                if let Some((token, _)) = self.cache_timer.take() {
                    self.timers.cancel(token);
                }
                let (expired, stale) = self.purge_cache(now);
                self.telemetry
                    .inc_by(self.metrics.purged_expired, expired as u64);
                self.telemetry
                    .inc_by(self.metrics.purged_stale, stale as u64);
                self.telemetry
                    .set(self.metrics.cache_size, self.cache.len() as i64);
                if expired + stale > 0 {
                    self.telemetry.record(
                        now.as_nanos(),
                        Severity::Debug,
                        "cache",
                        "purge",
                        [
                            ("expired", expired as u64),
                            ("stale", stale as u64),
                            ("remaining", self.cache.len() as u64),
                        ],
                    );
                }
                self.arm_cache_timer();
            }
            TimerKind::Defence => {
                if let Some((token, _)) = self.defence_timer.take() {
                    self.timers.cancel(token);
                }
                for action in self.responder.poll(now) {
                    if let ClashAction::DefendThirdParty { session } = action {
                        // Re-announce the cached session on the
                        // originator's behalf, if we still hold it.
                        let origin = Ipv4Addr::from(session.site);
                        if let Some(entry) = self.cache.get(origin, session.seq as u64) {
                            out.push(Self::announcement_packet(origin, &entry.desc()));
                            self.telemetry.inc(self.metrics.defence_sent);
                            self.telemetry.record(
                                now.as_nanos(),
                                Severity::Info,
                                "defend",
                                "reannounce",
                                [
                                    ("site", u64::from(session.site)),
                                    ("seq", u64::from(session.seq)),
                                    NO_ARG,
                                ],
                            );
                        }
                    }
                }
                self.arm_defence_timer();
            }
            TimerKind::Reconcile => {
                if let Some((token, _)) = self.recon_timer.take() {
                    self.timers.cancel(token);
                }
                if self.cfg.reconcile.is_some() {
                    let pkt = self.digest_packet(now);
                    out.push(pkt);
                    self.telemetry.record(
                        now.as_nanos(),
                        Severity::Debug,
                        "recon",
                        "digest_broadcast",
                        [
                            ("entries", (self.cache.len() + self.own.len()) as u64),
                            ("rebuilding", u64::from(self.rebuilding.is_some())),
                            NO_ARG,
                        ],
                    );
                    self.arm_recon_timer(now);
                }
            }
        }
        out
    }

    /// Pop the earliest due timer, if any.  Event-driven callers loop
    /// `pop_due_timer` + [`Self::on_timer`]; FIFO order at equal
    /// deadlines is guaranteed by the queue.
    pub fn pop_due_timer(&mut self, now: SimTime) -> Option<TimerKind> {
        let (_, kind) = self.timers.pop_due(now)?;
        // The popped token is consumed; clear the matching bookkeeping
        // so `on_timer` doesn't cancel a successor it didn't schedule.
        match kind {
            TimerKind::Announce(id) => {
                self.announce_timers.remove(&id);
            }
            TimerKind::CacheExpiry => self.cache_timer = None,
            TimerKind::Defence => self.defence_timer = None,
            TimerKind::Reconcile => self.recon_timer = None,
        }
        Some(kind)
    }

    /// Advance time: emit due announcements, fire expired third-party
    /// defences, purge the cache.  Compat wrapper over the event API —
    /// batch-drains every due timer in deadline order (one drain per
    /// shard sweep instead of a pop-per-timer), looping in case a
    /// handler re-arms something... though no handler schedules a
    /// deadline `<= now`, so the second sweep is empty in practice.
    pub fn poll(&mut self, now: SimTime) -> Vec<SapPacket> {
        let mut out = Vec::new(); // lint:allow(hot-alloc): out-buffer for the packets this call returns; empty when nothing is due
        let mut due = std::mem::take(&mut self.due_scratch);
        loop {
            due.clear();
            self.timers.drain_due(now, &mut due);
            if due.is_empty() {
                break;
            }
            for &(_, kind) in &due {
                // Same bookkeeping as `pop_due_timer`: the drained token
                // is consumed, so `on_timer` must not cancel a successor
                // it didn't schedule.
                match kind {
                    TimerKind::Announce(id) => {
                        self.announce_timers.remove(&id);
                    }
                    TimerKind::CacheExpiry => self.cache_timer = None,
                    TimerKind::Defence => self.defence_timer = None,
                    TimerKind::Reconcile => self.recon_timer = None,
                }
                out.append(&mut self.on_timer(now, kind));
            }
        }
        due.clear();
        self.due_scratch = due;
        out
    }

    /// Drain events produced outside [`Self::handle_packet`] (degraded
    /// allocations, restart notices).  `handle_packet` drains these into
    /// its own event list automatically; callers that only use
    /// [`Self::create_session`]/[`Self::poll`] should collect them here.
    pub fn take_events(&mut self) -> Vec<DirectoryEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Simulate a crash/restart with state loss: the announcement cache
    /// and all pending clash-defence state are gone (they lived in
    /// memory), while our own sessions survive (the application still
    /// wants them announced) and re-enter the fast announcement phase so
    /// the scope re-learns them quickly.
    ///
    /// With [`DirectoryConfig::reconcile`] set, the directory also
    /// enters an explicit *Rebuilding* phase (gauge `recon.rebuilding`,
    /// progress gauge `cache.rebuild_fraction` in per-mille): a digest
    /// broadcast fires immediately so a live peer can diff and refill
    /// the cache in a couple of RTTs instead of a full announce cycle,
    /// and the phase ends when a heard digest matches ours.
    pub fn restart(&mut self, now: SimTime) {
        self.telemetry.inc(self.metrics.restarts);
        self.telemetry.record(
            now.as_nanos(),
            Severity::Warn,
            "dir",
            "restart",
            [("own_sessions", self.own.len() as u64), NO_ARG, NO_ARG],
        );
        let entries_at_crash = self.cache.len() as u64;
        self.cache = AnnouncementCache::new(self.cfg.cache_timeout);
        // The responder's pending defences die with the process, but
        // its telemetry (counters, flight ring) survives the rebuild.
        let responder_telemetry = self.responder.take_telemetry();
        self.responder = ClashResponder::new(self.cfg.clash_policy.clone());
        self.responder.set_telemetry(responder_telemetry);
        self.timers.clear();
        self.announce_timers.clear();
        self.cache_timer = None;
        self.defence_timer = None;
        self.recon_timer = None;
        self.last_digest_sent = None;
        self.last_request_sent = None;
        self.gov_buckets.clear();
        for s in self.own.values_mut() {
            s.sends = 0;
            s.next_send = now;
            // (The map is keyed identically to `own`; rebuilt below.)
        }
        let ids: Vec<(u64, u8)> = self.own.iter().map(|(id, s)| (*id, s.desc.ttl)).collect();
        for (id, ttl) in ids {
            let token = self.timers.schedule(
                AnnouncementCache::ttl_band(ttl),
                now,
                TimerKind::Announce(id),
            );
            self.announce_timers.insert(id, token);
        }
        if self.cfg.reconcile.is_some() {
            self.rebuilding = Some(RebuildState {
                entries_at_crash,
                last_peer_digest: None,
            });
            self.telemetry.set(self.metrics.recon_rebuilding, 1);
            self.update_rebuild_fraction();
            // An immediate digest broadcast opens the exchange; the
            // periodic cadence resumes from here.
            let token = self
                .timers
                .schedule(CONTROL_SHARD, now, TimerKind::Reconcile);
            self.recon_timer = Some((token, now));
        }
    }

    /// The exact next instant at which a timer fires (announce, cache
    /// expiry or clash defence), compacting any lazily-cancelled queue
    /// entries on the way.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.timers.next_deadline()
    }

    /// The next instant at which [`Self::poll`] has work to do.  Compat
    /// accessor taking `&self`: may be conservatively early when a
    /// cancelled timer (e.g. a withdrawn session's announce) has not yet
    /// surfaced in the queue — an early poll finds nothing due and is a
    /// no-op.  Prefer [`Self::next_deadline`] where `&mut self` is
    /// available.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.timers.peek_deadline()
    }

    /// Process one received SAP packet.  Returns packets to send in
    /// response (defences, modified announcements) plus events for the
    /// caller's logs.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &SapPacket,
        rng: &mut SimRng,
    ) -> (Vec<SapPacket>, Vec<DirectoryEvent>) {
        let mut out = Vec::new(); // lint:allow(hot-alloc): out-buffer for the packets this call returns; empty when nothing is due
                                  // Leftover out-of-band events (e.g. degraded allocations) ride
                                  // along with whatever this packet produces.
        let mut events = self.take_events();
        self.telemetry.inc(self.metrics.rx_packets);

        // Reconciliation control messages short-circuit before SDP
        // parsing (their payloads are not session descriptions); our
        // own digests echoed back by the multicast loop are dropped.
        if ReconMessage::is_recon(&pkt.payload) {
            if pkt.source != self.cfg.host {
                self.on_recon_packet(now, pkt, &mut out);
            }
            return (out, events);
        }

        // Zero-copy receive path: the description is parsed as borrowed
        // slices of the packet payload; owned strings materialize only
        // inside the cache, and only when the announcement is admitted.
        let Ok(desc) = DescRef::parse(&pkt.payload) else {
            self.telemetry.inc(self.metrics.rx_unparseable);
            return (out, events); // unparseable payloads are dropped
        };

        if pkt.message_type == MessageType::Delete {
            self.cache
                .observe_delete(desc.origin.address, desc.origin.session_id);
            self.telemetry.inc(self.metrics.rx_deletes);
            self.telemetry
                .set(self.metrics.cache_size, self.cache.len() as i64);
            return (out, events);
        }

        let their_sid = SessionId {
            site: u32::from(desc.origin.address),
            seq: desc.origin.session_id as u32,
        };

        // Our own announcement echoed back (multicast loop or a third
        // party defending us): nothing to do.
        if desc.origin.address == self.cfg.host && self.own.contains_key(&desc.origin.session_id) {
            return (out, events);
        }

        // Ingest governor: rate-limit the source, then gate admission
        // of new entries (quota, hard budget with tiered eviction).
        // Refreshes of existing entries always land — a storm must not
        // be able to starve a legitimate session's keepalives.  Gated
        // before `on_announcement_seen` so a refused forgery cannot
        // suppress a pending third-party defence either.
        if self.cfg.governor.is_some() {
            if !self.governor_rate_ok(now, desc.origin.address) {
                self.telemetry.inc(self.metrics.gov_rate_limited);
                return (out, events);
            }
            let is_new = self
                .cache
                .get(desc.origin.address, desc.origin.session_id)
                .is_none();
            if is_new && !self.governor_admit_new(now, desc.origin.address) {
                self.telemetry
                    .set(self.metrics.cache_size, self.cache.len() as i64);
                return (out, events);
            }
        }

        // Any pending third-party defence for this session is now moot.
        self.responder.on_announcement_seen(their_sid);

        // Hoist the Copy fields we still need, then hand the borrowed
        // description to the cache: refreshes (the steady-state case)
        // touch no owned strings at all.
        let group = desc.group;
        let their_origin = desc.origin.address;
        let their_session_id = desc.origin.session_id;
        let update = self.cache.observe_announce_ref(now, &desc);
        self.arm_cache_timer();
        let heard_counter = match update {
            CacheUpdate::New => self.metrics.heard_new,
            CacheUpdate::Refreshed => self.metrics.heard_refreshed,
            CacheUpdate::Modified => self.metrics.heard_modified,
            CacheUpdate::Stale => self.metrics.heard_stale,
        };
        self.telemetry.inc(heard_counter);
        self.telemetry
            .set(self.metrics.cache_size, self.cache.len() as i64);
        events.push(DirectoryEvent::Heard(update));
        if matches!(update, CacheUpdate::New | CacheUpdate::Modified) && self.rebuilding.is_some() {
            // Recovery progress; the arriving entry may also have been
            // the last one missing relative to the peer digest we
            // heard, in which case the rebuild is complete.
            self.update_rebuild_fraction();
            if let Some(rb) = &self.rebuilding {
                if rb.last_peer_digest == Some(self.scope_digest()) {
                    self.complete_rebuild(now);
                }
            }
        }
        if update == CacheUpdate::Stale {
            return (out, events);
        }
        // A modification implies any clash on the *old* address resolved.
        if update == CacheUpdate::Modified {
            // We don't know the old group here; conservatively keep
            // pending defences — they are cancelled when their session
            // re-announces.
        }

        // Clash detection against our own sessions.
        let own_clashes = self.clashing_own_ids(group);
        for id in own_clashes {
            // Keys come from the iteration above; nothing removes from
            // `own` in this loop, but stay total anyway.
            let Some(s) = self.own.get(&id) else { continue };
            let first_announced = s.first_announced;
            let our_sid = SessionId {
                site: u32::from(self.cfg.host),
                seq: id as u32,
            };
            // Total order for the post-partition mutual-clash tiebreak:
            // lowest (origin address, session id) keeps the address.
            let ours_key = (u32::from(self.cfg.host), id);
            let theirs_key = (u32::from(their_origin), their_session_id);
            let action = self.responder.on_clash(
                now,
                self.cfg.space.index_of(group).unwrap_or(Addr(0)),
                our_sid,
                Incumbent::Ours {
                    announced_at: first_announced,
                    wins_tiebreak: ours_key < theirs_key,
                },
                rng,
            );
            events.push(DirectoryEvent::Clash {
                group,
                action: action.clone(), // lint:allow(hot-alloc): the clash action is reported in the event stream as well as acted on
            });
            match action {
                ClashAction::DefendOwn { .. } => {
                    // Phase 1: re-send immediately.
                    self.telemetry.record(
                        now.as_nanos(),
                        Severity::Info,
                        "clash",
                        "defend_own",
                        [("session", id), NO_ARG, NO_ARG],
                    );
                    if let Some(s) = self.own.get(&id) {
                        out.push(Self::announcement_packet(self.cfg.host, &s.desc));
                    }
                }
                ClashAction::ModifyOwn { .. } => {
                    // Phase 2: move to a fresh address and re-announce.
                    self.telemetry.record(
                        now.as_nanos(),
                        Severity::Warn,
                        "clash",
                        "modify_own",
                        [("session", id), NO_ARG, NO_ARG],
                    );
                    if let Some((from, to)) = self.move_session(id, rng) {
                        self.telemetry.inc(self.metrics.moved);
                        self.telemetry.record(
                            now.as_nanos(),
                            Severity::Warn,
                            "clash",
                            "moved",
                            [
                                ("session", id),
                                ("from", u64::from(u32::from(from))),
                                ("to", u64::from(u32::from(to))),
                            ],
                        );
                        events.push(DirectoryEvent::Moved {
                            session_id: id,
                            from,
                            to,
                        });
                        if let Some(s) = self.own.get(&id) {
                            out.push(Self::announcement_packet(self.cfg.host, &s.desc));
                        }
                    }
                }
                _ => {}
            }
        }

        // Clash detection against cached third-party sessions: defend the
        // *older* session (the incumbent).
        let incumbents: Vec<(Ipv4Addr, u64)> = self
            .cache
            .users_of(group)
            .filter(|(k, e)| {
                !(k.origin == their_origin && k.session_id == their_session_id)
                    && e.first_heard() < now
            })
            .map(|(k, _)| (k.origin, k.session_id))
            .collect(); // lint:allow(hot-alloc): incumbent-id snapshot decouples the defence loop from the cache borrow
        for (origin, session_id) in incumbents {
            let sid = SessionId {
                site: u32::from(origin),
                seq: session_id as u32,
            };
            let action = self.responder.on_clash(
                now,
                self.cfg.space.index_of(group).unwrap_or(Addr(0)),
                sid,
                Incumbent::Cached,
                rng,
            );
            events.push(DirectoryEvent::Clash { group, action });
        }

        // Any newly-armed third-party defence needs a deadline in the
        // timer queue.
        self.arm_defence_timer();

        // A mid-call move may have degraded; pick that up too.
        events.append(&mut self.pending_events);
        (out, events)
    }

    /// Compat alias for [`Self::on_packet`], kept so pre-refactor
    /// callers and tests read unchanged.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        pkt: &SapPacket,
        rng: &mut SimRng,
    ) -> (Vec<SapPacket>, Vec<DirectoryEvent>) {
        self.on_packet(now, pkt, rng)
    }

    /// The ids of our own sessions announcing on `group` — the
    /// candidates a clashing announcement forces us to defend or move.
    /// The snapshot decouples the defence loop from the session-map
    /// borrow.
    // lint:sanitizer(wire-taint): returns locally-minted session ids; the wire group only selects among them — the id values are host-assigned, never wire data
    // lint:allow(hot-alloc): own-clash id snapshot decouples the defence loop from the session-map borrow
    fn clashing_own_ids(&self, group: Ipv4Addr) -> Vec<u64> {
        self.own
            .iter()
            .filter(|(_, s)| s.desc.group == group)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Reallocate a clashing own session; returns (old group, new group).
    fn move_session(&mut self, session_id: u64, rng: &mut SimRng) -> Option<(Ipv4Addr, Ipv4Addr)> {
        let view_data = self.current_view();
        let view = View::new(&view_data);
        let ttl = self.own.get(&session_id)?.desc.ttl;
        let addr = if self.cfg.exhaustion_fallback {
            let out = self
                .allocator
                .allocate_or_widen(&self.cfg.space, ttl, &view, rng)?;
            if out.widened {
                self.telemetry.inc(self.metrics.degraded);
                self.pending_events.push(DirectoryEvent::Degraded {
                    session_id,
                    group: self.cfg.space.ip(out.addr),
                    ttl,
                    exhausted_band: out.band,
                    fallback_range: (0, self.cfg.space.size()),
                });
            }
            out.addr
        } else {
            self.allocator.allocate(&self.cfg.space, ttl, &view, rng)?
        };
        let new_group = self.cfg.space.ip(addr);
        let s = self.own.get_mut(&session_id)?;
        let old_group = s.desc.group;
        s.desc.group = new_group;
        s.desc.origin.version += 1;
        // Restart the fast announcement phase so the move propagates
        // quickly, and reset the "recent" clock: the moved announcement
        // is effectively new.
        s.sends = 0;
        s.first_announced = s.next_send.min(s.first_announced);
        Some((old_group, new_group))
    }

    fn announcement_packet(origin: Ipv4Addr, desc: &SessionDescription) -> SapPacket {
        let payload = desc.format();
        SapPacket::announce(origin, msg_id_hash(&payload), payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::InformedRandomAllocator;

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    fn directory(host: [u8; 4]) -> SessionDirectory {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::from(host));
        cfg.space = AddrSpace::abstract_space(64);
        SessionDirectory::new(cfg, Box::new(InformedRandomAllocator))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn create_and_announce() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(1);
        let id = d
            .create_session(t(0), "seminar", 63, media(), &mut rng)
            .unwrap();
        let pkts = d.poll(t(0));
        assert_eq!(pkts.len(), 1);
        let desc = SessionDescription::parse(&pkts[0].payload).unwrap();
        assert_eq!(desc.origin.session_id, id);
        assert_eq!(desc.ttl, 63);
        assert!(desc.group.is_multicast());
    }

    #[test]
    fn backoff_announcements() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(2);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        assert_eq!(d.poll(t(0)).len(), 1); // t=0
        assert_eq!(d.poll(t(4)).len(), 0);
        assert_eq!(d.poll(t(5)).len(), 1); // t=5
        assert_eq!(d.poll(t(14)).len(), 0);
        assert_eq!(d.poll(t(15)).len(), 1); // t=15
        assert_eq!(d.poll(t(35)).len(), 1); // t=35
    }

    #[test]
    fn two_directories_allocate_distinct_addresses() {
        let mut a = directory([10, 0, 0, 1]);
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(3);
        a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let pkts = a.poll(t(0));
        // b hears a's announcement before allocating.
        b.handle_packet(t(0), &pkts[0], &mut rng);
        assert_eq!(b.cached_sessions(), 1);
        b.create_session(t(1), "b", 63, media(), &mut rng).unwrap();
        let ga: Vec<Ipv4Addr> = a.own_sessions().map(|(_, s)| s.desc.group).collect();
        let gb: Vec<Ipv4Addr> = b.own_sessions().map(|(_, s)| s.desc.group).collect();
        assert_ne!(
            ga[0], gb[0],
            "informed allocation must avoid the cached group"
        );
    }

    #[test]
    fn phase2_recent_announcer_moves() {
        // Two directories race to the same address: the one that hears
        // the other's announcement just after announcing must move.
        let mut a = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(4);
        let id = a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let group = a.own_sessions().next().unwrap().1.desc.group;
        a.poll(t(0));

        // Forge a competing announcement for the same group from b.
        let competing = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 9,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group,
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let payload = competing.format();
        let pkt = SapPacket::announce(competing.origin.address, msg_id_hash(&payload), payload);
        let (replies, events) = a.handle_packet(t(2), &pkt, &mut rng);
        // a announced at t=0, clash at t=2 (inside the recent window):
        // phase 2 → move.
        assert!(events
            .iter()
            .any(|e| matches!(e, DirectoryEvent::Moved { .. })));
        assert_eq!(replies.len(), 1);
        let new_desc = SessionDescription::parse(&replies[0].payload).unwrap();
        assert_ne!(new_desc.group, group);
        assert_eq!(new_desc.origin.version, 2);
        assert_eq!(a.own.get(&id).unwrap().desc.group, new_desc.group);
    }

    #[test]
    fn phase1_old_session_defends() {
        let mut a = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(5);
        a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let group = a.own_sessions().next().unwrap().1.desc.group;
        a.poll(t(0));
        let competing = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 9,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group,
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let payload = competing.format();
        let pkt = SapPacket::announce(competing.origin.address, msg_id_hash(&payload), payload);
        // Clash arrives long after our announcement: phase 1, defend.
        let (replies, events) = a.handle_packet(t(5_000), &pkt, &mut rng);
        assert!(events.iter().any(|e| matches!(
            e,
            DirectoryEvent::Clash {
                action: ClashAction::DefendOwn { .. },
                ..
            }
        )));
        assert_eq!(replies.len(), 1);
        let defended = SessionDescription::parse(&replies[0].payload).unwrap();
        assert_eq!(defended.group, group);
        assert_eq!(defended.origin.address, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn phase3_third_party_defends_cached_session() {
        let mut c = directory([10, 0, 0, 3]);
        let mut rng = SimRng::new(6);
        // c caches a session from origin A at t=0.
        let a_desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 1,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 1),
            },
            name: "a".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 5),
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let pa = a_desc.format();
        c.handle_packet(
            t(0),
            &SapPacket::announce(a_desc.origin.address, msg_id_hash(&pa), pa),
            &mut rng,
        );
        // Later, a clashing announcement from B arrives.
        let b_desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 2,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 5),
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let pb = b_desc.format();
        let (_, events) = c.handle_packet(
            t(100),
            &SapPacket::announce(b_desc.origin.address, msg_id_hash(&pb), pb),
            &mut rng,
        );
        assert!(events.iter().any(|e| matches!(
            e,
            DirectoryEvent::Clash {
                action: ClashAction::ThirdPartyArmed { .. },
                ..
            }
        )));
        // Nothing before the deadline...
        let deadline = c.next_wakeup().unwrap();
        assert!(c.poll(deadline - SimDuration::from_nanos(1)).is_empty());
        // ...then c re-announces A's session on its behalf.
        let fired = c.poll(deadline);
        assert_eq!(fired.len(), 1);
        let defended = SessionDescription::parse(&fired[0].payload).unwrap();
        assert_eq!(defended.origin.address, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(defended.origin.session_id, 1);
    }

    #[test]
    fn phase3_suppressed_when_originator_defends() {
        let mut c = directory([10, 0, 0, 3]);
        let mut rng = SimRng::new(7);
        let make = |host: [u8; 4], sid: u64, name: &str| {
            let d = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: sid,
                    version: 1,
                    address: Ipv4Addr::from(host),
                },
                name: name.into(),
                info: None,
                group: Ipv4Addr::new(224, 2, 128, 5),
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            let p = d.format();
            SapPacket::announce(d.origin.address, msg_id_hash(&p), p)
        };
        c.handle_packet(t(0), &make([10, 0, 0, 1], 1, "a"), &mut rng);
        c.handle_packet(t(100), &make([10, 0, 0, 2], 2, "b"), &mut rng);
        // Originator A defends itself before our timer fires.
        c.handle_packet(t(101), &make([10, 0, 0, 1], 1, "a"), &mut rng);
        // Our pending defence of A is suppressed: nothing we ever emit
        // re-announces A's session on its behalf.  (A's own t=101
        // re-announcement clashed against cached incumbent B, so a
        // defence of *B* legitimately fires at its deadline — under the
        // old coarse poll it was skipped only because the whole cache
        // had expired by the time anyone polled.)
        let fired = c.poll(t(10_000));
        for pkt in &fired {
            let desc = SessionDescription::parse(&pkt.payload).unwrap();
            assert_ne!(
                (desc.origin.address, desc.origin.session_id),
                (Ipv4Addr::new(10, 0, 0, 1), 1),
                "suppressed defence of A still fired: {fired:?}"
            );
        }
    }

    #[test]
    fn withdraw_emits_delete() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(8);
        let id = d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        let del = d.withdraw_session(id).unwrap();
        assert_eq!(del.message_type, MessageType::Delete);
        assert!(d.withdraw_session(id).is_none());
        assert_eq!(d.poll(t(100)).len(), 0, "withdrawn session not announced");
    }

    #[test]
    fn delete_packet_clears_peer_cache() {
        let mut a = directory([10, 0, 0, 1]);
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(9);
        let id = a.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        let ann = a.poll(t(0));
        b.handle_packet(t(0), &ann[0], &mut rng);
        assert_eq!(b.cached_sessions(), 1);
        let del = a.withdraw_session(id).unwrap();
        b.handle_packet(t(1), &del, &mut rng);
        assert_eq!(b.cached_sessions(), 0);
    }

    #[test]
    fn space_full_error() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(2);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(10);
        d.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        d.create_session(t(0), "b", 63, media(), &mut rng).unwrap();
        assert_eq!(
            d.create_session(t(0), "c", 63, media(), &mut rng),
            Err(CreateError::SpaceFull)
        );
    }

    #[test]
    fn exhaustion_fallback_widens_instead_of_failing() {
        use sdalloc_core::StaticIpr;
        // A banded allocator whose band for TTL 15 holds 4 addresses.
        let make = |fallback: bool| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
            cfg.space = AddrSpace::abstract_space(12);
            cfg.exhaustion_fallback = fallback;
            SessionDirectory::new(cfg, Box::new(StaticIpr::three_band()))
        };
        let mut rng = SimRng::new(41);

        // Degradation disabled: the fifth low-TTL create fails.
        let mut strict = make(false);
        let mut failed = false;
        for k in 0..5 {
            if strict
                .create_session(t(k), "s", 15, media(), &mut rng)
                .is_err()
            {
                failed = true;
            }
        }
        assert!(failed, "band exhaustion must surface without the fallback");

        // Degradation enabled: every create succeeds, and the widened
        // ones are reported as Degraded events.
        let mut graceful = make(true);
        for k in 0..5 {
            graceful
                .create_session(t(k), "s", 15, media(), &mut rng)
                .expect("fallback must absorb band exhaustion");
        }
        let events = graceful.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DirectoryEvent::Degraded { .. })),
            "widening must be logged: {events:?}"
        );
        assert!(graceful.take_events().is_empty(), "take_events drains");
        // All five sessions hold distinct groups.
        let groups: std::collections::HashSet<Ipv4Addr> =
            graceful.own_sessions().map(|(_, s)| s.desc.group).collect();
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn staleness_factor_expires_ahead_of_hard_timeout() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(64);
        cfg.cache_timeout = SimDuration::from_hours(1);
        cfg.staleness_factor = Some(2); // 2 × 600 s cap = 20 min
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(42);
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 5,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 9),
            },
            name: "r".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 3),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(0),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(d.cached_sessions(), 1);
        // 21 minutes of silence: stale horizon (20 min) passed, hard
        // timeout (60 min) not yet.
        d.poll(t(21 * 60));
        assert_eq!(d.cached_sessions(), 0, "stale entry must be shed early");
    }

    #[test]
    fn restart_loses_cache_but_reannounces_own_sessions() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(43);
        d.create_session(t(0), "mine", 63, media(), &mut rng)
            .unwrap();
        // Walk past the fast phase.
        for s in [0u64, 5, 15, 35, 75] {
            d.poll(t(s));
        }
        // Hear a peer.
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 7,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "peer".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 9),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(80),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(d.cached_sessions(), 1);

        d.restart(t(100));
        assert_eq!(d.cached_sessions(), 0, "cache lost on restart");
        // Own session survives and re-enters the fast phase at t=100.
        assert_eq!(d.next_wakeup(), Some(t(100)));
        let pkts = d.poll(t(100));
        assert_eq!(pkts.len(), 1, "immediate re-announcement after restart");
        assert_eq!(d.next_wakeup(), Some(t(105)), "fast-phase interval");
    }

    #[test]
    fn bandwidth_pacing_stretches_background_interval() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(64);
        // Tiny budget: 160 bit/s.
        cfg.bandwidth_limit_bps = Some(160.0);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(31);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        // Walk through the fast phase: intervals 5,10,…,cap.
        let mut sent = 0;
        let mut now = 0u64;
        while sent < 9 {
            now += 1;
            sent += d.poll(t(now)).len();
            assert!(now < 10_000, "never reached the paced regime");
        }
        // In the paced regime the next interval must exceed the plain
        // cap: announcement ~150 bytes → 1200 bits / 160 bps = ~7.5 s…
        // with one session that's below the 600 s cap, so shrink the
        // budget by pretending many cached sessions instead:
        for k in 0..200u64 {
            let desc = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: k,
                    version: 1,
                    address: Ipv4Addr::new(10, 0, 1, (k % 250) as u8 + 1),
                },
                name: format!("peer{k}"),
                info: None,
                group: Ipv4Addr::new(239, 1, (k / 250) as u8, (k % 250) as u8),
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            d.cache_observe_for_test(t(now), desc);
        }
        let before = d.next_wakeup().unwrap();
        d.poll(before);
        let after = d.next_wakeup().unwrap();
        let interval = after.saturating_since(before);
        assert!(
            interval > d.config().schedule.cap,
            "paced interval {interval} not stretched beyond cap"
        );
    }

    #[test]
    fn cache_expiry_frees_addresses_for_reuse() {
        // If a peer's session stops being announced, its address ages
        // out of the cache and becomes allocatable again.
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(1); // one address total
        cfg.cache_timeout = SimDuration::from_secs(100);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(21);
        // Hear a remote session occupying the only address.
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 5,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 9),
            },
            name: "r".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 0),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(0),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(
            d.create_session(t(1), "mine", 63, media(), &mut rng),
            Err(CreateError::SpaceFull)
        );
        // After the timeout the cache purges on poll and the address is
        // free again.
        d.poll(t(200));
        assert_eq!(d.cached_sessions(), 0);
        assert!(d
            .create_session(t(201), "mine", 63, media(), &mut rng)
            .is_ok());
    }

    #[test]
    fn modification_updates_peer_cache_group() {
        // A moved session (higher o= version, new group) replaces the
        // old entry rather than duplicating it.
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(22);
        let make = |version: u64, group: Ipv4Addr| {
            let d = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: 3,
                    version,
                    address: Ipv4Addr::new(10, 0, 0, 1),
                },
                name: "mv".into(),
                info: None,
                group,
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            let p = d.format();
            SapPacket::announce(d.origin.address, msg_id_hash(&p), p)
        };
        let g1 = Ipv4Addr::new(224, 2, 128, 1);
        let g2 = Ipv4Addr::new(224, 2, 128, 2);
        b.handle_packet(t(0), &make(1, g1), &mut rng);
        let (_, events) = b.handle_packet(t(10), &make(2, g2), &mut rng);
        assert!(events.contains(&DirectoryEvent::Heard(CacheUpdate::Modified)));
        assert_eq!(b.cached_sessions(), 1);
        let view = b.current_view();
        assert_eq!(view.len(), 1);
        assert_eq!(b.config().space.ip(view[0].addr), g2);
        // A stale re-announcement of the old version is ignored.
        let (_, events) = b.handle_packet(t(20), &make(1, g1), &mut rng);
        assert!(events.contains(&DirectoryEvent::Heard(CacheUpdate::Stale)));
        let view = b.current_view();
        assert_eq!(b.config().space.ip(view[0].addr), g2);
    }

    #[test]
    fn missed_announcements_clamp_to_single_send() {
        // A directory that slept through several scheduled sends does
        // NOT burst-replay every missed period: it emits one
        // announcement and re-anchors the schedule from `now`.
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(23);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        // Sends were due at t = 0, 5, 15, 35; polling at 35 emits one.
        let pkts = d.poll(t(35));
        assert_eq!(pkts.len(), 1);
        // Re-anchored: the send consumed interval_after(0) = 5 s, so the
        // next deadline is now + 5 rather than the stale t = 5 slot.
        assert_eq!(d.next_wakeup(), Some(t(40)));
        assert_eq!(d.poll(t(39)).len(), 0);
        assert_eq!(d.poll(t(40)).len(), 1);
    }

    #[test]
    fn event_api_matches_poll() {
        // Driving pop_due_timer/on_timer by hand is equivalent to the
        // poll compat wrapper.
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(24);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        let mut sent = Vec::new();
        let mut now = t(0);
        for _ in 0..5 {
            let deadline = d.next_deadline().unwrap();
            assert!(deadline >= now, "deadlines move forward");
            now = deadline;
            while let Some(kind) = d.pop_due_timer(now) {
                sent.extend(d.on_timer(now, kind));
            }
        }
        // Fast-phase schedule: 0, 5, 15, 35, 75.
        assert_eq!(sent.len(), 5);
        assert_eq!(now, t(75));
        assert_eq!(d.next_deadline(), Some(t(155)));
    }

    #[test]
    fn degraded_event_carries_band_context() {
        use sdalloc_core::StaticIpr;
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(12);
        cfg.exhaustion_fallback = true;
        let mut d = SessionDirectory::new(cfg, Box::new(StaticIpr::three_band()));
        let mut rng = SimRng::new(44);
        for k in 0..5 {
            d.create_session(t(k), "s", 15, media(), &mut rng).unwrap();
        }
        let degraded: Vec<DirectoryEvent> = d
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, DirectoryEvent::Degraded { .. }))
            .collect();
        assert!(!degraded.is_empty());
        for e in &degraded {
            let DirectoryEvent::Degraded {
                ttl,
                exhausted_band,
                fallback_range,
                ..
            } = e
            else {
                unreachable!()
            };
            assert_eq!(*ttl, 15);
            // TTL 15 is band 0 of the 3-band split over 12 addresses.
            assert_eq!(*exhausted_band, (0, 4));
            assert_eq!(*fallback_range, (0, 12));
        }
        assert_eq!(d.telemetry().metrics.counter_by_name("dir.degraded"), 1);
    }

    #[test]
    fn telemetry_counts_directory_activity() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(45);
        let id = d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        d.poll(t(0));
        d.poll(t(5));
        // Hear a peer announcement twice (new, then refresh).
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 7,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "peer".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 9),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        let pkt = SapPacket::announce(remote.origin.address, msg_id_hash(&p), p);
        d.handle_packet(t(6), &pkt, &mut rng);
        d.handle_packet(t(7), &pkt, &mut rng);
        d.withdraw_session(id);
        let snap = d.telemetry_snapshot_json();
        let m = &d.telemetry().metrics;
        assert_eq!(m.counter_by_name("dir.sessions_created"), 1);
        assert_eq!(m.counter_by_name("dir.sessions_withdrawn"), 1);
        assert_eq!(m.counter_by_name("announce.sent"), 2);
        assert_eq!(m.counter_by_name("net.rx_packets"), 2);
        assert_eq!(m.counter_by_name("cache.heard_new"), 1);
        assert_eq!(m.counter_by_name("cache.heard_refreshed"), 1);
        assert!(snap.contains("\"announce.sent\": 2"), "{snap}");
        // The merged snapshot includes the responder's clash metrics.
        assert!(snap.contains("\"clash.defend_own\": 0"), "{snap}");
        assert!(!d.telemetry().recorder().is_empty());
    }

    #[test]
    fn telemetry_disabled_is_inert_and_snapshot_identical_across_runs() {
        let run = |enabled: bool| {
            let mut d = directory([10, 0, 0, 1]);
            d.set_telemetry_identity(1, 46);
            d.set_telemetry_enabled(enabled);
            let mut rng = SimRng::new(46);
            d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
            d.poll(t(0));
            d.telemetry_snapshot_json()
        };
        assert_eq!(run(true), run(true), "per-seed snapshot must be stable");
        let off = run(false);
        assert!(off.contains("\"dir.sessions_created\": 0"), "{off}");
    }

    #[test]
    fn responder_telemetry_survives_directory_restart() {
        let mut a = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(47);
        a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let group = a.own_sessions().next().unwrap().1.desc.group;
        a.poll(t(0));
        let competing = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 9,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group,
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let payload = competing.format();
        let pkt = SapPacket::announce(competing.origin.address, msg_id_hash(&payload), payload);
        a.handle_packet(t(5_000), &pkt, &mut rng); // phase-1 defence
        a.restart(t(6_000));
        let snap = a.telemetry_snapshot_json();
        assert!(
            snap.contains("\"clash.defend_own\": 1"),
            "responder metrics lost across restart: {snap}"
        );
        assert!(snap.contains("\"dir.restarts\": 1"), "{snap}");
        let dump = a.flight_dump_json("test");
        assert!(dump.contains("\"name\": \"restart\""), "{dump}");
    }

    #[test]
    fn next_wakeup_tracks_schedule() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(11);
        assert_eq!(d.next_wakeup(), None);
        d.create_session(t(10), "s", 63, media(), &mut rng).unwrap();
        assert_eq!(d.next_wakeup(), Some(t(10)));
        d.poll(t(10));
        assert_eq!(d.next_wakeup(), Some(t(15)));
    }

    fn remote_desc(origin: [u8; 4], sid: u64, group: [u8; 4]) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: sid,
                version: 1,
                address: Ipv4Addr::from(origin),
            },
            name: format!("s{sid}"),
            info: None,
            group: Ipv4Addr::from(group),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        }
    }

    fn announce_pkt(desc: &SessionDescription) -> SapPacket {
        let p = desc.format();
        SapPacket::announce(desc.origin.address, msg_id_hash(&p), p)
    }

    fn recon_directory(host: [u8; 4]) -> SessionDirectory {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::from(host));
        cfg.space = AddrSpace::abstract_space(64);
        cfg.reconcile = Some(ReconcileConfig::default());
        SessionDirectory::new(cfg, Box::new(InformedRandomAllocator))
    }

    #[test]
    fn reconciliation_rebuilds_cache_from_live_peer() {
        // A caches B's sessions, crashes, and rebuilds from the digest
        // exchange in a handful of message rounds — no announce cycle.
        let mut a = recon_directory([10, 0, 0, 1]);
        let mut b = recon_directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(50);
        for _ in 0..3 {
            b.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        }
        for pkt in b.poll(t(0)) {
            a.handle_packet(t(1), &pkt, &mut rng);
        }
        assert_eq!(a.cached_sessions(), 3);

        a.restart(t(100));
        assert_eq!(a.cached_sessions(), 0);
        let m = &a.telemetry().metrics;
        assert_eq!(m.gauge_by_name("recon.rebuilding"), 1);
        assert_eq!(m.gauge_by_name("cache.rebuild_fraction"), 0);

        // Round 1: the restart fires an immediate digest broadcast.
        let opener = a.poll(t(100));
        assert_eq!(opener.len(), 1, "restart opens with one digest");
        // Round 2: the live peer replies with a request + its digest.
        let (reply, _) = b.handle_packet(t(100), &opener[0], &mut rng);
        assert_eq!(reply.len(), 2, "peer sends request + digest");
        // Round 3: our diff against the peer digest requests the
        // missing buckets.
        let mut fetch = Vec::new();
        for pkt in &reply {
            let (out, _) = a.handle_packet(t(100), pkt, &mut rng);
            fetch.extend(out);
        }
        assert_eq!(fetch.len(), 1, "rebuilder sends one targeted request");
        // Round 4: the peer compact-re-announces the requested buckets,
        // and hearing them completes the rebuild.
        let mut refill = Vec::new();
        for pkt in &fetch {
            let (out, _) = b.handle_packet(t(101), pkt, &mut rng);
            refill.extend(out);
        }
        assert_eq!(refill.len(), 3, "every missing session re-announced");
        for pkt in &refill {
            a.handle_packet(t(101), pkt, &mut rng);
        }
        assert_eq!(a.cached_sessions(), 3, "cache rebuilt");
        let m = &a.telemetry().metrics;
        assert_eq!(m.counter_by_name("recon.completed"), 1);
        assert_eq!(m.gauge_by_name("recon.rebuilding"), 0);
        assert_eq!(m.gauge_by_name("cache.rebuild_fraction"), 1000);
        let mb = &b.telemetry().metrics;
        assert_eq!(mb.counter_by_name("recon.request_heard"), 1);
        assert_eq!(mb.counter_by_name("recon.reannounced"), 3);
    }

    #[test]
    fn matching_digest_completes_rebuild_without_fetch() {
        // A peer whose digest already equals ours ends the rebuilding
        // phase immediately — nothing was lost, nothing to fetch.
        let mut a = recon_directory([10, 0, 0, 1]);
        let mut b = recon_directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(51);
        a.restart(t(10)); // empty cache at crash: fraction = 1000
        assert_eq!(
            a.telemetry()
                .metrics
                .gauge_by_name("cache.rebuild_fraction"),
            1000
        );
        let digest = b.poll(t(30)); // periodic digest, caches both empty
        assert_eq!(digest.len(), 1);
        let (out, _) = a.handle_packet(t(30), &digest[0], &mut rng);
        assert!(out.is_empty(), "in-sync digest needs no request");
        let m = &a.telemetry().metrics;
        assert_eq!(m.counter_by_name("recon.completed"), 1);
        assert_eq!(m.gauge_by_name("recon.rebuilding"), 0);
    }

    #[test]
    fn own_digest_echo_is_ignored() {
        let mut a = recon_directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(52);
        a.restart(t(5));
        let opener = a.poll(t(5));
        assert_eq!(opener.len(), 1);
        let (out, _) = a.handle_packet(t(5), &opener[0], &mut rng);
        assert!(out.is_empty(), "multicast echo of our own digest is inert");
        assert_eq!(
            a.telemetry().metrics.counter_by_name("recon.digest_heard"),
            0
        );
    }

    fn governed(host: [u8; 4], g: GovernorConfig) -> SessionDirectory {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::from(host));
        cfg.space = AddrSpace::abstract_space(64);
        cfg.governor = Some(g);
        SessionDirectory::new(cfg, Box::new(InformedRandomAllocator))
    }

    #[test]
    fn governor_rate_limits_per_source() {
        let mut d = governed(
            [10, 0, 0, 1],
            GovernorConfig {
                max_entries: 100,
                per_source_quota: 50,
                rate_per_sec: 1.0,
                burst: 2.0,
                max_tracked_sources: 8,
            },
        );
        let mut rng = SimRng::new(53);
        for sid in 0..3u64 {
            let desc = remote_desc([10, 0, 0, 9], sid, [224, 2, 128, sid as u8]);
            d.handle_packet(t(0), &announce_pkt(&desc), &mut rng);
        }
        // Burst of 2 tokens: the third packet in the same instant drops.
        assert_eq!(d.cached_sessions(), 2);
        let m = &d.telemetry().metrics;
        assert_eq!(m.counter_by_name("governor.rate_limited"), 1);
        // Refilled a token after a second; the retry lands.
        let desc = remote_desc([10, 0, 0, 9], 2, [224, 2, 128, 2]);
        d.handle_packet(t(1), &announce_pkt(&desc), &mut rng);
        assert_eq!(d.cached_sessions(), 3);
    }

    #[test]
    fn governor_enforces_per_source_quota_but_admits_refreshes() {
        let mut d = governed(
            [10, 0, 0, 1],
            GovernorConfig {
                max_entries: 100,
                per_source_quota: 2,
                rate_per_sec: 100.0,
                burst: 100.0,
                max_tracked_sources: 8,
            },
        );
        let mut rng = SimRng::new(54);
        for sid in 0..3u64 {
            let desc = remote_desc([10, 0, 0, 9], sid, [224, 2, 128, sid as u8]);
            d.handle_packet(t(sid), &announce_pkt(&desc), &mut rng);
        }
        assert_eq!(d.cached_sessions(), 2, "third session over quota");
        let m = &d.telemetry().metrics;
        assert_eq!(m.counter_by_name("governor.rejected_quota"), 1);
        // A refresh of an existing entry is never a quota question.
        let desc = remote_desc([10, 0, 0, 9], 0, [224, 2, 128, 0]);
        d.handle_packet(t(10), &announce_pkt(&desc), &mut rng);
        assert_eq!(
            d.telemetry()
                .metrics
                .counter_by_name("cache.heard_refreshed"),
            1
        );
    }

    #[test]
    fn governor_budget_evicts_unverified_then_refuses() {
        let mut d = governed(
            [10, 0, 0, 1],
            GovernorConfig {
                max_entries: 2,
                per_source_quota: 10,
                rate_per_sec: 100.0,
                burst: 100.0,
                max_tracked_sources: 8,
            },
        );
        let mut rng = SimRng::new(55);
        let s1 = remote_desc([10, 0, 0, 9], 1, [224, 2, 128, 1]);
        let s2 = remote_desc([10, 0, 1, 9], 2, [224, 2, 128, 2]);
        d.handle_packet(t(0), &announce_pkt(&s1), &mut rng);
        d.handle_packet(t(1), &announce_pkt(&s2), &mut rng);
        assert_eq!(d.cached_sessions(), 2);
        // At the budget: the oldest once-heard entry (s1) gives way.
        let s3 = remote_desc([10, 0, 2, 9], 3, [224, 2, 128, 3]);
        d.handle_packet(t(2), &announce_pkt(&s3), &mut rng);
        assert_eq!(d.cached_sessions(), 2);
        let m = &d.telemetry().metrics;
        assert_eq!(m.counter_by_name("governor.evicted_unverified"), 1);
        assert!(d.cache().get(s2.origin.address, 2).is_some());
        assert!(d.cache().get(s3.origin.address, 3).is_some());
        // Verify both survivors (second hearing), then a newcomer has
        // no tier to claim: every incumbent is legitimate.
        d.handle_packet(t(3), &announce_pkt(&s2), &mut rng);
        d.handle_packet(t(3), &announce_pkt(&s3), &mut rng);
        let s4 = remote_desc([10, 0, 3, 9], 4, [224, 2, 128, 4]);
        d.handle_packet(t(4), &announce_pkt(&s4), &mut rng);
        assert_eq!(d.cached_sessions(), 2, "no legitimate session evicted");
        let m = &d.telemetry().metrics;
        assert_eq!(m.counter_by_name("governor.rejected_budget"), 1);
        assert!(d.cache().get(s2.origin.address, 2).is_some());
        assert!(d.cache().get(s3.origin.address, 3).is_some());
    }

    #[test]
    fn governor_budget_evicts_stale_and_quota_tiers() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(64);
        cfg.cache_timeout = SimDuration::from_secs(100);
        cfg.governor = Some(GovernorConfig {
            max_entries: 2,
            per_source_quota: 1,
            rate_per_sec: 100.0,
            burst: 100.0,
            max_tracked_sources: 8,
        });
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(56);
        // Tier 1: an entry silent past the horizon is shed first.  The
        // second entry is refreshed (verified) so only staleness can
        // free the slot.
        let s1 = remote_desc([10, 0, 0, 9], 1, [224, 2, 128, 1]);
        let s2 = remote_desc([10, 0, 1, 9], 2, [224, 2, 128, 2]);
        d.handle_packet(t(0), &announce_pkt(&s1), &mut rng);
        d.handle_packet(t(1), &announce_pkt(&s2), &mut rng);
        d.handle_packet(t(2), &announce_pkt(&s2), &mut rng);
        let s3 = remote_desc([10, 0, 2, 9], 3, [224, 2, 128, 3]);
        d.handle_packet(t(150), &announce_pkt(&s3), &mut rng);
        assert_eq!(d.cached_sessions(), 2);
        assert_eq!(
            d.telemetry()
                .metrics
                .counter_by_name("governor.evicted_stale"),
            1
        );
        assert!(d.cache().get(s1.origin.address, 1).is_none());

        // Tier 3: a quota-exceeding source (stuffed past the gate, as a
        // shrunk quota would leave it) loses its stalest session.
        let mut d = SessionDirectory::new(
            {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
                cfg.space = AddrSpace::abstract_space(64);
                cfg.governor = Some(GovernorConfig {
                    max_entries: 2,
                    per_source_quota: 1,
                    rate_per_sec: 100.0,
                    burst: 100.0,
                    max_tracked_sources: 8,
                });
                cfg
            },
            Box::new(InformedRandomAllocator),
        );
        let hog1 = remote_desc([10, 0, 0, 9], 1, [224, 2, 128, 1]);
        let hog2 = remote_desc([10, 0, 0, 9], 2, [224, 2, 128, 2]);
        for s in [&hog1, &hog2] {
            d.cache_observe_for_test(t(0), s.clone());
            d.cache_observe_for_test(t(1), s.clone()); // verified
        }
        let s4 = remote_desc([10, 0, 3, 9], 4, [224, 2, 128, 4]);
        d.handle_packet(t(2), &announce_pkt(&s4), &mut rng);
        assert_eq!(d.cached_sessions(), 2);
        assert_eq!(
            d.telemetry()
                .metrics
                .counter_by_name("governor.evicted_quota"),
            1
        );
        assert!(
            d.cache().get(hog1.origin.address, 1).is_none(),
            "the hog's stalest session gave way"
        );
        assert!(d.cache().get(s4.origin.address, 4).is_some());
    }

    #[test]
    fn rx_dropped_counts_predecode_losses() {
        let mut d = directory([10, 0, 0, 1]);
        d.note_rx_dropped(t(0));
        d.note_rx_dropped(t(1));
        assert_eq!(d.telemetry().metrics.counter_by_name("net.rx_dropped"), 2);
    }
}
