//! The session directory engine — an sdr-alike.
//!
//! Ties together the four mechanisms the paper describes into one
//! transport-agnostic state machine:
//!
//! * the **announcement cache** (announce/listen, [`crate::cache`]);
//! * the **announcement schedule** (exponential back-off,
//!   [`crate::schedule`]);
//! * the **address allocator** (any [`sdalloc_core::Allocator`] — the
//!   dual use of announcements as reservations);
//! * the **clash detector/responder** (three-phase recovery,
//!   [`sdalloc_core::clash`]).
//!
//! The engine never touches a socket or a clock: callers feed it
//! received packets and the current time, and it returns packets to
//! send.  The same code therefore runs under the discrete-event
//! simulator ([`crate::testbed`]), the real UDP transport
//! ([`crate::net`]) and the examples.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdalloc_core::{
    Addr, AddrSpace, Allocator, ClashAction, ClashPolicy, ClashResponder, Incumbent, SessionId,
    View, VisibleSession,
};
use sdalloc_sim::{SimDuration, SimRng, SimTime};

use crate::cache::{AnnouncementCache, CacheUpdate};
use crate::schedule::BackoffSchedule;
use crate::sdp::{Media, Origin, SessionDescription};
use crate::wire::{msg_id_hash, MessageType, SapPacket};

/// Static configuration of a directory instance.
#[derive(Debug, Clone)]
pub struct DirectoryConfig {
    /// This host's unicast address (goes into `o=` lines).
    pub host: Ipv4Addr,
    /// The address space allocations are made from.
    pub space: AddrSpace,
    /// Announcement repeat schedule.
    pub schedule: BackoffSchedule,
    /// Cache expiry timeout.
    pub cache_timeout: SimDuration,
    /// Clash-recovery timing policy.
    pub clash_policy: ClashPolicy,
    /// Announcement bandwidth budget for the whole scope, bits/second.
    /// When set, the background repeat interval stretches with the
    /// number of sessions sharing the scope (sdr/RFC 2974 behaviour —
    /// and the scaling pressure behind the paper's Section 4: "the
    /// inter-announcement interval would become too long to give any
    /// kind of assurance of reliability").  `None` = unpaced.
    pub bandwidth_limit_bps: Option<f64>,
    /// Graceful degradation: when the allocator's own partition is
    /// exhausted, widen to the whole space (via
    /// [`sdalloc_core::Allocator::allocate_or_widen`]) and log a
    /// [`DirectoryEvent::Degraded`] instead of failing the create.
    pub exhaustion_fallback: bool,
    /// Staleness-aware cache expiry: when set to `Some(k)`, entries not
    /// refreshed within `k` background announcement periods (the
    /// schedule cap) are purged ahead of the hard cache timeout.  After
    /// a partition heal or restart this sheds state from sessions that
    /// moved or died unheard, at the cost of forgetting sessions whose
    /// announcements were merely lost.  `None` = hard timeout only.
    pub staleness_factor: Option<u32>,
}

impl DirectoryConfig {
    /// A sensible default for host `host`: sdr dynamic space, paper
    /// back-off schedule, one-hour cache timeout.
    pub fn new(host: Ipv4Addr) -> Self {
        DirectoryConfig {
            host,
            space: AddrSpace::sdr_dynamic(),
            schedule: BackoffSchedule::default(),
            cache_timeout: SimDuration::from_hours(1),
            clash_policy: ClashPolicy::default(),
            bandwidth_limit_bps: None,
            exhaustion_fallback: false,
            staleness_factor: None,
        }
    }
}

/// One of our own announced sessions.
#[derive(Debug, Clone)]
pub struct OwnSession {
    /// Current description (including the allocated group).
    pub desc: SessionDescription,
    /// When we first announced it.
    pub first_announced: SimTime,
    /// Number of announcements sent.
    pub sends: u32,
    /// When the next scheduled announcement is due.
    pub next_send: SimTime,
}

/// Why a session could not be created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CreateError {
    /// The allocator found no free address for this TTL.
    SpaceFull,
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::SpaceFull => write!(f, "no free multicast address for this scope"),
        }
    }
}

impl std::error::Error for CreateError {}

/// Events a caller may want to react to (logging, metrics, tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryEvent {
    /// A clash was detected on `group`; we are taking `action`.
    Clash {
        /// The contested group.
        group: Ipv4Addr,
        /// What the three-phase protocol decided.
        action: ClashAction,
    },
    /// We moved one of our sessions to a new address after losing a race.
    Moved {
        /// Our session id.
        session_id: u64,
        /// The abandoned group.
        from: Ipv4Addr,
        /// The replacement group.
        to: Ipv4Addr,
    },
    /// Cache update classification for an incoming announcement.
    Heard(CacheUpdate),
    /// Graceful degradation: the allocator's partition was exhausted
    /// and the address was taken from outside it (whole-space informed
    /// random).  The session exists, but without the partition's
    /// clash-avoidance guarantees — callers should surface this.
    Degraded {
        /// Our session id.
        session_id: u64,
        /// The out-of-partition group it landed on.
        group: Ipv4Addr,
    },
}

/// The session directory engine.
pub struct SessionDirectory {
    cfg: DirectoryConfig,
    allocator: Box<dyn Allocator>,
    cache: AnnouncementCache,
    own: BTreeMap<u64, OwnSession>,
    responder: ClashResponder,
    next_session_id: u64,
    /// Events produced outside [`Self::handle_packet`] (e.g. degraded
    /// allocations during [`Self::create_session`]), drained by
    /// [`Self::take_events`] or appended to the next `handle_packet`
    /// result.
    pending_events: Vec<DirectoryEvent>,
}

impl SessionDirectory {
    /// Create a directory with the given allocator.
    pub fn new(cfg: DirectoryConfig, allocator: Box<dyn Allocator>) -> Self {
        let cache = AnnouncementCache::new(cfg.cache_timeout);
        let responder = ClashResponder::new(cfg.clash_policy.clone());
        SessionDirectory {
            cfg,
            allocator,
            cache,
            own: BTreeMap::new(),
            responder,
            next_session_id: 1,
            pending_events: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DirectoryConfig {
        &self.cfg
    }

    /// Number of sessions in the listen cache.
    pub fn cached_sessions(&self) -> usize {
        self.cache.len()
    }

    /// Our own sessions.
    pub fn own_sessions(&self) -> impl Iterator<Item = (&u64, &OwnSession)> {
        self.own.iter()
    }

    /// Direct read access to the cache.
    pub fn cache(&self) -> &AnnouncementCache {
        &self.cache
    }

    /// Test helper: inject a cache entry without going through a packet.
    #[doc(hidden)]
    pub fn cache_observe_for_test(&mut self, now: SimTime, desc: SessionDescription) {
        self.cache.observe_announce(now, desc);
    }

    /// The allocator's current view: everything cached plus our own
    /// sessions (we must not collide with ourselves).
    pub fn current_view(&self) -> Vec<VisibleSession> {
        let mut v = self.cache.visible_sessions(&self.cfg.space);
        for s in self.own.values() {
            if let Some(addr) = self.cfg.space.index_of(s.desc.group) {
                v.push(VisibleSession::new(addr, s.desc.ttl));
            }
        }
        v.sort_by_key(|s| (s.addr, s.ttl));
        v
    }

    /// Create and start announcing a session.  Returns the session id;
    /// the first announcement is emitted by the next [`Self::poll`].
    pub fn create_session(
        &mut self,
        now: SimTime,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
        rng: &mut SimRng,
    ) -> Result<u64, CreateError> {
        let view_data = self.current_view();
        let view = View::new(&view_data);
        let (addr, widened) = if self.cfg.exhaustion_fallback {
            let out = self
                .allocator
                .allocate_or_widen(&self.cfg.space, ttl, &view, rng)
                .ok_or(CreateError::SpaceFull)?;
            (out.addr, out.widened)
        } else {
            let addr = self
                .allocator
                .allocate(&self.cfg.space, ttl, &view, rng)
                .ok_or(CreateError::SpaceFull)?;
            (addr, false)
        };
        let session_id = self.next_session_id;
        self.next_session_id += 1;
        if widened {
            self.pending_events.push(DirectoryEvent::Degraded {
                session_id,
                group: self.cfg.space.ip(addr),
            });
        }
        let desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id,
                version: 1,
                address: self.cfg.host,
            },
            name: name.to_string(),
            info: None,
            group: self.cfg.space.ip(addr),
            ttl,
            start: 0,
            stop: 0,
            media,
        };
        self.own.insert(
            session_id,
            OwnSession {
                desc,
                first_announced: now,
                sends: 0,
                next_send: now,
            },
        );
        Ok(session_id)
    }

    /// Stop announcing a session; returns the deletion packet to send.
    pub fn withdraw_session(&mut self, session_id: u64) -> Option<SapPacket> {
        let s = self.own.remove(&session_id)?;
        let payload = s.desc.format();
        Some(SapPacket::delete(
            self.cfg.host,
            msg_id_hash(&payload),
            payload,
        ))
    }

    /// Advance time: emit due announcements, fire expired third-party
    /// defences, purge the cache.
    pub fn poll(&mut self, now: SimTime) -> Vec<SapPacket> {
        let mut out = Vec::new();
        self.cache.purge_expired(now);
        if let Some(k) = self.cfg.staleness_factor {
            // Entries missing for more than k background periods are
            // presumed dead or moved; shed them early.
            let horizon = self.cfg.schedule.cap.saturating_mul(k as u64);
            self.cache.purge_stale(now, horizon);
        }

        // Under a bandwidth budget, the steady repeat interval grows
        // with the number of sessions sharing the scope (ours plus
        // everything cached), so the scope's total announcement traffic
        // stays within the budget.
        let paced_floor = self.cfg.bandwidth_limit_bps.map(|bps| {
            let population = self.cache.len() + self.own.len();
            let bytes = self
                .own
                .values()
                .next()
                .map(|s| s.desc.format().len() + 8)
                .unwrap_or(256);
            crate::schedule::bandwidth_limited_interval(
                population.max(1),
                bytes,
                bps,
                self.cfg.schedule.cap,
            )
        });
        for s in self.own.values_mut() {
            while s.next_send <= now {
                out.push(Self::announcement_packet(self.cfg.host, &s.desc));
                let mut interval = self.cfg.schedule.interval_after(s.sends);
                if let Some(floor) = paced_floor {
                    // Pacing only stretches the background rate; the
                    // fast initial repeats (which fix the effective
                    // propagation delay of *new* sessions) stay.
                    if interval >= self.cfg.schedule.cap {
                        interval = interval.max(floor);
                    }
                }
                s.sends += 1;
                s.next_send += interval;
            }
        }

        for action in self.responder.poll(now) {
            if let ClashAction::DefendThirdParty { session } = action {
                // Re-announce the cached session on the originator's
                // behalf, if we still hold it.
                let origin = Ipv4Addr::from(session.site);
                if let Some(entry) = self.cache.get(origin, session.seq as u64) {
                    out.push(Self::announcement_packet(origin, &entry.desc));
                }
            }
        }
        out
    }

    /// Drain events produced outside [`Self::handle_packet`] (degraded
    /// allocations, restart notices).  `handle_packet` drains these into
    /// its own event list automatically; callers that only use
    /// [`Self::create_session`]/[`Self::poll`] should collect them here.
    pub fn take_events(&mut self) -> Vec<DirectoryEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Simulate a crash/restart with state loss: the announcement cache
    /// and all pending clash-defence state are gone (they lived in
    /// memory), while our own sessions survive (the application still
    /// wants them announced) and re-enter the fast announcement phase so
    /// the scope re-learns them quickly.
    pub fn restart(&mut self, now: SimTime) {
        self.cache = AnnouncementCache::new(self.cfg.cache_timeout);
        self.responder = ClashResponder::new(self.cfg.clash_policy.clone());
        for s in self.own.values_mut() {
            s.sends = 0;
            s.next_send = now;
        }
    }

    /// The next instant at which [`Self::poll`] has work to do.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let own = self.own.values().map(|s| s.next_send).min();
        match (own, self.responder.next_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Process one received SAP packet.  Returns packets to send in
    /// response (defences, modified announcements) plus events for the
    /// caller's logs.
    pub fn handle_packet(
        &mut self,
        now: SimTime,
        pkt: &SapPacket,
        rng: &mut SimRng,
    ) -> (Vec<SapPacket>, Vec<DirectoryEvent>) {
        let mut out = Vec::new();
        // Leftover out-of-band events (e.g. degraded allocations) ride
        // along with whatever this packet produces.
        let mut events = self.take_events();

        let Ok(desc) = SessionDescription::parse(&pkt.payload) else {
            return (out, events); // unparseable payloads are dropped
        };

        if pkt.message_type == MessageType::Delete {
            self.cache
                .observe_delete(desc.origin.address, desc.origin.session_id);
            return (out, events);
        }

        let their_sid = SessionId {
            site: u32::from(desc.origin.address),
            seq: desc.origin.session_id as u32,
        };

        // Our own announcement echoed back (multicast loop or a third
        // party defending us): nothing to do.
        if desc.origin.address == self.cfg.host && self.own.contains_key(&desc.origin.session_id) {
            return (out, events);
        }

        // Any pending third-party defence for this session is now moot.
        self.responder.on_announcement_seen(their_sid);

        let update = self.cache.observe_announce(now, desc.clone());
        events.push(DirectoryEvent::Heard(update));
        if update == CacheUpdate::Stale {
            return (out, events);
        }
        // A modification implies any clash on the *old* address resolved.
        if update == CacheUpdate::Modified {
            // We don't know the old group here; conservatively keep
            // pending defences — they are cancelled when their session
            // re-announces.
        }

        // Clash detection against our own sessions.
        let own_clashes: Vec<u64> = self
            .own
            .iter()
            .filter(|(_, s)| s.desc.group == desc.group)
            .map(|(&id, _)| id)
            .collect();
        for id in own_clashes {
            let s = &self.own[&id];
            let our_sid = SessionId {
                site: u32::from(self.cfg.host),
                seq: id as u32,
            };
            // Total order for the post-partition mutual-clash tiebreak:
            // lowest (origin address, session id) keeps the address.
            let ours_key = (u32::from(self.cfg.host), id);
            let theirs_key = (u32::from(desc.origin.address), desc.origin.session_id);
            let action = self.responder.on_clash(
                now,
                self.cfg.space.index_of(desc.group).unwrap_or(Addr(0)),
                our_sid,
                Incumbent::Ours {
                    announced_at: s.first_announced,
                    wins_tiebreak: ours_key < theirs_key,
                },
                rng,
            );
            events.push(DirectoryEvent::Clash {
                group: desc.group,
                action: action.clone(),
            });
            match action {
                ClashAction::DefendOwn { .. } => {
                    // Phase 1: re-send immediately.
                    out.push(Self::announcement_packet(
                        self.cfg.host,
                        &self.own[&id].desc,
                    ));
                }
                ClashAction::ModifyOwn { .. } => {
                    // Phase 2: move to a fresh address and re-announce.
                    if let Some((from, to)) = self.move_session(id, rng) {
                        events.push(DirectoryEvent::Moved {
                            session_id: id,
                            from,
                            to,
                        });
                        out.push(Self::announcement_packet(
                            self.cfg.host,
                            &self.own[&id].desc,
                        ));
                    }
                }
                _ => {}
            }
        }

        // Clash detection against cached third-party sessions: defend the
        // *older* session (the incumbent).
        let incumbents: Vec<(Ipv4Addr, u64)> = self
            .cache
            .users_of(desc.group)
            .into_iter()
            .filter(|(k, e)| {
                !(k.origin == desc.origin.address && k.session_id == desc.origin.session_id)
                    && e.first_heard < now
            })
            .map(|(k, _)| (k.origin, k.session_id))
            .collect();
        for (origin, session_id) in incumbents {
            let sid = SessionId {
                site: u32::from(origin),
                seq: session_id as u32,
            };
            let action = self.responder.on_clash(
                now,
                self.cfg.space.index_of(desc.group).unwrap_or(Addr(0)),
                sid,
                Incumbent::Cached,
                rng,
            );
            events.push(DirectoryEvent::Clash {
                group: desc.group,
                action,
            });
        }

        // A mid-call move may have degraded; pick that up too.
        events.append(&mut self.pending_events);
        (out, events)
    }

    /// Reallocate a clashing own session; returns (old group, new group).
    fn move_session(&mut self, session_id: u64, rng: &mut SimRng) -> Option<(Ipv4Addr, Ipv4Addr)> {
        let view_data = self.current_view();
        let view = View::new(&view_data);
        let ttl = self.own.get(&session_id)?.desc.ttl;
        let addr = if self.cfg.exhaustion_fallback {
            let out = self
                .allocator
                .allocate_or_widen(&self.cfg.space, ttl, &view, rng)?;
            if out.widened {
                self.pending_events.push(DirectoryEvent::Degraded {
                    session_id,
                    group: self.cfg.space.ip(out.addr),
                });
            }
            out.addr
        } else {
            self.allocator.allocate(&self.cfg.space, ttl, &view, rng)?
        };
        let new_group = self.cfg.space.ip(addr);
        let s = self.own.get_mut(&session_id)?;
        let old_group = s.desc.group;
        s.desc.group = new_group;
        s.desc.origin.version += 1;
        // Restart the fast announcement phase so the move propagates
        // quickly, and reset the "recent" clock: the moved announcement
        // is effectively new.
        s.sends = 0;
        s.first_announced = s.next_send.min(s.first_announced);
        Some((old_group, new_group))
    }

    fn announcement_packet(origin: Ipv4Addr, desc: &SessionDescription) -> SapPacket {
        let payload = desc.format();
        SapPacket::announce(origin, msg_id_hash(&payload), payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::InformedRandomAllocator;

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    fn directory(host: [u8; 4]) -> SessionDirectory {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::from(host));
        cfg.space = AddrSpace::abstract_space(64);
        SessionDirectory::new(cfg, Box::new(InformedRandomAllocator))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn create_and_announce() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(1);
        let id = d
            .create_session(t(0), "seminar", 63, media(), &mut rng)
            .unwrap();
        let pkts = d.poll(t(0));
        assert_eq!(pkts.len(), 1);
        let desc = SessionDescription::parse(&pkts[0].payload).unwrap();
        assert_eq!(desc.origin.session_id, id);
        assert_eq!(desc.ttl, 63);
        assert!(desc.group.is_multicast());
    }

    #[test]
    fn backoff_announcements() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(2);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        assert_eq!(d.poll(t(0)).len(), 1); // t=0
        assert_eq!(d.poll(t(4)).len(), 0);
        assert_eq!(d.poll(t(5)).len(), 1); // t=5
        assert_eq!(d.poll(t(14)).len(), 0);
        assert_eq!(d.poll(t(15)).len(), 1); // t=15
        assert_eq!(d.poll(t(35)).len(), 1); // t=35
    }

    #[test]
    fn two_directories_allocate_distinct_addresses() {
        let mut a = directory([10, 0, 0, 1]);
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(3);
        a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let pkts = a.poll(t(0));
        // b hears a's announcement before allocating.
        b.handle_packet(t(0), &pkts[0], &mut rng);
        assert_eq!(b.cached_sessions(), 1);
        b.create_session(t(1), "b", 63, media(), &mut rng).unwrap();
        let ga: Vec<Ipv4Addr> = a.own_sessions().map(|(_, s)| s.desc.group).collect();
        let gb: Vec<Ipv4Addr> = b.own_sessions().map(|(_, s)| s.desc.group).collect();
        assert_ne!(
            ga[0], gb[0],
            "informed allocation must avoid the cached group"
        );
    }

    #[test]
    fn phase2_recent_announcer_moves() {
        // Two directories race to the same address: the one that hears
        // the other's announcement just after announcing must move.
        let mut a = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(4);
        let id = a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let group = a.own_sessions().next().unwrap().1.desc.group;
        a.poll(t(0));

        // Forge a competing announcement for the same group from b.
        let competing = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 9,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group,
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let payload = competing.format();
        let pkt = SapPacket::announce(competing.origin.address, msg_id_hash(&payload), payload);
        let (replies, events) = a.handle_packet(t(2), &pkt, &mut rng);
        // a announced at t=0, clash at t=2 (inside the recent window):
        // phase 2 → move.
        assert!(events
            .iter()
            .any(|e| matches!(e, DirectoryEvent::Moved { .. })));
        assert_eq!(replies.len(), 1);
        let new_desc = SessionDescription::parse(&replies[0].payload).unwrap();
        assert_ne!(new_desc.group, group);
        assert_eq!(new_desc.origin.version, 2);
        assert_eq!(a.own.get(&id).unwrap().desc.group, new_desc.group);
    }

    #[test]
    fn phase1_old_session_defends() {
        let mut a = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(5);
        a.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        let group = a.own_sessions().next().unwrap().1.desc.group;
        a.poll(t(0));
        let competing = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 9,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group,
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let payload = competing.format();
        let pkt = SapPacket::announce(competing.origin.address, msg_id_hash(&payload), payload);
        // Clash arrives long after our announcement: phase 1, defend.
        let (replies, events) = a.handle_packet(t(5_000), &pkt, &mut rng);
        assert!(events.iter().any(|e| matches!(
            e,
            DirectoryEvent::Clash {
                action: ClashAction::DefendOwn { .. },
                ..
            }
        )));
        assert_eq!(replies.len(), 1);
        let defended = SessionDescription::parse(&replies[0].payload).unwrap();
        assert_eq!(defended.group, group);
        assert_eq!(defended.origin.address, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn phase3_third_party_defends_cached_session() {
        let mut c = directory([10, 0, 0, 3]);
        let mut rng = SimRng::new(6);
        // c caches a session from origin A at t=0.
        let a_desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 1,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 1),
            },
            name: "a".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 5),
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let pa = a_desc.format();
        c.handle_packet(
            t(0),
            &SapPacket::announce(a_desc.origin.address, msg_id_hash(&pa), pa),
            &mut rng,
        );
        // Later, a clashing announcement from B arrives.
        let b_desc = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 2,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "b".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 5),
            ttl: 63,
            start: 0,
            stop: 0,
            media: media(),
        };
        let pb = b_desc.format();
        let (_, events) = c.handle_packet(
            t(100),
            &SapPacket::announce(b_desc.origin.address, msg_id_hash(&pb), pb),
            &mut rng,
        );
        assert!(events.iter().any(|e| matches!(
            e,
            DirectoryEvent::Clash {
                action: ClashAction::ThirdPartyArmed { .. },
                ..
            }
        )));
        // Nothing before the deadline...
        let deadline = c.next_wakeup().unwrap();
        assert!(c.poll(deadline - SimDuration::from_nanos(1)).is_empty());
        // ...then c re-announces A's session on its behalf.
        let fired = c.poll(deadline);
        assert_eq!(fired.len(), 1);
        let defended = SessionDescription::parse(&fired[0].payload).unwrap();
        assert_eq!(defended.origin.address, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(defended.origin.session_id, 1);
    }

    #[test]
    fn phase3_suppressed_when_originator_defends() {
        let mut c = directory([10, 0, 0, 3]);
        let mut rng = SimRng::new(7);
        let make = |host: [u8; 4], sid: u64, name: &str| {
            let d = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: sid,
                    version: 1,
                    address: Ipv4Addr::from(host),
                },
                name: name.into(),
                info: None,
                group: Ipv4Addr::new(224, 2, 128, 5),
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            let p = d.format();
            SapPacket::announce(d.origin.address, msg_id_hash(&p), p)
        };
        c.handle_packet(t(0), &make([10, 0, 0, 1], 1, "a"), &mut rng);
        c.handle_packet(t(100), &make([10, 0, 0, 2], 2, "b"), &mut rng);
        // Originator A defends itself before our timer fires.
        c.handle_packet(t(101), &make([10, 0, 0, 1], 1, "a"), &mut rng);
        // Our pending defence is suppressed; polling far in the future
        // yields nothing for session A.
        let fired = c.poll(t(10_000));
        assert!(
            fired.is_empty(),
            "suppressed defence still fired: {fired:?}"
        );
    }

    #[test]
    fn withdraw_emits_delete() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(8);
        let id = d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        let del = d.withdraw_session(id).unwrap();
        assert_eq!(del.message_type, MessageType::Delete);
        assert!(d.withdraw_session(id).is_none());
        assert_eq!(d.poll(t(100)).len(), 0, "withdrawn session not announced");
    }

    #[test]
    fn delete_packet_clears_peer_cache() {
        let mut a = directory([10, 0, 0, 1]);
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(9);
        let id = a.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        let ann = a.poll(t(0));
        b.handle_packet(t(0), &ann[0], &mut rng);
        assert_eq!(b.cached_sessions(), 1);
        let del = a.withdraw_session(id).unwrap();
        b.handle_packet(t(1), &del, &mut rng);
        assert_eq!(b.cached_sessions(), 0);
    }

    #[test]
    fn space_full_error() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(2);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(10);
        d.create_session(t(0), "a", 63, media(), &mut rng).unwrap();
        d.create_session(t(0), "b", 63, media(), &mut rng).unwrap();
        assert_eq!(
            d.create_session(t(0), "c", 63, media(), &mut rng),
            Err(CreateError::SpaceFull)
        );
    }

    #[test]
    fn exhaustion_fallback_widens_instead_of_failing() {
        use sdalloc_core::StaticIpr;
        // A banded allocator whose band for TTL 15 holds 4 addresses.
        let make = |fallback: bool| {
            let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
            cfg.space = AddrSpace::abstract_space(12);
            cfg.exhaustion_fallback = fallback;
            SessionDirectory::new(cfg, Box::new(StaticIpr::three_band()))
        };
        let mut rng = SimRng::new(41);

        // Degradation disabled: the fifth low-TTL create fails.
        let mut strict = make(false);
        let mut failed = false;
        for k in 0..5 {
            if strict
                .create_session(t(k), "s", 15, media(), &mut rng)
                .is_err()
            {
                failed = true;
            }
        }
        assert!(failed, "band exhaustion must surface without the fallback");

        // Degradation enabled: every create succeeds, and the widened
        // ones are reported as Degraded events.
        let mut graceful = make(true);
        for k in 0..5 {
            graceful
                .create_session(t(k), "s", 15, media(), &mut rng)
                .expect("fallback must absorb band exhaustion");
        }
        let events = graceful.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, DirectoryEvent::Degraded { .. })),
            "widening must be logged: {events:?}"
        );
        assert!(graceful.take_events().is_empty(), "take_events drains");
        // All five sessions hold distinct groups.
        let groups: std::collections::HashSet<Ipv4Addr> =
            graceful.own_sessions().map(|(_, s)| s.desc.group).collect();
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn staleness_factor_expires_ahead_of_hard_timeout() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(64);
        cfg.cache_timeout = SimDuration::from_hours(1);
        cfg.staleness_factor = Some(2); // 2 × 600 s cap = 20 min
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(42);
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 5,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 9),
            },
            name: "r".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 3),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(0),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(d.cached_sessions(), 1);
        // 21 minutes of silence: stale horizon (20 min) passed, hard
        // timeout (60 min) not yet.
        d.poll(t(21 * 60));
        assert_eq!(d.cached_sessions(), 0, "stale entry must be shed early");
    }

    #[test]
    fn restart_loses_cache_but_reannounces_own_sessions() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(43);
        d.create_session(t(0), "mine", 63, media(), &mut rng)
            .unwrap();
        // Walk past the fast phase.
        for s in [0u64, 5, 15, 35, 75] {
            d.poll(t(s));
        }
        // Hear a peer.
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 7,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 2),
            },
            name: "peer".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 9),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(80),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(d.cached_sessions(), 1);

        d.restart(t(100));
        assert_eq!(d.cached_sessions(), 0, "cache lost on restart");
        // Own session survives and re-enters the fast phase at t=100.
        assert_eq!(d.next_wakeup(), Some(t(100)));
        let pkts = d.poll(t(100));
        assert_eq!(pkts.len(), 1, "immediate re-announcement after restart");
        assert_eq!(d.next_wakeup(), Some(t(105)), "fast-phase interval");
    }

    #[test]
    fn bandwidth_pacing_stretches_background_interval() {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(64);
        // Tiny budget: 160 bit/s.
        cfg.bandwidth_limit_bps = Some(160.0);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(31);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        // Walk through the fast phase: intervals 5,10,…,cap.
        let mut sent = 0;
        let mut now = 0u64;
        while sent < 9 {
            now += 1;
            sent += d.poll(t(now)).len();
            assert!(now < 10_000, "never reached the paced regime");
        }
        // In the paced regime the next interval must exceed the plain
        // cap: announcement ~150 bytes → 1200 bits / 160 bps = ~7.5 s…
        // with one session that's below the 600 s cap, so shrink the
        // budget by pretending many cached sessions instead:
        for k in 0..200u64 {
            let desc = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: k,
                    version: 1,
                    address: Ipv4Addr::new(10, 0, 1, (k % 250) as u8 + 1),
                },
                name: format!("peer{k}"),
                info: None,
                group: Ipv4Addr::new(239, 1, (k / 250) as u8, (k % 250) as u8),
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            d.cache_observe_for_test(t(now), desc);
        }
        let before = d.next_wakeup().unwrap();
        d.poll(before);
        let after = d.next_wakeup().unwrap();
        let interval = after.saturating_since(before);
        assert!(
            interval > d.config().schedule.cap,
            "paced interval {interval} not stretched beyond cap"
        );
    }

    #[test]
    fn cache_expiry_frees_addresses_for_reuse() {
        // If a peer's session stops being announced, its address ages
        // out of the cache and becomes allocatable again.
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
        cfg.space = AddrSpace::abstract_space(1); // one address total
        cfg.cache_timeout = SimDuration::from_secs(100);
        let mut d = SessionDirectory::new(cfg, Box::new(InformedRandomAllocator));
        let mut rng = SimRng::new(21);
        // Hear a remote session occupying the only address.
        let remote = SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: 5,
                version: 1,
                address: Ipv4Addr::new(10, 0, 0, 9),
            },
            name: "r".into(),
            info: None,
            group: Ipv4Addr::new(224, 2, 128, 0),
            ttl: 63,
            start: 0,
            stop: 0,
            media: vec![],
        };
        let p = remote.format();
        d.handle_packet(
            t(0),
            &SapPacket::announce(remote.origin.address, msg_id_hash(&p), p),
            &mut rng,
        );
        assert_eq!(
            d.create_session(t(1), "mine", 63, media(), &mut rng),
            Err(CreateError::SpaceFull)
        );
        // After the timeout the cache purges on poll and the address is
        // free again.
        d.poll(t(200));
        assert_eq!(d.cached_sessions(), 0);
        assert!(d
            .create_session(t(201), "mine", 63, media(), &mut rng)
            .is_ok());
    }

    #[test]
    fn modification_updates_peer_cache_group() {
        // A moved session (higher o= version, new group) replaces the
        // old entry rather than duplicating it.
        let mut b = directory([10, 0, 0, 2]);
        let mut rng = SimRng::new(22);
        let make = |version: u64, group: Ipv4Addr| {
            let d = SessionDescription {
                origin: Origin {
                    username: "-".into(),
                    session_id: 3,
                    version,
                    address: Ipv4Addr::new(10, 0, 0, 1),
                },
                name: "mv".into(),
                info: None,
                group,
                ttl: 63,
                start: 0,
                stop: 0,
                media: vec![],
            };
            let p = d.format();
            SapPacket::announce(d.origin.address, msg_id_hash(&p), p)
        };
        let g1 = Ipv4Addr::new(224, 2, 128, 1);
        let g2 = Ipv4Addr::new(224, 2, 128, 2);
        b.handle_packet(t(0), &make(1, g1), &mut rng);
        let (_, events) = b.handle_packet(t(10), &make(2, g2), &mut rng);
        assert!(events.contains(&DirectoryEvent::Heard(CacheUpdate::Modified)));
        assert_eq!(b.cached_sessions(), 1);
        let view = b.current_view();
        assert_eq!(view.len(), 1);
        assert_eq!(b.config().space.ip(view[0].addr), g2);
        // A stale re-announcement of the old version is ignored.
        let (_, events) = b.handle_packet(t(20), &make(1, g1), &mut rng);
        assert!(events.contains(&DirectoryEvent::Heard(CacheUpdate::Stale)));
        let view = b.current_view();
        assert_eq!(b.config().space.ip(view[0].addr), g2);
    }

    #[test]
    fn poll_emits_missed_announcements_in_batch() {
        // A directory that slept through several scheduled sends catches
        // up on the next poll (the schedule is wall-clock anchored).
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(23);
        d.create_session(t(0), "s", 63, media(), &mut rng).unwrap();
        // Sends due at t = 0, 5, 15, 35: polling at 35 emits all four.
        let pkts = d.poll(t(35));
        assert_eq!(pkts.len(), 4);
    }

    #[test]
    fn next_wakeup_tracks_schedule() {
        let mut d = directory([10, 0, 0, 1]);
        let mut rng = SimRng::new(11);
        assert_eq!(d.next_wakeup(), None);
        d.create_session(t(10), "s", 63, media(), &mut rng).unwrap();
        assert_eq!(d.next_wakeup(), Some(t(10)));
        d.poll(t(10));
        assert_eq!(d.next_wakeup(), Some(t(15)));
    }
}
