//! # sdalloc-sap — the Session Announcement Protocol substrate
//!
//! Everything "session directory" in the paper: SDP-lite session
//! descriptions ([`sdp`]), the SAP v1 wire format ([`wire`]), the
//! announce/listen cache ([`cache`]), the exponential back-off
//! announcement schedule the paper's conclusions demand ([`schedule`]),
//! and the full sdr-alike engine ([`directory`]) that couples those to
//! an address allocator from `sdalloc-core` and the three-phase clash
//! recovery protocol.
//!
//! Category-partitioned announcement channels (the paper's Section 4
//! scaling mechanism) live in [`categories`].
//!
//! The engine is transport-agnostic; two transports are provided:
//! * [`testbed`] — an in-memory multicast scope over the discrete-event
//!   simulator, with loss, delay and network partitions;
//! * [`net`] — real UDP multicast via `std::net`, the path an actual
//!   deployment uses.
//!
//! ```
//! use sdalloc_sap::directory::{DirectoryConfig, SessionDirectory};
//! use sdalloc_sap::sdp::Media;
//! use sdalloc_core::AdaptiveIpr;
//! use sdalloc_sim::{SimRng, SimTime};
//! use std::net::Ipv4Addr;
//!
//! let cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1));
//! let mut sdr = SessionDirectory::new(cfg, Box::new(AdaptiveIpr::aipr3()));
//! let mut rng = SimRng::new(7);
//! let media = vec![Media { kind: "audio".into(), port: 5004, proto: "RTP/AVP".into(), format: 0 }];
//! sdr.create_session(SimTime::ZERO, "team meeting", 63, media, &mut rng).unwrap();
//! let packets = sdr.poll(SimTime::ZERO);
//! assert_eq!(packets.len(), 1); // the first announcement, ready to send
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod categories;
pub mod directory;
pub mod net;
pub mod schedule;
pub mod sdp;
pub mod slab;
pub mod testbed;
pub mod wire;

pub use cache::{
    AnnouncementCache, CacheEntry, CacheKey, CacheUpdate, EntryRef, DIGEST_BUCKETS, TTL_BANDS,
};
pub use directory::{
    CreateError, DirectoryConfig, DirectoryEvent, GovernorConfig, ReconcileConfig,
    SessionDirectory, TimerKind,
};
pub use net::{AgentHandle, AgentStats, RetryPolicy, SapAgent, SapSocket, SapTransport};
pub use schedule::BackoffSchedule;
pub use sdp::{DescRef, Media, MediaRef, Origin, OriginRef, SdpError, SessionDescription};
pub use slab::{Interner, SessionHandle, SessionId, Slab, Sym};
pub use wire::{
    CacheDigest, MessageType, ReconMessage, ReconcileRequest, SapFrame, SapPacket, WireError,
    SAP_GROUP, SAP_PORT,
};
