//! Real UDP multicast transport for the session directory.
//!
//! Runs the same [`SessionDirectory`] engine that the simulator drives,
//! but over a kernel UDP socket joined to a SAP multicast group — the
//! code path an actual sdr deployment would use.  `std::net` supports
//! everything needed (join, TTL, loopback), so no extra dependencies.
//!
//! Two layers:
//! * [`SapSocket`] — a joined, non-blocking-with-timeout UDP socket that
//!   sends/receives [`SapPacket`]s.
//! * [`SapAgent`] — glue mapping wall-clock time onto the engine's
//!   [`SimTime`] and pumping packets both ways; step it from your own
//!   loop, or run it on a background thread via [`SapAgent::spawn`].
//!
//! The agent is generic over [`SapTransport`] so its pump loop can be
//! exercised against scripted fault-injecting fakes in tests.  Transient
//! transport errors on the background thread are retried with jittered
//! exponential backoff under a [`RetryPolicy`]; only persistent failure
//! (or a disabled policy) terminates the pump, and then the error is
//! surfaced through [`AgentHandle::terminal_error`] rather than lost.

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use sdalloc_core::Allocator;
use sdalloc_sim::{SimRng, SimTime};
use sdalloc_telemetry::{CounterId, Severity, NO_ARG};

use crate::directory::{CreateError, DirectoryConfig, SessionDirectory};
use crate::sdp::Media;
use crate::wire::{SapPacket, SAP_GROUP, SAP_PORT};

/// A UDP socket joined to a SAP multicast group.
#[derive(Debug)]
pub struct SapSocket {
    sock: UdpSocket,
    dest: SocketAddrV4,
}

impl SapSocket {
    /// Join `group:port` on all interfaces with the given send TTL.
    /// Multicast loopback is enabled so co-located agents hear each
    /// other (and us), matching sdr's behaviour on a shared host.
    ///
    /// A TTL of 0 is rejected with [`io::ErrorKind::InvalidInput`]: a
    /// zero-TTL announcement never leaves the host, and silently
    /// promoting it to 1 (as an earlier version did) would widen the
    /// session's scope beyond what the caller asked for.
    pub fn open(group: Ipv4Addr, port: u16, ttl: u8) -> io::Result<SapSocket> {
        if ttl == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "SAP send TTL must be at least 1; 0 would never leave the host",
            ));
        }
        assert!(group.is_multicast(), "{group} is not a multicast group");
        let sock = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))?;
        sock.join_multicast_v4(&group, &Ipv4Addr::UNSPECIFIED)?;
        sock.set_multicast_loop_v4(true)?;
        sock.set_multicast_ttl_v4(ttl as u32)?;
        Ok(SapSocket {
            sock,
            dest: SocketAddrV4::new(group, port),
        })
    }

    /// Join the well-known SAP group/port (224.2.127.254:9875).
    pub fn open_default(ttl: u8) -> io::Result<SapSocket> {
        SapSocket::open(SAP_GROUP, SAP_PORT, ttl)
    }

    /// Send a packet to the group.
    pub fn send(&self, pkt: &SapPacket) -> io::Result<usize> {
        self.sock.send_to(&pkt.encode(), self.dest)
    }

    /// One receive attempt, waiting at most `timeout`, with the outcome
    /// classified instead of collapsed to `Option`.  This is the
    /// primitive the runtime driver loop builds on: `TimedOut` means
    /// the wait budget was genuinely spent (re-check timers), while
    /// `Interrupted` means a signal cut the wait short and the caller
    /// should retry with the *remaining* budget — conflating the two
    /// (as `recv` once did) makes every stray `SIGCHLD`/`SIGPROF` look
    /// like a full listen interval and skews the driver's timer math.
    // lint:allow(panic-reach): recv_from returns a length bounded by the 2048-byte buffer it filled
    pub fn recv_once(&self, timeout: Duration) -> io::Result<RecvOutcome> {
        self.sock
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut buf = [0u8; 2048];
        self.classify(self.sock.recv_from(&mut buf), &buf)
    }

    /// Non-blocking poll: receive whatever is queued right now without
    /// waiting.  `TimedOut` here means "nothing pending".  Lets the
    /// driver drain a burst of queued datagrams before going back to
    /// sleep until the next protocol deadline.
    pub fn try_recv(&self) -> io::Result<RecvOutcome> {
        self.sock.set_nonblocking(true)?;
        let mut buf = [0u8; 2048];
        let res = self.classify(self.sock.recv_from(&mut buf), &buf);
        self.sock.set_nonblocking(false)?;
        res
    }

    fn classify(
        &self,
        res: io::Result<(usize, std::net::SocketAddr)>,
        buf: &[u8],
    ) -> io::Result<RecvOutcome> {
        match res {
            Ok((len, _src)) => {
                // `len` is the kernel's byte count and cannot exceed the
                // buffer, but stay checked: a short slice decodes (or
                // fails to) the same way.
                let datagram = buf.get(..len).unwrap_or(buf);
                Ok(match SapPacket::decode(datagram) {
                    Ok(pkt) => RecvOutcome::Packet(pkt),
                    Err(_) => RecvOutcome::Undecodable(len),
                })
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(RecvOutcome::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(RecvOutcome::Interrupted),
            Err(e) => Err(e),
        }
    }

    /// Receive one packet, waiting at most `timeout`.  Returns
    /// `Ok(None)` once the timeout is spent or on an undecodable
    /// datagram.  Signal interruptions are retried internally with the
    /// remaining budget rather than reported as a (fake) timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> io::Result<Option<SapPacket>> {
        let deadline = Instant::now() + timeout;
        let mut remaining = timeout;
        loop {
            match self.recv_once(remaining)? {
                RecvOutcome::Packet(pkt) => return Ok(Some(pkt)),
                RecvOutcome::TimedOut | RecvOutcome::Undecodable(_) => return Ok(None),
                RecvOutcome::Interrupted => {
                    remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// The group/port this socket is joined to.
    pub fn destination(&self) -> SocketAddrV4 {
        self.dest
    }
}

/// Classified outcome of a single receive attempt on a [`SapSocket`].
///
/// The distinction between [`RecvOutcome::TimedOut`] and
/// [`RecvOutcome::Interrupted`] matters to callers doing timer math: a
/// timeout consumed the whole wait budget, an interruption consumed an
/// unknown fraction of it and should be retried with the remainder.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvOutcome {
    /// A well-formed SAP packet arrived.
    Packet(SapPacket),
    /// A datagram of this many bytes arrived but failed to decode.
    Undecodable(usize),
    /// The wait budget elapsed with nothing to read (`WouldBlock` /
    /// `TimedOut`).
    TimedOut,
    /// A signal interrupted the wait before the budget elapsed
    /// (`EINTR`); retry with the remaining budget.
    Interrupted,
}

/// Packet transport abstraction for [`SapAgent`].
///
/// [`SapSocket`] is the real implementation; tests substitute scripted
/// fakes to inject transient and persistent I/O faults into the pump
/// loop without touching the network.
pub trait SapTransport: Send {
    /// Send one packet toward the group.
    fn send(&self, pkt: &SapPacket) -> io::Result<usize>;

    /// Receive one packet, waiting at most `timeout`.  `Ok(None)` means
    /// nothing arrived (timeout or undecodable datagram).
    fn recv(&self, timeout: Duration) -> io::Result<Option<SapPacket>>;

    /// Number of datagrams that reached this endpoint but died before
    /// decode since the last call (the count resets on read).  Lets a
    /// driver feed [`SessionDirectory::note_rx_dropped`] without the
    /// transport knowing about directories.  Transports that cannot
    /// observe pre-decode deaths (like a kernel socket, where `recv`
    /// already folds them into `Ok(None)`) report zero.
    fn take_rx_predecode_drops(&self) -> u64 {
        0
    }
}

impl SapTransport for SapSocket {
    fn send(&self, pkt: &SapPacket) -> io::Result<usize> {
        SapSocket::send(self, pkt)
    }

    fn recv(&self, timeout: Duration) -> io::Result<Option<SapPacket>> {
        self.recv_timeout(timeout)
    }
}

/// How the background pump reacts to transport errors.
///
/// Transient I/O errors (an interface flap, a full socket buffer) should
/// not kill a long-lived announcer.  With retries enabled the pump backs
/// off exponentially with full jitter and keeps going; only
/// `max_consecutive` failures in a row are treated as persistent and
/// terminate the thread, surfacing the error via
/// [`AgentHandle::terminal_error`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// When false, any step error terminates the pump immediately (the
    /// pre-degradation behaviour, kept for comparison experiments).
    pub enabled: bool,
    /// Consecutive failures tolerated before giving up.
    pub max_consecutive: u32,
    /// First backoff ceiling; doubles each consecutive failure.
    pub base: Duration,
    /// Upper bound on the backoff ceiling.
    pub cap: Duration,
    /// Total wall-clock budget for one unbroken failure run, measured
    /// from the first error of the run.  A run that outlives this is
    /// terminal even with `max_consecutive` to spare, so a permanently
    /// dead transport cannot spin the pump forever at max backoff.
    /// `None` leaves only the attempt cap.
    pub max_elapsed: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: true,
            max_consecutive: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            max_elapsed: Some(Duration::from_secs(300)),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first error kills the pump.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based): uniform in
    /// `[0, min(cap, base·2^attempt))` — "full jitter", so co-failing
    /// agents do not retry in lockstep.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt.min(20)))
            .min(self.cap);
        let nanos = ceiling.as_nanos().min(u64::MAX as u128) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.below(nanos))
    }
}

/// Statistics a running agent exposes.
#[derive(Debug, Clone, Default)]
pub struct AgentStats {
    /// Announcements sent.
    pub sent: u64,
    /// Packets received and fed to the engine.
    pub received: u64,
    /// Sessions currently in the listen cache.
    pub cached_sessions: usize,
    /// Transient step failures absorbed by the retry policy.
    pub retries: u64,
}

/// The session directory bound to a real transport and the wall clock.
pub struct SapAgent<T: SapTransport = SapSocket> {
    directory: SessionDirectory,
    transport: T,
    epoch: Instant,
    rng: SimRng,
    stats: AgentStats,
    retry: RetryPolicy,
    retry_counter: CounterId,
    terminal_counter: CounterId,
}

impl<T: SapTransport> SapAgent<T> {
    /// Create an agent over an already-open transport.
    pub fn new(
        cfg: DirectoryConfig,
        allocator: Box<dyn Allocator>,
        transport: T,
        seed: u64,
    ) -> SapAgent<T> {
        let mut directory = SessionDirectory::new(cfg, allocator);
        directory.set_telemetry_identity(0, seed);
        let retry_counter = directory.telemetry_mut().counter("agent.retries");
        let terminal_counter = directory.telemetry_mut().counter("agent.terminal_failures");
        SapAgent {
            directory,
            transport,
            epoch: Instant::now(),
            rng: SimRng::new(seed),
            stats: AgentStats::default(),
            retry: RetryPolicy::default(),
            retry_counter,
            terminal_counter,
        }
    }

    /// Replace the retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> SapAgent<T> {
        self.retry = retry;
        self
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The engine, for creating/withdrawing sessions.
    pub fn directory_mut(&mut self) -> &mut SessionDirectory {
        &mut self.directory
    }

    /// Create a session now (convenience over [`Self::directory_mut`]).
    pub fn create_session(
        &mut self,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let now = self.now();
        self.directory
            .create_session(now, name, ttl, media, &mut self.rng)
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> AgentStats {
        AgentStats {
            cached_sessions: self.directory.cached_sessions(),
            ..self.stats.clone()
        }
    }

    /// One pump iteration: send due announcements, then listen for up to
    /// `listen`.  Call in a loop.
    pub fn step(&mut self, listen: Duration) -> io::Result<()> {
        let now = self.now();
        for pkt in self.directory.poll(now) {
            self.transport.send(&pkt)?;
            self.stats.sent += 1;
        }
        if let Some(pkt) = self.transport.recv(listen)? {
            self.stats.received += 1;
            let now = self.now();
            let (replies, _events) = self.directory.handle_packet(now, &pkt, &mut self.rng);
            for reply in replies {
                self.transport.send(&reply)?;
                self.stats.sent += 1;
            }
        }
        Ok(())
    }

    /// Run the agent on a background thread, returning a handle for
    /// issuing commands and reading state.  The thread exits when the
    /// handle is dropped, or when a step error exhausts the retry
    /// policy — in which case the error string is readable through
    /// [`AgentHandle::terminal_error`] instead of vanishing with the
    /// thread.
    pub fn spawn(mut self) -> AgentHandle
    where
        T: 'static,
    {
        let (cmd_tx, cmd_rx): (Sender<Command>, Receiver<Command>) = bounded(16);
        let stats = Arc::new(Mutex::new(AgentStats::default()));
        let stats_writer = Arc::clone(&stats);
        let error = Arc::new(Mutex::new(None));
        let error_writer = Arc::clone(&error);
        let dump = Arc::new(Mutex::new(None));
        let dump_writer = Arc::clone(&dump);
        let thread = std::thread::spawn(move || {
            let mut consecutive: u32 = 0;
            let mut failing_since: Option<SimTime> = None;
            loop {
                match cmd_rx.try_recv() {
                    Ok(Command::Create {
                        name,
                        ttl,
                        media,
                        reply,
                    }) => {
                        let _ = reply.send(self.create_session(&name, ttl, media));
                    }
                    Ok(Command::Withdraw { id }) => {
                        if let Some(pkt) = self.directory.withdraw_session(id) {
                            let _ = self.transport.send(&pkt);
                        }
                    }
                    Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                    Err(crossbeam::channel::TryRecvError::Empty) => {}
                }
                match self.step(Duration::from_millis(100)) {
                    Ok(()) => {
                        consecutive = 0;
                        failing_since = None;
                    }
                    Err(e) => {
                        let now = self.now();
                        let t_nanos = now.as_nanos();
                        let since = *failing_since.get_or_insert(now);
                        let deadline_passed = self.retry.max_elapsed.is_some_and(|budget| {
                            now.saturating_since(since).as_nanos()
                                >= budget.as_nanos().min(u64::MAX as u128) as u64
                        });
                        if !self.retry.enabled
                            || consecutive >= self.retry.max_consecutive
                            || deadline_passed
                        {
                            let telemetry = self.directory.telemetry_mut();
                            telemetry.inc(self.terminal_counter);
                            telemetry.record(
                                t_nanos,
                                Severity::Error,
                                "net",
                                "terminal_failure",
                                [("attempts", u64::from(consecutive)), NO_ARG, NO_ARG],
                            );
                            *dump_writer.lock() = Some(
                                self.directory
                                    .flight_dump_json(&format!("agent pump terminated: {e}")),
                            );
                            *error_writer.lock() = Some(e.to_string());
                            break;
                        }
                        let telemetry = self.directory.telemetry_mut();
                        telemetry.inc(self.retry_counter);
                        telemetry.record(
                            t_nanos,
                            Severity::Warn,
                            "net",
                            "retry",
                            [("attempt", u64::from(consecutive)), NO_ARG, NO_ARG],
                        );
                        let pause = self.retry.backoff(consecutive, &mut self.rng);
                        consecutive += 1;
                        self.stats.retries += 1;
                        std::thread::sleep(pause);
                    }
                }
                *stats_writer.lock() = self.stats();
            }
        });
        AgentHandle {
            cmd: cmd_tx,
            stats,
            error,
            dump,
            thread: Some(thread),
        }
    }
}

enum Command {
    Create {
        name: String,
        ttl: u8,
        media: Vec<Media>,
        reply: Sender<Result<u64, CreateError>>,
    },
    Withdraw {
        id: u64,
    },
}

/// Handle to a spawned [`SapAgent`].
pub struct AgentHandle {
    cmd: Sender<Command>,
    stats: Arc<Mutex<AgentStats>>,
    error: Arc<Mutex<Option<String>>>,
    dump: Arc<Mutex<Option<String>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl AgentHandle {
    /// Create a session on the running agent.
    pub fn create_session(
        &self,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd
            .send(Command::Create {
                name: name.to_string(),
                ttl,
                media,
                reply: reply_tx,
            })
            .map_err(|_| CreateError::SpaceFull)?;
        reply_rx.recv().unwrap_or(Err(CreateError::SpaceFull))
    }

    /// Withdraw a session.
    pub fn withdraw(&self, id: u64) {
        let _ = self.cmd.send(Command::Withdraw { id });
    }

    /// Stats snapshot.
    pub fn stats(&self) -> AgentStats {
        self.stats.lock().clone()
    }

    /// The error that terminated the pump thread, if it has died.
    /// `None` means the pump is still running (or exited cleanly on
    /// handle drop).
    pub fn terminal_error(&self) -> Option<String> {
        self.error.lock().clone()
    }

    /// The flight-recorder dump written when the pump died, if any —
    /// the agent's post-mortem: directory metrics, retry/terminal
    /// telemetry events, and the last protocol activity before death.
    pub fn terminal_dump(&self) -> Option<String> {
        self.dump.lock().clone()
    }
}

impl Drop for AgentHandle {
    fn drop(&mut self) {
        // Closing the command channel tells the thread to exit.
        let (tx, _) = bounded(0);
        self.cmd = tx;
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};

    /// Multicast may be unavailable in sandboxes; skip gracefully.
    fn try_socket(port: u16) -> Option<SapSocket> {
        match SapSocket::open(Ipv4Addr::new(239, 195, 255, 253), port, 1) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("skipping multicast test: {e}");
                None
            }
        }
    }

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    #[test]
    fn socket_loopback_roundtrip() {
        let Some(sock) = try_socket(29875) else {
            return;
        };
        let pkt = SapPacket::announce(
            Ipv4Addr::new(127, 0, 0, 1),
            0xABCD,
            "v=0\r\no=- 1 1 IN IP4 127.0.0.1\r\ns=x\r\nc=IN IP4 239.195.255.253/1\r\nt=0 0\r\n"
                .into(),
        );
        sock.send(&pkt).expect("send");
        // Loopback should deliver our own packet.
        let mut got = None;
        for _ in 0..20 {
            if let Some(p) = sock.recv_timeout(Duration::from_millis(100)).expect("recv") {
                got = Some(p);
                break;
            }
        }
        match got {
            Some(p) => assert_eq!(p.msg_id_hash, 0xABCD),
            None => eprintln!("skipping assertion: multicast loopback not delivered"),
        }
    }

    #[test]
    fn two_agents_over_loopback() {
        let Some(sock_a) = try_socket(29876) else {
            return;
        };
        let Ok(sock_b) = SapSocket::open(Ipv4Addr::new(239, 195, 255, 253), 29876, 1) else {
            eprintln!("skipping: cannot open second socket (no SO_REUSEADDR?)");
            return;
        };
        let mut cfg_a = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 1));
        cfg_a.space = AddrSpace::abstract_space(64);
        let mut cfg_b = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 2));
        cfg_b.space = AddrSpace::abstract_space(64);
        let mut a = SapAgent::new(cfg_a, Box::new(InformedRandomAllocator), sock_a, 1);
        let mut b = SapAgent::new(cfg_b, Box::new(InformedRandomAllocator), sock_b, 2);
        a.create_session("from-a", 1, media()).unwrap();
        for _ in 0..50 {
            a.step(Duration::from_millis(20)).unwrap();
            b.step(Duration::from_millis(20)).unwrap();
            if b.stats().cached_sessions > 0 {
                break;
            }
        }
        if b.stats().cached_sessions == 0 {
            eprintln!("skipping assertion: multicast delivery unavailable");
            return;
        }
        assert_eq!(b.stats().cached_sessions, 1);
    }

    #[test]
    fn spawned_agent_responds_to_commands() {
        let Some(sock) = try_socket(29877) else {
            return;
        };
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 9));
        cfg.space = AddrSpace::abstract_space(64);
        let agent = SapAgent::new(cfg, Box::new(InformedRandomAllocator), sock, 3);
        let handle = agent.spawn();
        let id = handle.create_session("bg", 1, media()).unwrap();
        assert!(id >= 1);
        std::thread::sleep(Duration::from_millis(250));
        let stats = handle.stats();
        assert!(stats.sent >= 1, "no announcement sent: {stats:?}");
        handle.withdraw(id);
        drop(handle); // joins the thread
    }

    #[test]
    fn empty_socket_classifies_timeout() {
        let Some(sock) = try_socket(29880) else {
            return;
        };
        assert_eq!(
            sock.recv_once(Duration::from_millis(5)).expect("recv_once"),
            RecvOutcome::TimedOut,
            "an idle socket's wait budget ends in TimedOut, not an error"
        );
        assert_eq!(
            sock.try_recv().expect("try_recv"),
            RecvOutcome::TimedOut,
            "a non-blocking poll of an idle socket reports nothing pending"
        );
        assert_eq!(
            sock.recv_timeout(Duration::from_millis(5)).expect("recv"),
            None
        );
    }

    #[test]
    fn recv_once_surfaces_undecodable_datagrams() {
        let Some(sock) = try_socket(29881) else {
            return;
        };
        let sender = UdpSocket::bind("0.0.0.0:0").expect("bind sender");
        let _ = sender.set_multicast_ttl_v4(1);
        sender
            .send_to(&[0xFFu8; 7], sock.destination())
            .expect("send garbage");
        let mut got = None;
        for _ in 0..20 {
            match sock
                .recv_once(Duration::from_millis(50))
                .expect("recv_once")
            {
                RecvOutcome::TimedOut | RecvOutcome::Interrupted => continue,
                other => {
                    got = Some(other);
                    break;
                }
            }
        }
        match got {
            Some(RecvOutcome::Undecodable(len)) => assert_eq!(len, 7),
            Some(other) => panic!("expected Undecodable(7), got {other:?}"),
            None => eprintln!("skipping assertion: multicast loopback not delivered"),
        }
    }

    #[test]
    #[should_panic(expected = "not a multicast")]
    fn unicast_group_rejected() {
        let _ = SapSocket::open(Ipv4Addr::new(10, 0, 0, 1), 29878, 1);
    }

    #[test]
    fn zero_ttl_rejected() {
        let err = SapSocket::open(Ipv4Addr::new(239, 195, 255, 253), 29879, 0)
            .expect_err("TTL 0 must not be silently promoted to 1");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A transport that fails its first `failures` operations with a
    /// transient error, then behaves as an idle (packet-less) link.
    struct FlakyTransport {
        failures: AtomicUsize,
    }

    impl FlakyTransport {
        fn new(failures: usize) -> Self {
            FlakyTransport {
                failures: AtomicUsize::new(failures),
            }
        }

        fn trip(&self) -> io::Result<()> {
            let mut cur = self.failures.load(Ordering::SeqCst);
            loop {
                if cur == 0 {
                    return Ok(());
                }
                match self.failures.compare_exchange(
                    cur,
                    cur - 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return Err(io::Error::other("injected transport fault")),
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    impl SapTransport for FlakyTransport {
        fn send(&self, _pkt: &SapPacket) -> io::Result<usize> {
            self.trip()?;
            Ok(0)
        }

        fn recv(&self, timeout: Duration) -> io::Result<Option<SapPacket>> {
            self.trip()?;
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            Ok(None)
        }
    }

    fn flaky_agent(failures: usize, seed: u64) -> SapAgent<FlakyTransport> {
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 8));
        cfg.space = AddrSpace::abstract_space(64);
        SapAgent::new(
            cfg,
            Box::new(InformedRandomAllocator),
            FlakyTransport::new(failures),
            seed,
        )
    }

    #[test]
    fn pump_dies_on_first_fault_without_retry() {
        let handle = flaky_agent(usize::MAX, 7)
            .with_retry_policy(RetryPolicy::disabled())
            .spawn();
        let mut died = false;
        for _ in 0..500 {
            if handle.terminal_error().is_some() {
                died = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(died, "disabled retry policy must kill the pump on error");
        let msg = handle.terminal_error().unwrap();
        assert!(msg.contains("injected"), "error surfaced verbatim: {msg}");
    }

    #[test]
    fn pump_survives_transient_faults_with_retry() {
        // Five consecutive failures, then a healthy link: well inside the
        // default policy's tolerance of eight.
        let handle = flaky_agent(5, 8).spawn();
        let id = handle
            .create_session("resilient", 1, media())
            .expect("agent still serving commands after transient faults");
        assert!(id >= 1);
        // The pump must have absorbed the faults, not died.
        let mut retried = false;
        for _ in 0..500 {
            if handle.stats().retries >= 1 {
                retried = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(retried, "faults should be visible as retries in stats");
        assert_eq!(handle.terminal_error(), None, "pump must not have died");
    }

    #[test]
    fn pump_gives_up_after_persistent_faults() {
        // An always-failing link exhausts max_consecutive and surfaces
        // the terminal error even with retries enabled.
        let policy = RetryPolicy {
            base: Duration::from_micros(100),
            max_consecutive: 3,
            ..RetryPolicy::default()
        };
        let handle = flaky_agent(usize::MAX, 9).with_retry_policy(policy).spawn();
        let mut died = false;
        for _ in 0..500 {
            if handle.terminal_error().is_some() {
                died = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(died, "persistent failure must eventually terminate");
        // The post-mortem flight dump surfaces the retries and the
        // terminal failure as telemetry events.
        let dump = handle
            .terminal_dump()
            .expect("terminal failure must leave a flight-recorder dump");
        assert!(dump.contains("\"flight_recorder\": true"), "{dump}");
        assert!(dump.contains("agent pump terminated"), "{dump}");
        assert!(dump.contains("\"agent.retries\": 3"), "{dump}");
        assert!(dump.contains("\"agent.terminal_failures\": 1"), "{dump}");
        assert!(dump.contains("\"name\": \"terminal_failure\""), "{dump}");
        assert!(dump.contains("\"name\": \"retry\""), "{dump}");
    }

    #[test]
    fn pump_hits_retry_wall_time_deadline() {
        // A permanently dead transport with an effectively unlimited
        // attempt budget still terminates once the elapsed-time budget
        // for the failure run is spent.
        let policy = RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
            max_consecutive: u32::MAX,
            max_elapsed: Some(Duration::from_millis(25)),
            ..RetryPolicy::default()
        };
        let handle = flaky_agent(usize::MAX, 10)
            .with_retry_policy(policy)
            .spawn();
        let mut died = false;
        for _ in 0..2_000 {
            if handle.terminal_error().is_some() {
                died = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(died, "wall-time budget must terminate a dead transport");
        let dump = handle.terminal_dump().expect("post-mortem dump");
        assert!(dump.contains("\"name\": \"terminal_failure\""), "{dump}");
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::new(10);
        for attempt in 0..64 {
            let d = policy.backoff(attempt, &mut rng);
            let ceiling = policy
                .base
                .saturating_mul(2u32.saturating_pow(attempt.min(20)))
                .min(policy.cap);
            assert!(d < ceiling.max(Duration::from_nanos(1)));
        }
        // Jitter: two agents with different seeds diverge.
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(12);
        let diverged = (0..8).any(|n| policy.backoff(n, &mut a) != policy.backoff(n, &mut b));
        assert!(diverged, "backoff must be jittered per-agent");
    }
}
