//! Real UDP multicast transport for the session directory.
//!
//! Runs the same [`SessionDirectory`] engine that the simulator drives,
//! but over a kernel UDP socket joined to a SAP multicast group — the
//! code path an actual sdr deployment would use.  `std::net` supports
//! everything needed (join, TTL, loopback), so no extra dependencies.
//!
//! Two layers:
//! * [`SapSocket`] — a joined, non-blocking-with-timeout UDP socket that
//!   sends/receives [`SapPacket`]s.
//! * [`SapAgent`] — glue mapping wall-clock time onto the engine's
//!   [`SimTime`] and pumping packets both ways; step it from your own
//!   loop, or run it on a background thread via [`SapAgent::spawn`].

use std::io;
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

use sdalloc_core::Allocator;
use sdalloc_sim::{SimRng, SimTime};

use crate::directory::{CreateError, DirectoryConfig, SessionDirectory};
use crate::sdp::Media;
use crate::wire::{SapPacket, SAP_GROUP, SAP_PORT};

/// A UDP socket joined to a SAP multicast group.
pub struct SapSocket {
    sock: UdpSocket,
    dest: SocketAddrV4,
}

impl SapSocket {
    /// Join `group:port` on all interfaces with the given send TTL.
    /// Multicast loopback is enabled so co-located agents hear each
    /// other (and us), matching sdr's behaviour on a shared host.
    pub fn open(group: Ipv4Addr, port: u16, ttl: u8) -> io::Result<SapSocket> {
        assert!(group.is_multicast(), "{group} is not a multicast group");
        let sock = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))?;
        sock.join_multicast_v4(&group, &Ipv4Addr::UNSPECIFIED)?;
        sock.set_multicast_loop_v4(true)?;
        sock.set_multicast_ttl_v4(ttl.max(1) as u32)?;
        Ok(SapSocket {
            sock,
            dest: SocketAddrV4::new(group, port),
        })
    }

    /// Join the well-known SAP group/port (224.2.127.254:9875).
    pub fn open_default(ttl: u8) -> io::Result<SapSocket> {
        SapSocket::open(SAP_GROUP, SAP_PORT, ttl)
    }

    /// Send a packet to the group.
    pub fn send(&self, pkt: &SapPacket) -> io::Result<usize> {
        self.sock.send_to(&pkt.encode(), self.dest)
    }

    /// Receive one packet, waiting at most `timeout`.  Returns
    /// `Ok(None)` on timeout or on an undecodable datagram.
    pub fn recv_timeout(&self, timeout: Duration) -> io::Result<Option<SapPacket>> {
        self.sock
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let mut buf = [0u8; 2048];
        match self.sock.recv_from(&mut buf) {
            Ok((len, _src)) => Ok(SapPacket::decode(&buf[..len]).ok()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// The group/port this socket is joined to.
    pub fn destination(&self) -> SocketAddrV4 {
        self.dest
    }
}

/// Statistics a running agent exposes.
#[derive(Debug, Clone, Default)]
pub struct AgentStats {
    /// Announcements sent.
    pub sent: u64,
    /// Packets received and fed to the engine.
    pub received: u64,
    /// Sessions currently in the listen cache.
    pub cached_sessions: usize,
}

/// The session directory bound to a real socket and the wall clock.
pub struct SapAgent {
    directory: SessionDirectory,
    socket: SapSocket,
    epoch: Instant,
    rng: SimRng,
    stats: AgentStats,
}

impl SapAgent {
    /// Create an agent over an already-open socket.
    pub fn new(
        cfg: DirectoryConfig,
        allocator: Box<dyn Allocator>,
        socket: SapSocket,
        seed: u64,
    ) -> SapAgent {
        SapAgent {
            directory: SessionDirectory::new(cfg, allocator),
            socket,
            epoch: Instant::now(),
            rng: SimRng::new(seed),
            stats: AgentStats::default(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The engine, for creating/withdrawing sessions.
    pub fn directory_mut(&mut self) -> &mut SessionDirectory {
        &mut self.directory
    }

    /// Create a session now (convenience over [`Self::directory_mut`]).
    pub fn create_session(
        &mut self,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let now = self.now();
        self.directory
            .create_session(now, name, ttl, media, &mut self.rng)
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> AgentStats {
        AgentStats {
            cached_sessions: self.directory.cached_sessions(),
            ..self.stats.clone()
        }
    }

    /// One pump iteration: send due announcements, then listen for up to
    /// `listen`.  Call in a loop.
    pub fn step(&mut self, listen: Duration) -> io::Result<()> {
        let now = self.now();
        for pkt in self.directory.poll(now) {
            self.socket.send(&pkt)?;
            self.stats.sent += 1;
        }
        if let Some(pkt) = self.socket.recv_timeout(listen)? {
            self.stats.received += 1;
            let now = self.now();
            let (replies, _events) = self.directory.handle_packet(now, &pkt, &mut self.rng);
            for reply in replies {
                self.socket.send(&reply)?;
                self.stats.sent += 1;
            }
        }
        Ok(())
    }

    /// Run the agent on a background thread, returning a handle for
    /// issuing commands and reading state.  The thread exits when the
    /// handle is dropped.
    pub fn spawn(mut self) -> AgentHandle {
        let (cmd_tx, cmd_rx): (Sender<Command>, Receiver<Command>) = bounded(16);
        let stats = Arc::new(Mutex::new(AgentStats::default()));
        let stats_writer = Arc::clone(&stats);
        let thread = std::thread::spawn(move || loop {
            match cmd_rx.try_recv() {
                Ok(Command::Create {
                    name,
                    ttl,
                    media,
                    reply,
                }) => {
                    let _ = reply.send(self.create_session(&name, ttl, media));
                }
                Ok(Command::Withdraw { id }) => {
                    if let Some(pkt) = self.directory.withdraw_session(id) {
                        let _ = self.socket.send(&pkt);
                    }
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                Err(crossbeam::channel::TryRecvError::Empty) => {}
            }
            if self.step(Duration::from_millis(100)).is_err() {
                break;
            }
            *stats_writer.lock() = self.stats();
        });
        AgentHandle {
            cmd: cmd_tx,
            stats,
            thread: Some(thread),
        }
    }
}

enum Command {
    Create {
        name: String,
        ttl: u8,
        media: Vec<Media>,
        reply: Sender<Result<u64, CreateError>>,
    },
    Withdraw {
        id: u64,
    },
}

/// Handle to a spawned [`SapAgent`].
pub struct AgentHandle {
    cmd: Sender<Command>,
    stats: Arc<Mutex<AgentStats>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl AgentHandle {
    /// Create a session on the running agent.
    pub fn create_session(
        &self,
        name: &str,
        ttl: u8,
        media: Vec<Media>,
    ) -> Result<u64, CreateError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd
            .send(Command::Create {
                name: name.to_string(),
                ttl,
                media,
                reply: reply_tx,
            })
            .map_err(|_| CreateError::SpaceFull)?;
        reply_rx.recv().unwrap_or(Err(CreateError::SpaceFull))
    }

    /// Withdraw a session.
    pub fn withdraw(&self, id: u64) {
        let _ = self.cmd.send(Command::Withdraw { id });
    }

    /// Stats snapshot.
    pub fn stats(&self) -> AgentStats {
        self.stats.lock().clone()
    }
}

impl Drop for AgentHandle {
    fn drop(&mut self) {
        // Closing the command channel tells the thread to exit.
        let (tx, _) = bounded(0);
        self.cmd = tx;
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};

    /// Multicast may be unavailable in sandboxes; skip gracefully.
    fn try_socket(port: u16) -> Option<SapSocket> {
        match SapSocket::open(Ipv4Addr::new(239, 195, 255, 253), port, 1) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("skipping multicast test: {e}");
                None
            }
        }
    }

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    #[test]
    fn socket_loopback_roundtrip() {
        let Some(sock) = try_socket(29875) else {
            return;
        };
        let pkt = SapPacket::announce(
            Ipv4Addr::new(127, 0, 0, 1),
            0xABCD,
            "v=0\r\no=- 1 1 IN IP4 127.0.0.1\r\ns=x\r\nc=IN IP4 239.195.255.253/1\r\nt=0 0\r\n"
                .into(),
        );
        sock.send(&pkt).expect("send");
        // Loopback should deliver our own packet.
        let mut got = None;
        for _ in 0..20 {
            if let Some(p) = sock.recv_timeout(Duration::from_millis(100)).expect("recv") {
                got = Some(p);
                break;
            }
        }
        match got {
            Some(p) => assert_eq!(p.msg_id_hash, 0xABCD),
            None => eprintln!("skipping assertion: multicast loopback not delivered"),
        }
    }

    #[test]
    fn two_agents_over_loopback() {
        let Some(sock_a) = try_socket(29876) else {
            return;
        };
        let Ok(sock_b) = SapSocket::open(Ipv4Addr::new(239, 195, 255, 253), 29876, 1) else {
            eprintln!("skipping: cannot open second socket (no SO_REUSEADDR?)");
            return;
        };
        let mut cfg_a = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 1));
        cfg_a.space = AddrSpace::abstract_space(64);
        let mut cfg_b = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 2));
        cfg_b.space = AddrSpace::abstract_space(64);
        let mut a = SapAgent::new(cfg_a, Box::new(InformedRandomAllocator), sock_a, 1);
        let mut b = SapAgent::new(cfg_b, Box::new(InformedRandomAllocator), sock_b, 2);
        a.create_session("from-a", 1, media()).unwrap();
        for _ in 0..50 {
            a.step(Duration::from_millis(20)).unwrap();
            b.step(Duration::from_millis(20)).unwrap();
            if b.stats().cached_sessions > 0 {
                break;
            }
        }
        if b.stats().cached_sessions == 0 {
            eprintln!("skipping assertion: multicast delivery unavailable");
            return;
        }
        assert_eq!(b.stats().cached_sessions, 1);
    }

    #[test]
    fn spawned_agent_responds_to_commands() {
        let Some(sock) = try_socket(29877) else {
            return;
        };
        let mut cfg = DirectoryConfig::new(Ipv4Addr::new(127, 0, 0, 9));
        cfg.space = AddrSpace::abstract_space(64);
        let agent = SapAgent::new(cfg, Box::new(InformedRandomAllocator), sock, 3);
        let handle = agent.spawn();
        let id = handle.create_session("bg", 1, media()).unwrap();
        assert!(id >= 1);
        std::thread::sleep(Duration::from_millis(250));
        let stats = handle.stats();
        assert!(stats.sent >= 1, "no announcement sent: {stats:?}");
        handle.withdraw(id);
        drop(handle); // joins the thread
    }

    #[test]
    #[should_panic(expected = "not a multicast")]
    fn unicast_group_rejected() {
        let _ = SapSocket::open(Ipv4Addr::new(10, 0, 0, 1), 29878, 1);
    }
}
