//! The announcement cache: the listener half of announce/listen.
//!
//! "Session directories use an announce/listen approach to build up a
//! complete list of these advertised sessions, and a multicast address
//! is chosen from those not already in use."  The cache holds every
//! session description heard, keyed by `(originating source, session
//! id)`, ages entries out when announcements stop, honours explicit
//! deletions, and — crucially for allocation — projects itself onto the
//! allocator's [`sdalloc_core::View`] as `(address, TTL)` pairs.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use sdalloc_core::{AddrSpace, VisibleSession};
use sdalloc_sim::{SimDuration, SimTime};

use crate::sdp::SessionDescription;

/// Cache key: who announced, which of their sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Originating host (from the SDP `o=` line).
    pub origin: Ipv4Addr,
    /// Origin's session id.
    pub session_id: u64,
}

/// A cached announcement.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The most recent session description heard.
    pub desc: SessionDescription,
    /// When this session was first heard.
    pub first_heard: SimTime,
    /// When this session was last heard.
    pub last_heard: SimTime,
    /// Number of announcements received.
    pub announcements: u64,
}

/// Outcome of feeding an announcement to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheUpdate {
    /// First time this session was heard.
    New,
    /// Re-announcement with unchanged content.
    Refreshed,
    /// The description changed (higher `o=` version) — e.g. an address
    /// moved after a clash.
    Modified,
    /// Stale: lower version than what we hold; ignored.
    Stale,
}

/// The announcement cache.
#[derive(Debug, Clone)]
pub struct AnnouncementCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Entries not refreshed within this span are purged.
    timeout: SimDuration,
}

impl AnnouncementCache {
    /// Create a cache with the given expiry timeout.
    ///
    /// RFC 2974 recommends "ten times the announcement period, or one
    /// hour, whichever is the greater"; pass that in from the directory's
    /// announcement schedule.
    pub fn new(timeout: SimDuration) -> Self {
        AnnouncementCache {
            entries: HashMap::new(),
            timeout,
        }
    }

    /// Feed one announcement heard at `now`.
    pub fn observe_announce(&mut self, now: SimTime, desc: SessionDescription) -> CacheUpdate {
        let key = CacheKey {
            origin: desc.origin.address,
            session_id: desc.origin.session_id,
        };
        match self.entries.get_mut(&key) {
            None => {
                self.entries.insert(
                    key,
                    CacheEntry {
                        desc,
                        first_heard: now,
                        last_heard: now,
                        announcements: 1,
                    },
                );
                CacheUpdate::New
            }
            Some(entry) => {
                if desc.origin.version < entry.desc.origin.version {
                    return CacheUpdate::Stale;
                }
                let modified =
                    desc.origin.version > entry.desc.origin.version || desc != entry.desc;
                entry.desc = desc;
                entry.last_heard = now;
                entry.announcements += 1;
                if modified {
                    CacheUpdate::Modified
                } else {
                    CacheUpdate::Refreshed
                }
            }
        }
    }

    /// Feed a deletion for `(origin, session_id)`; returns whether an
    /// entry was removed.
    pub fn observe_delete(&mut self, origin: Ipv4Addr, session_id: u64) -> bool {
        self.entries
            .remove(&CacheKey { origin, session_id })
            .is_some()
    }

    /// Remove entries that have not been refreshed within the timeout;
    /// returns the purged keys.
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<CacheKey> {
        let timeout = self.timeout;
        let mut purged = Vec::new();
        self.entries.retain(|key, entry| {
            let alive = now.saturating_since(entry.last_heard) <= timeout;
            if !alive {
                purged.push(*key);
            }
            alive
        });
        purged.sort_by_key(|k| (k.origin, k.session_id));
        purged
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up one entry.
    pub fn get(&self, origin: Ipv4Addr, session_id: u64) -> Option<&CacheEntry> {
        self.entries.get(&CacheKey { origin, session_id })
    }

    /// All entries using the given multicast group — the clash-detection
    /// probe.
    pub fn users_of(&self, group: Ipv4Addr) -> Vec<(&CacheKey, &CacheEntry)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, e)| e.desc.group == group)
            .collect();
        v.sort_by_key(|(k, _)| (k.origin, k.session_id));
        v
    }

    /// Project the cache onto an allocator view: `(address index, TTL)`
    /// for every cached session whose group lies in `space`.
    pub fn visible_sessions(&self, space: &AddrSpace) -> Vec<VisibleSession> {
        let mut v: Vec<VisibleSession> = self
            .entries
            .values()
            .filter_map(|e| {
                space
                    .index_of(e.desc.group)
                    .map(|addr| VisibleSession::new(addr, e.desc.ttl))
            })
            .collect();
        v.sort_by_key(|s| (s.addr, s.ttl));
        v
    }

    /// Iterate all entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&CacheKey, &CacheEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::{Media, Origin};

    fn desc(
        origin_ip: [u8; 4],
        sid: u64,
        version: u64,
        group: [u8; 4],
        ttl: u8,
    ) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: sid,
                version,
                address: Ipv4Addr::from(origin_ip),
            },
            name: format!("s{sid}"),
            info: None,
            group: Ipv4Addr::from(group),
            ttl,
            start: 0,
            stop: 0,
            media: vec![Media {
                kind: "audio".into(),
                port: 5004,
                proto: "RTP/AVP".into(),
                format: 0,
            }],
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn new_refresh_modify_stale() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        assert_eq!(c.observe_announce(t(0), d1.clone()), CacheUpdate::New);
        assert_eq!(
            c.observe_announce(t(10), d1.clone()),
            CacheUpdate::Refreshed
        );
        let mut d2 = d1.clone();
        d2.origin.version = 2;
        d2.group = Ipv4Addr::new(224, 2, 128, 9);
        assert_eq!(c.observe_announce(t(20), d2), CacheUpdate::Modified);
        // The old version is now stale.
        assert_eq!(c.observe_announce(t(30), d1), CacheUpdate::Stale);
        assert_eq!(c.len(), 1);
        let e = c.get(Ipv4Addr::new(10, 0, 0, 1), 7).unwrap();
        assert_eq!(e.desc.group, Ipv4Addr::new(224, 2, 128, 9));
        assert_eq!(e.announcements, 3); // stale one not counted
    }

    #[test]
    fn same_version_content_change_counts_as_modified() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        c.observe_announce(t(0), d1.clone());
        let mut d2 = d1;
        d2.ttl = 127;
        assert_eq!(c.observe_announce(t(1), d2), CacheUpdate::Modified);
    }

    #[test]
    fn delete_removes() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63));
        assert!(c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(!c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(c.is_empty());
    }

    #[test]
    fn expiry() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(50), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        let purged = c.purge_expired(t(120));
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].session_id, 1);
        assert_eq!(c.len(), 1);
        // Refreshing resets the clock.
        c.observe_announce(t(140), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert!(c.purge_expired(t(240)).is_empty());
    }

    #[test]
    fn users_of_group() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 9, 1, [224, 2, 128, 5], 15));
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [224, 2, 128, 6], 63));
        let users = c.users_of(Ipv4Addr::new(224, 2, 128, 5));
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0.origin, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn visible_sessions_projection() {
        let space = AddrSpace::sdr_dynamic(); // base 224.2.128.0
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 2, 1, [224, 2, 129, 0], 127));
        // Outside the space: ignored in the view.
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [239, 1, 1, 1], 15));
        let view = c.visible_sessions(&space);
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].addr.0, 5);
        assert_eq!(view[0].ttl, 63);
        assert_eq!(view[1].addr.0, 256);
        assert_eq!(view[1].ttl, 127);
    }

    #[test]
    fn distinct_origins_distinct_entries() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        // Same session id from two hosts: two sessions.
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 7, 1, [224, 2, 128, 2], 63));
        assert_eq!(c.len(), 2);
    }
}
