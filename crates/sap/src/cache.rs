//! The announcement cache: the listener half of announce/listen.
//!
//! "Session directories use an announce/listen approach to build up a
//! complete list of these advertised sessions, and a multicast address
//! is chosen from those not already in use."  The cache holds every
//! session description heard, keyed by `(originating source, session
//! id)`, ages entries out when announcements stop, honours explicit
//! deletions, and — crucially for allocation — projects itself onto the
//! allocator's [`sdalloc_core::View`] as `(address, TTL)` pairs.
//!
//! ## Storage: generational slab
//!
//! Session records live in a contiguous [`Slab`] arena addressed by
//! dense [`SessionId`]s; the string fields (names, usernames, media
//! labels) are interned through a reference-counted [`Interner`] so a
//! record is a fixed-layout block of `Copy` fields plus 4-byte
//! symbols.  Every index below resolves a record with one array access
//! instead of re-hashing a `String` key, and slot reuse is guarded by
//! generation counters: a [`SessionHandle`] minted before an eviction
//! can never alias the record that later recycles the slot.
//!
//! ## Indexing
//!
//! A production-scale scope caches up to a million sessions, and the
//! first reproduction paid O(cache) on every hot operation: expiry
//! was a full `retain` scan, the clash-detection probe filtered every
//! entry, and the allocator view was rebuilt by scanning the table.
//! Incrementally-maintained indices remove those scans:
//!
//! * **expiry heaps, sharded by TTL band** — one min-heap per
//!   [`Self::ttl_band`] partition, ordered by `last_heard` (with a
//!   fixed timeout, `last_heard` order *is* expiry order).  Entries
//!   are inserted once when first heard; a refresh just bumps the
//!   record's `last_heard`, and the stale heap slot is lazily re-filed
//!   when it surfaces — into the band the record *currently* belongs
//!   to, so a TTL move re-homes the slot.  Announce churn in one band
//!   never touches another band's heap.  [`Self::purge_expired`]
//!   therefore costs O(expired · log band), not O(n), and
//!   [`Self::earliest_last_heard`] exposes the next expiry deadline
//!   for wake-on-deadline callers.
//! * **group index** — `group → sorted map of keys to ids`, so
//!   [`Self::users_of`] (the clash probe, run on *every* received
//!   announcement) is O(candidates) instead of O(cache), with each
//!   candidate resolved by dense id.
//! * **visible multiset** — `(group, ttl) → count`, kept sorted, so
//!   [`Self::visible_sessions`] walks only distinct occupied
//!   `(group, ttl)` pairs in deterministic order instead of scanning
//!   and sorting the whole table per allocation.
//!
//! ## Reconciliation digests
//!
//! For anti-entropy recovery (a restarted directory rebuilding its
//! cache from a live peer) the cache maintains [`DIGEST_BUCKETS`]
//! XOR-accumulated summaries: every entry hashes (group, key, version)
//! through seeded FNV-1a into the bucket its *key* selects, and the
//! bucket accumulator XORs the hash in on admit and out on removal.
//! The accumulators are kept per TTL band ([`Self::shard_digest`]);
//! XOR is commutative and self-inverse, so the global digest is the
//! band-wise XOR and two caches holding the same entries produce
//! byte-identical digests regardless of arrival order or band churn.
//! [`Self::diff_buckets`] names the buckets where two caches disagree;
//! [`Self::keys_in_bucket`] enumerates the entries a peer must
//! re-announce to close the gap.
//!
//! ## Governor indices
//!
//! The ingest governor's tiered eviction needs deterministic victims:
//! an **origin index** (`origin → sorted session ids`) backs per-source
//! quotas, and an **unverified set** (`(first_heard, key)` of entries
//! heard exactly once) names the newest-unproven tier.  Both are
//! `BTreeMap`/`BTreeSet` so iteration order — and therefore every
//! eviction decision and chaos report — is identical across runs.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use sdalloc_core::{AddrSpace, VisibleSession};
use sdalloc_sim::{SimDuration, SimTime};

use crate::sdp::{DescRef, Media, Origin, SessionDescription};
use crate::slab::{Interner, SessionHandle, SessionId, Slab, Sym};
use crate::wire::fnv1a_64;

/// Number of reconciliation digest buckets.  Sixteen keeps the wire
/// message one small line while still narrowing a single-entry diff to
/// ~1/16 of the cache for targeted re-announcement.
pub const DIGEST_BUCKETS: usize = 16;

/// Protocol-wide digest seed folded into every per-entry hash.  Peers
/// carry the seed in [`crate::wire::CacheDigest`]; a digest computed
/// under a different seed is incomparable and must be ignored.
pub const DIGEST_SEED: u64 = 0x5d1c_4a11_0c8d_1697;

/// Number of TTL partition bands the expiry heaps and digest
/// accumulators are sharded across.  The boundaries mirror the paper's
/// administrative-scope nesting (site ≤ 15, region ≤ 63, continent
/// ≤ 127, world above).
pub const TTL_BANDS: usize = 4;

/// Cache key: who announced, which of their sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Originating host (from the SDP `o=` line).
    pub origin: Ipv4Addr,
    /// Origin's session id.
    pub session_id: u64,
}

/// A fixed-layout session record in the slab arena: `Copy` scalars
/// plus interned string symbols.  The media list is the one
/// variable-length field; its labels are interned so the common
/// single-`audio` case shares two symbols cache-wide.
#[derive(Debug, Clone)]
pub(crate) struct SessionRecord {
    key: CacheKey,
    username: Sym,
    version: u64,
    name: Sym,
    info: Option<Sym>,
    group: Ipv4Addr,
    ttl: u8,
    start: u64,
    stop: u64,
    media: Vec<MediaRec>,
    first_heard: SimTime,
    last_heard: SimTime,
    announcements: u64,
}

/// One interned media line of a record.
#[derive(Debug, Clone, Copy)]
struct MediaRec {
    kind: Sym,
    port: u16,
    proto: Sym,
    format: u32,
}

/// A borrowed view of a cached record: resolves interned symbols on
/// demand and materializes an owned [`SessionDescription`] only when a
/// caller explicitly asks ([`Self::desc`]).
#[derive(Debug, Clone, Copy)]
pub struct EntryRef<'a> {
    rec: &'a SessionRecord,
    strings: &'a Interner,
}

impl<'a> EntryRef<'a> {
    /// The record's cache key.
    pub fn key(&self) -> CacheKey {
        self.rec.key
    }

    /// The session's multicast group.
    pub fn group(&self) -> Ipv4Addr {
        self.rec.group
    }

    /// The session's TTL scope.
    pub fn ttl(&self) -> u8 {
        self.rec.ttl
    }

    /// The `o=` line version of the held description.
    pub fn version(&self) -> u64 {
        self.rec.version
    }

    /// The session name (`s=` line).
    pub fn name(&self) -> &'a str {
        self.strings.get(self.rec.name)
    }

    /// Shared handle on the session name.  Snapshot builders clone
    /// this instead of copying the string: the `Arc` keeps the text
    /// alive after the record (and its interner reference) is gone.
    pub fn name_arc(&self) -> Option<std::sync::Arc<str>> {
        self.strings.get_arc(self.rec.name)
    }

    /// When this session was first heard.
    pub fn first_heard(&self) -> SimTime {
        self.rec.first_heard
    }

    /// When this session was last heard.
    pub fn last_heard(&self) -> SimTime {
        self.rec.last_heard
    }

    /// Number of announcements received.
    pub fn announcements(&self) -> u64 {
        self.rec.announcements
    }

    /// Materialize an owned session description — the explicit copy
    /// point for callers that need one (re-announcement, eviction
    /// reporting); probes read the borrowed accessors instead.
    // lint:allow(hot-alloc): the explicit ownership boundary; hot probes use the borrowed accessors
    pub fn desc(&self) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: self.strings.get(self.rec.username).to_string(),
                session_id: self.rec.key.session_id,
                version: self.rec.version,
                address: self.rec.key.origin,
            },
            name: self.strings.get(self.rec.name).to_string(),
            info: self.rec.info.map(|s| self.strings.get(s).to_string()),
            group: self.rec.group,
            ttl: self.rec.ttl,
            start: self.rec.start,
            stop: self.rec.stop,
            media: self
                .rec
                .media
                .iter()
                .map(|m| Media {
                    kind: self.strings.get(m.kind).to_string(),
                    port: m.port,
                    proto: self.strings.get(m.proto).to_string(),
                    format: m.format,
                })
                .collect(),
        }
    }

    /// Materialize an owned [`CacheEntry`] (description plus heard
    /// bookkeeping).
    pub fn to_entry(&self) -> CacheEntry {
        CacheEntry {
            desc: self.desc(),
            first_heard: self.rec.first_heard,
            last_heard: self.rec.last_heard,
            announcements: self.rec.announcements,
        }
    }
}

/// An owned cached announcement — the materialized form returned by
/// removal paths ([`AnnouncementCache::evict`]) and
/// [`EntryRef::to_entry`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The most recent session description heard.
    pub desc: SessionDescription,
    /// When this session was first heard.
    pub first_heard: SimTime,
    /// When this session was last heard.
    pub last_heard: SimTime,
    /// Number of announcements received.
    pub announcements: u64,
}

/// Outcome of feeding an announcement to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheUpdate {
    /// First time this session was heard.
    New,
    /// Re-announcement with unchanged content.
    Refreshed,
    /// The description changed (higher `o=` version) — e.g. an address
    /// moved after a clash.
    Modified,
    /// Stale: lower version than what we hold; ignored.
    Stale,
}

/// One TTL-band shard: its expiry heap and digest accumulators.
#[derive(Debug, Clone)]
struct Band {
    /// Min-heap of `(last_heard-at-push, key)`.  A slot whose pushed
    /// `last_heard` no longer matches the record's is stale (the
    /// record was refreshed) and is re-filed when it surfaces — into
    /// the record's *current* band; a slot whose key is gone is
    /// discarded.
    expiry: BinaryHeap<Reverse<(SimTime, CacheKey)>>,
    /// XOR-accumulated seeded FNV hashes over (group, key, version)
    /// for the records currently homed in this band.
    digests: [u64; DIGEST_BUCKETS],
}

/// The announcement cache.
#[derive(Debug, Clone)]
pub struct AnnouncementCache {
    /// The record arena.
    arena: Slab<SessionRecord>,
    /// The shared string table for record symbols.
    strings: Interner,
    /// `key → dense id` — the only hashed hop; every index below
    /// resolves through it or stores ids directly.
    ids: HashMap<CacheKey, SessionId>,
    /// Entries not refreshed within this span are purged.
    timeout: SimDuration,
    /// Per-TTL-band expiry heaps and digest accumulators.
    bands: [Band; TTL_BANDS],
    /// `group → keys (sorted) → ids` — the clash-detection probe.
    by_group: HashMap<Ipv4Addr, BTreeMap<CacheKey, SessionId>>,
    /// `(group, ttl) → entry count`, sorted by group then TTL — the
    /// allocator-view projection.
    visible: BTreeMap<(Ipv4Addr, u8), u32>,
    /// `origin → its cached session ids` — governor quotas and
    /// quota-tier eviction.  The outer map is hashed for O(1) hot-path
    /// maintenance; eviction re-derives the deterministic
    /// lowest-origin order with a min-scan (see
    /// [`Self::quota_violator`]).
    origin_keys: HashMap<Ipv4Addr, BTreeSet<u64>>,
    /// `(first_heard, key)` of entries heard exactly once — the
    /// governor's unverified-new eviction tier.
    unverified: BTreeSet<(SimTime, CacheKey)>,
    /// Reused output buffer for the purge methods: no allocation on the
    /// (overwhelmingly common) calls where nothing expires.
    scratch: Vec<CacheKey>,
}

impl AnnouncementCache {
    /// Create a cache with the given expiry timeout.
    ///
    /// RFC 2974 recommends "ten times the announcement period, or one
    /// hour, whichever is the greater"; pass that in from the directory's
    /// announcement schedule.
    pub fn new(timeout: SimDuration) -> Self {
        AnnouncementCache {
            arena: Slab::new(),
            strings: Interner::new(),
            ids: HashMap::new(),
            timeout,
            bands: std::array::from_fn(|_| Band {
                expiry: BinaryHeap::new(),
                digests: [0; DIGEST_BUCKETS],
            }),
            by_group: HashMap::new(),
            visible: BTreeMap::new(),
            origin_keys: HashMap::new(),
            unverified: BTreeSet::new(),
            scratch: Vec::new(),
        }
    }

    /// The TTL partition band a scope falls in: site (≤ 15), region
    /// (≤ 63), continent (≤ 127), world.  Shard selector for the
    /// expiry heaps, the digest accumulators and the directory's
    /// sharded timer queue.
    // lint:sanitizer(wire-taint): exhaustive u8 match clamps any wire TTL into 0..TTL_BANDS — the result can neither index out of bounds nor carry a wire-controlled deadline
    pub fn ttl_band(ttl: u8) -> usize {
        match ttl {
            0..=15 => 0,
            16..=63 => 1,
            64..=127 => 2,
            _ => 3,
        }
    }

    /// The digest bucket `key` hashes into (key only, so version and
    /// group changes stay within one bucket).
    // lint:allow(panic-reach): fixed-size copies into a 12-byte array; both slice bounds are compile-time constants
    fn bucket_of(key: &CacheKey) -> usize {
        let mut bytes = [0u8; 12];
        bytes[..4].copy_from_slice(&key.origin.octets());
        bytes[4..].copy_from_slice(&key.session_id.to_be_bytes());
        // DIGEST_BUCKETS is a power of two; the mask keeps this branch-free.
        (fnv1a_64(&bytes) as usize) & (DIGEST_BUCKETS - 1)
    }

    /// The seeded per-entry hash over (group, key, version) that the
    /// bucket accumulators XOR together.
    // lint:allow(panic-reach): fixed-size copies into a 32-byte array; both slice bounds are compile-time constants
    fn hash_parts(key: &CacheKey, group: Ipv4Addr, version: u64) -> u64 {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&DIGEST_SEED.to_be_bytes());
        bytes[8..12].copy_from_slice(&group.octets());
        bytes[12..16].copy_from_slice(&key.origin.octets());
        bytes[16..24].copy_from_slice(&key.session_id.to_be_bytes());
        bytes[24..].copy_from_slice(&version.to_be_bytes());
        fnv1a_64(&bytes)
    }

    /// The configured expiry timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    // lint:allow(wire-taint): indexing admitted wire sessions is the cache's contract; decode/parse validated the packet and index_remove mirrors every insert
    fn index_insert(&mut self, key: CacheKey, id: SessionId, group: Ipv4Addr, ttl: u8) {
        self.by_group.entry(group).or_default().insert(key, id);
        *self.visible.entry((group, ttl)).or_insert(0) += 1;
    }

    fn index_remove(&mut self, key: CacheKey, group: Ipv4Addr, ttl: u8) {
        if let Some(map) = self.by_group.get_mut(&group) {
            map.remove(&key);
            if map.is_empty() {
                self.by_group.remove(&group);
            }
        }
        if let Some(count) = self.visible.get_mut(&(group, ttl)) {
            *count -= 1;
            if *count == 0 {
                self.visible.remove(&(group, ttl));
            }
        }
    }

    /// Whether a record still matches a wire description exactly
    /// (field-for-field, [`SessionDescription`] equality semantics).
    fn record_matches(strings: &Interner, rec: &SessionRecord, d: &DescRef<'_>) -> bool {
        // Scalar fields first: a genuine modification almost always
        // moves one of these, so the string resolutions below are
        // reached only on the match (refresh) path or a rename.
        rec.version == d.origin.version
            && rec.group == d.group
            && rec.ttl == d.ttl
            && rec.start == d.start
            && rec.stop == d.stop
            && rec.media.len() == d.media.len()
            && strings.get(rec.username) == d.origin.username
            && strings.get(rec.name) == d.name
            && rec.info.map(|s| strings.get(s)) == d.info
            && rec.media.iter().zip(d.media.iter()).all(|(m, dm)| {
                strings.get(m.kind) == dm.kind
                    && m.port == dm.port
                    && strings.get(m.proto) == dm.proto
                    && m.format == dm.format
            })
    }

    /// Feed one announcement heard at `now` — owned-description compat
    /// wrapper over [`Self::observe_announce_ref`].
    // lint:allow(wire-taint): admitting wire announcements is the cache's contract (RFC 2974); SapPacket::decode/SessionDescription::parse validated the payload and purge_expired bounds residency
    pub fn observe_announce(&mut self, now: SimTime, desc: SessionDescription) -> CacheUpdate {
        self.observe_announce_ref(now, &desc.as_ref())
    }

    /// Feed one announcement heard at `now`, zero-copy: the borrowed
    /// description is materialized into interned arena storage only on
    /// admit or modify; a refresh (the overwhelmingly common case)
    /// copies nothing.
    // lint:allow(wire-taint): admitting wire announcements is the cache's contract (RFC 2974); SapFrame::decode/DescRef::parse validated the payload and purge_expired bounds residency
    pub fn observe_announce_ref(&mut self, now: SimTime, d: &DescRef<'_>) -> CacheUpdate {
        let key = CacheKey {
            origin: d.origin.address,
            session_id: d.origin.session_id,
        };
        match self.ids.get(&key).copied() {
            None => {
                let hash = Self::hash_parts(&key, d.group, d.origin.version);
                let rec = SessionRecord {
                    key,
                    username: self.strings.intern(d.origin.username),
                    version: d.origin.version,
                    name: self.strings.intern(d.name),
                    info: d.info.map(|s| self.strings.intern(s)),
                    group: d.group,
                    ttl: d.ttl,
                    start: d.start,
                    stop: d.stop,
                    media: d
                        .media
                        .iter()
                        .map(|m| MediaRec {
                            kind: self.strings.intern(m.kind),
                            port: m.port,
                            proto: self.strings.intern(m.proto),
                            format: m.format,
                        })
                        .collect(), // lint:allow(hot-alloc): cache-admit is the ownership boundary — the one place the borrowed description materializes
                    first_heard: now,
                    last_heard: now,
                    announcements: 1,
                };
                let id = self.arena.insert(rec);
                self.ids.insert(key, id);
                let band = Self::ttl_band(d.ttl);
                self.bands[band].expiry.push(Reverse((now, key))); // lint:allow(panic-reach): ttl_band maps into 0..TTL_BANDS
                self.index_insert(key, id, d.group, d.ttl);
                let bucket = Self::bucket_of(&key);
                self.bands[band].digests[bucket] ^= hash; // lint:allow(panic-reach): ttl_band and bucket_of map into their array bounds
                self.origin_keys
                    .entry(key.origin)
                    .or_default()
                    .insert(key.session_id);
                self.unverified.insert((now, key));
                CacheUpdate::New
            }
            Some(id) => {
                let Some(rec) = self.arena.get_mut(id) else {
                    // Unreachable: `ids` and the arena are maintained in
                    // lockstep; treat a phantom id as ignorable.
                    return CacheUpdate::Stale;
                };
                if d.origin.version < rec.version {
                    return CacheUpdate::Stale;
                }
                let modified =
                    d.origin.version > rec.version || !Self::record_matches(&self.strings, rec, d);
                let (old_group, old_ttl, old_version) = (rec.group, rec.ttl, rec.version);
                if modified {
                    // Intern the new strings before releasing the old
                    // ones so unchanged strings never bounce through
                    // the free list.
                    let old_username = rec.username;
                    let old_name = rec.name;
                    let old_info = rec.info;
                    let old_media = std::mem::take(&mut rec.media);
                    rec.username = self.strings.intern(d.origin.username);
                    rec.name = self.strings.intern(d.name);
                    rec.info = d.info.map(|s| self.strings.intern(s));
                    rec.media = d
                        .media
                        .iter()
                        .map(|m| MediaRec {
                            kind: self.strings.intern(m.kind),
                            port: m.port,
                            proto: self.strings.intern(m.proto),
                            format: m.format,
                        })
                        .collect(); // lint:allow(hot-alloc): modifications are rare — refreshes (the hot case) never reach this arm
                    rec.version = d.origin.version;
                    rec.group = d.group;
                    rec.ttl = d.ttl;
                    rec.start = d.start;
                    rec.stop = d.stop;
                    self.strings.release(old_username);
                    self.strings.release(old_name);
                    if let Some(s) = old_info {
                        self.strings.release(s);
                    }
                    for m in old_media {
                        self.strings.release(m.kind);
                        self.strings.release(m.proto);
                    }
                }
                rec.last_heard = now;
                rec.announcements += 1;
                let became_verified = rec.announcements == 2;
                let first_heard = rec.first_heard;
                // The refresh only bumps `last_heard`; the stale expiry
                // slot is lazily re-filed (into the record's current
                // band) when it surfaces.
                if (old_group, old_ttl) != (d.group, d.ttl) {
                    self.index_remove(key, old_group, old_ttl);
                    self.index_insert(key, id, d.group, d.ttl);
                }
                // The digest hash covers (key, group, version), so a
                // pure refresh — same band, same group, same version,
                // the overwhelmingly common case — provably cancels to
                // a no-op XOR; skip computing the hashes entirely.
                let (old_band, new_band) = (Self::ttl_band(old_ttl), Self::ttl_band(d.ttl));
                if old_band != new_band {
                    let old_hash = Self::hash_parts(&key, old_group, old_version);
                    let new_hash = Self::hash_parts(&key, d.group, d.origin.version);
                    let bucket = Self::bucket_of(&key);
                    self.bands[old_band].digests[bucket] ^= old_hash; // lint:allow(panic-reach): ttl_band and bucket_of map into their array bounds
                    self.bands[new_band].digests[bucket] ^= new_hash; // lint:allow(panic-reach): ttl_band and bucket_of map into their array bounds
                } else if (old_group, old_version) != (d.group, d.origin.version) {
                    let old_hash = Self::hash_parts(&key, old_group, old_version);
                    let new_hash = Self::hash_parts(&key, d.group, d.origin.version);
                    let bucket = Self::bucket_of(&key);
                    let delta = old_hash ^ new_hash;
                    self.bands[old_band].digests[bucket] ^= delta; // lint:allow(panic-reach): ttl_band and bucket_of map into their array bounds
                }
                if became_verified {
                    self.unverified.remove(&(first_heard, key));
                }
                if modified {
                    CacheUpdate::Modified
                } else {
                    CacheUpdate::Refreshed
                }
            }
        }
    }

    /// Drop the digest/governor index state of a just-removed record.
    /// Every removal path (delete, purge, eviction) funnels here so the
    /// accumulators stay exact.
    fn forget_record(&mut self, key: CacheKey, rec: &SessionRecord) {
        let band = Self::ttl_band(rec.ttl);
        let bucket = Self::bucket_of(&key);
        self.bands[band].digests[bucket] ^= Self::hash_parts(&key, rec.group, rec.version); // lint:allow(panic-reach): ttl_band and bucket_of map into their array bounds
        if let Some(ids) = self.origin_keys.get_mut(&key.origin) {
            ids.remove(&key.session_id);
            if ids.is_empty() {
                self.origin_keys.remove(&key.origin);
            }
        }
        // Entries heard twice were dropped from `unverified` the moment
        // they verified; only once-heard entries still hold a slot.
        if rec.announcements < 2 {
            self.unverified.remove(&(rec.first_heard, key));
        }
    }

    /// Release a removed record's interned strings back to the table.
    fn release_record(&mut self, rec: SessionRecord) {
        self.strings.release(rec.username); // lint:allow(wire-taint): drops interner refcounts; no allocator range is touched — the name collides with PrefixRegistry::release
        self.strings.release(rec.name); // lint:allow(wire-taint): interner refcount drop, see above
        if let Some(s) = rec.info {
            self.strings.release(s); // lint:allow(wire-taint): interner refcount drop, see above
        }
        for m in rec.media {
            self.strings.release(m.kind); // lint:allow(wire-taint): interner refcount drop, see above
            self.strings.release(m.proto); // lint:allow(wire-taint): interner refcount drop, see above
        }
    }

    /// Feed a deletion for `(origin, session_id)`; returns whether an
    /// entry was removed.
    pub fn observe_delete(&mut self, origin: Ipv4Addr, session_id: u64) -> bool {
        let key = CacheKey { origin, session_id };
        let Some(id) = self.ids.remove(&key) else {
            return false;
        };
        let Some(rec) = self.arena.remove(id) else {
            return false;
        };
        self.index_remove(key, rec.group, rec.ttl);
        self.forget_record(key, &rec);
        self.release_record(rec);
        // The expiry slot is discarded lazily.
        true
    }

    /// Remove one entry by key, maintaining every index; returns the
    /// removed entry, materialized.  The governor's eviction tiers call
    /// this with a victim chosen by [`Self::oldest_entry`],
    /// [`Self::oldest_unverified`] or [`Self::quota_violator`].
    pub fn evict(&mut self, key: CacheKey) -> Option<CacheEntry> {
        let id = self.ids.remove(&key)?;
        let rec = self.arena.remove(id)?;
        self.index_remove(key, rec.group, rec.ttl);
        self.forget_record(key, &rec);
        let entry = EntryRef {
            rec: &rec,
            strings: &self.strings,
        }
        .to_entry();
        self.release_record(rec);
        // The expiry slot is discarded lazily.
        Some(entry)
    }

    /// Top (oldest) expiry slot of `band`, if any.  Checked access, so
    /// the sweep loops below carry no indexing in their loop headers.
    fn band_top(&self, band: usize) -> Option<(SimTime, CacheKey)> {
        self.bands.get(band)?.expiry.peek().map(|&Reverse(top)| top)
    }

    /// Pop every entry whose `last_heard` is more than `horizon` before
    /// `now` into `self.scratch`, maintaining all indices.  Shared core
    /// of [`Self::purge_expired`] and [`Self::purge_stale`]; both orders
    /// agree because the horizon is constant within one call.
    ///
    /// Due slots are batch-drained band by band; a slot that surfaces
    /// in the wrong band (the record's TTL moved) is re-homed and the
    /// sweep repeats until no slot crossed bands, so a purge never
    /// misses an expired record on account of a TTL move.
    fn purge_older_than(&mut self, now: SimTime, horizon: SimDuration) {
        self.scratch.clear();
        loop {
            let mut crossed = 0usize;
            for band in 0..TTL_BANDS {
                // Band indexing below is panic-free: `band` iterates
                // 0..TTL_BANDS (the array length) and `home` comes from
                // `ttl_band`, which maps into the same range.
                while let Some((pushed, key)) = self.band_top(band) {
                    // The oldest possibly-dead slot is still within the
                    // horizon: every live entry in this band is newer,
                    // so the band is done.  (A stale slot is always
                    // older than its record's true `last_heard`, so
                    // this early-out never misses an expired entry.)
                    if now.saturating_since(pushed) <= horizon {
                        break;
                    }
                    self.bands[band].expiry.pop(); // lint:allow(panic-reach): band iterates 0..TTL_BANDS, the array length
                    let Some(&id) = self.ids.get(&key) else {
                        continue; // deleted since the push: discard the slot
                    };
                    let Some(rec) = self.arena.get(id) else {
                        continue;
                    };
                    let home = Self::ttl_band(rec.ttl);
                    if home != band {
                        // The record's TTL moved bands since the push:
                        // re-home the slot under its current refresh
                        // time and sweep again.
                        let at = rec.last_heard;
                        self.bands[home].expiry.push(Reverse((at, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow; lint:allow(panic-reach): home comes from ttl_band, in 0..TTL_BANDS
                        crossed += 1;
                        continue;
                    }
                    if rec.last_heard != pushed {
                        // Refreshed since the push: re-file under the
                        // current refresh time and keep looking.
                        let at = rec.last_heard;
                        self.bands[band].expiry.push(Reverse((at, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow; lint:allow(panic-reach): band iterates 0..TTL_BANDS
                        continue;
                    }
                    if now.saturating_since(rec.last_heard) > horizon {
                        self.ids.remove(&key);
                        if let Some(rec) = self.arena.remove(id) {
                            self.index_remove(key, rec.group, rec.ttl);
                            self.forget_record(key, &rec);
                            self.release_record(rec);
                        }
                        self.scratch.push(key); // lint:allow(wire-taint): purge output buffer — cleared at entry, holds only keys being removed, shrinks the cache
                    } else {
                        // Unreachable in practice (pushed == last_heard
                        // and the horizon check above already passed),
                        // kept for safety.
                        self.bands[band].expiry.push(Reverse((pushed, key))); // lint:allow(panic-reach): band iterates 0..TTL_BANDS, the array length
                        break;
                    }
                }
            }
            if crossed == 0 {
                break;
            }
        }
        self.scratch.sort_unstable();
    }

    /// Remove entries that have not been refreshed within the timeout;
    /// returns the purged keys, sorted.  The returned slice borrows an
    /// internal scratch buffer: when nothing expired (the common case)
    /// this allocates nothing.
    pub fn purge_expired(&mut self, now: SimTime) -> &[CacheKey] {
        self.purge_older_than(now, self.timeout);
        &self.scratch
    }

    /// Staleness-aware early shedding: remove entries not refreshed
    /// within `horizon` (typically a few background announcement
    /// periods, shorter than the hard timeout).  Returns the purged
    /// keys, sorted, borrowing the same scratch buffer as
    /// [`Self::purge_expired`].
    pub fn purge_stale(&mut self, now: SimTime, horizon: SimDuration) -> &[CacheKey] {
        self.purge_older_than(now, horizon.min(self.timeout));
        &self.scratch
    }

    /// The `last_heard` of the least-recently-refreshed entry — the
    /// basis of the next expiry deadline (`earliest_last_heard +
    /// effective timeout`).  Lazily compacts stale heap slots, so the
    /// answer is exact.
    pub fn earliest_last_heard(&mut self) -> Option<SimTime> {
        self.oldest_entry().map(|(_, at)| at)
    }

    /// The least-recently-refreshed entry and its `last_heard` — the
    /// governor's stale eviction tier.  Lazily compacts each band's
    /// stale heap slots until its top is exact, then takes the global
    /// minimum by `(last_heard, key)` across bands.
    pub fn oldest_entry(&mut self) -> Option<(CacheKey, SimTime)> {
        // Band indexing below is panic-free: `band` iterates
        // 0..TTL_BANDS (the array length) and `home` comes from
        // `ttl_band`, which maps into the same range.
        for band in 0..TTL_BANDS {
            while let Some((pushed, key)) = self.band_top(band) {
                let Some(rec) = self.ids.get(&key).and_then(|&id| self.arena.get(id)) else {
                    self.bands[band].expiry.pop(); // lint:allow(panic-reach): band iterates 0..TTL_BANDS, the array length
                    continue;
                };
                let home = Self::ttl_band(rec.ttl);
                if home != band {
                    // Re-home under the current refresh time.  The
                    // moved slot is exact, so it cannot invalidate a
                    // band top compacted earlier in this loop.
                    let at = rec.last_heard;
                    self.bands[band].expiry.pop(); // lint:allow(panic-reach): band iterates 0..TTL_BANDS, the array length
                    self.bands[home].expiry.push(Reverse((at, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow; lint:allow(panic-reach): home comes from ttl_band, in 0..TTL_BANDS
                    continue;
                }
                if rec.last_heard != pushed {
                    let at = rec.last_heard;
                    self.bands[band].expiry.pop(); // lint:allow(panic-reach): band iterates 0..TTL_BANDS, the array length
                    self.bands[band].expiry.push(Reverse((at, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow; lint:allow(panic-reach): band iterates 0..TTL_BANDS
                    continue;
                }
                break; // top is exact
            }
        }
        self.bands
            .iter()
            .filter_map(|b| b.expiry.peek().map(|&Reverse(top)| top))
            .min()
            .map(|(at, key)| (key, at))
    }

    /// The oldest entry heard exactly once — the governor's
    /// unverified-new eviction tier.  O(log n).
    pub fn oldest_unverified(&self) -> Option<CacheKey> {
        self.unverified.first().map(|&(_, key)| key)
    }

    /// The least-recently-heard session of the lowest-addressed origin
    /// holding more than `quota` entries — the governor's quota
    /// eviction tier.  O(origins + quota); deterministic because the
    /// violating origin is picked by min-scan and the victim by a
    /// total (last_heard, key) order.
    // lint:allow(hot-path-scan): last-resort eviction tier, reached only at the hard cache budget when the stale and unverified tiers are empty
    pub fn quota_violator(&self, quota: u32) -> Option<CacheKey> {
        let origin = self
            .origin_keys
            .iter()
            .filter(|(_, ids)| ids.len() as u64 > u64::from(quota))
            .map(|(&origin, _)| origin)
            .min()?;
        let ids = self.origin_keys.get(&origin)?;
        ids.iter()
            .filter_map(|&session_id| {
                let key = CacheKey { origin, session_id };
                self.ids
                    .get(&key)
                    .and_then(|&id| self.arena.get(id))
                    .map(|rec| (rec.last_heard, key))
            })
            .min()
            .map(|(_, key)| key)
    }

    /// Number of cached sessions announced by `origin`.  O(log origins).
    pub fn origin_count(&self, origin: Ipv4Addr) -> usize {
        self.origin_keys.get(&origin).map_or(0, BTreeSet::len)
    }

    /// The current per-bucket digest accumulators: the band-wise XOR of
    /// every shard's accumulators.
    pub fn digest(&self) -> [u64; DIGEST_BUCKETS] {
        let mut out = [0u64; DIGEST_BUCKETS];
        for band in &self.bands {
            for (acc, &d) in out.iter_mut().zip(band.digests.iter()) {
                *acc ^= d;
            }
        }
        out
    }

    /// One TTL-band shard's digest accumulators (zeros for an
    /// out-of-range band).  The global [`Self::digest`] is the XOR of
    /// all shards; the recycling proptests recompute each shard from
    /// scratch and check consistency.
    pub fn shard_digest(&self, band: usize) -> [u64; DIGEST_BUCKETS] {
        self.bands
            .get(band)
            .map_or([0; DIGEST_BUCKETS], |b| b.digests)
    }

    /// Bucket indices where our digest differs from `theirs`, sorted.
    pub fn diff_buckets(&self, theirs: &[u64; DIGEST_BUCKETS]) -> Vec<u16> {
        let ours = self.digest();
        (0..DIGEST_BUCKETS)
            .filter(|&b| ours[b] != theirs[b]) // lint:allow(panic-reach): b ranges over 0..DIGEST_BUCKETS, the length of both arrays
            .map(|b| b as u16)
            .collect()
    }

    /// Keys currently hashed into `bucket`, sorted (empty when the
    /// bucket index is out of range) — what a peer re-announces to
    /// close a digest gap.
    ///
    /// Computed by scanning rather than kept as an eager index: the
    /// callers are reconcile requests, rate-limited by the directory's
    /// `min_request_gap`, while an eager per-bucket index would tax
    /// every insert and expiry on the announcement hot path.
    pub fn keys_in_bucket(&self, bucket: usize) -> Vec<CacheKey> {
        if bucket >= DIGEST_BUCKETS {
            return Vec::new(); // lint:allow(hot-alloc): empty Vec does not allocate
        }
        let mut keys: Vec<CacheKey> = self
            .ids
            .keys() // lint:allow(hot-path-scan): reconcile-request path, rate-limited by min_request_gap; an eager per-bucket index would tax every insert and expiry instead
            .filter(|k| Self::bucket_of(k) == bucket)
            .copied()
            .collect(); // lint:allow(hot-alloc): reconcile-request path, rate-limited by min_request_gap; at most one bucket's worth of keys
        keys.sort_unstable();
        keys
    }

    /// The digest contribution of one session description: the bucket
    /// it hashes into and its (group, key, version) hash.  The
    /// directory folds its *own* (uncached) sessions into the scope
    /// digest with this, so two in-sync peers — one originating a
    /// session, the other caching it — digest identically.
    pub fn desc_digest(desc: &SessionDescription) -> (usize, u64) {
        let key = CacheKey {
            origin: desc.origin.address,
            session_id: desc.origin.session_id,
        };
        (
            Self::bucket_of(&key),
            Self::hash_parts(&key, desc.group, desc.origin.version),
        )
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Look up one entry as a borrowed view.
    pub fn get(&self, origin: Ipv4Addr, session_id: u64) -> Option<EntryRef<'_>> {
        let &id = self.ids.get(&CacheKey { origin, session_id })?;
        let rec = self.arena.get(id)?;
        Some(EntryRef {
            rec,
            strings: &self.strings,
        })
    }

    /// Mint a generation-checked handle for a cached session.  The
    /// handle survives refreshes but goes permanently stale the moment
    /// the entry is evicted, purged or deleted — even if the arena
    /// slot is later recycled for a different session.
    pub fn handle_of(&self, origin: Ipv4Addr, session_id: u64) -> Option<SessionHandle> {
        let &id = self.ids.get(&CacheKey { origin, session_id })?;
        self.arena.handle(id)
    }

    /// Resolve a handle minted by [`Self::handle_of`]: `Some` only
    /// while the same record is still cached (generation check — a
    /// recycled slot never aliases).
    pub fn resolve(&self, handle: SessionHandle) -> Option<EntryRef<'_>> {
        let rec = self.arena.resolve(handle)?;
        Some(EntryRef {
            rec,
            strings: &self.strings,
        })
    }

    /// All entries using the given multicast group — the clash-detection
    /// probe.  O(users of `group`), in `(origin, session_id)` order,
    /// allocation-free: each candidate resolves by dense id straight
    /// into the arena.
    pub fn users_of(&self, group: Ipv4Addr) -> impl Iterator<Item = (CacheKey, EntryRef<'_>)> + '_ {
        self.by_group
            .get(&group)
            .into_iter()
            .flatten()
            .filter_map(move |(&key, &id)| {
                self.arena.get(id).map(|rec| {
                    (
                        key,
                        EntryRef {
                            rec,
                            strings: &self.strings,
                        },
                    )
                })
            })
    }

    /// Whether any cached session currently uses `group`.  O(1).
    pub fn group_in_use(&self, group: Ipv4Addr) -> bool {
        self.by_group.contains_key(&group)
    }

    /// Project the cache onto an allocator view: `(address index, TTL)`
    /// for every cached session whose group lies in `space`, sorted by
    /// `(address, TTL)`.  Walks the sorted `(group, ttl)` multiset, so
    /// the cost is O(result), not O(cache) + sort.  Multiplicity is
    /// preserved (two clashing sessions on one group project twice),
    /// matching the per-entry projection the allocators were built
    /// against.
    // lint:allow(hot-alloc): returns the projected per-session view the allocators consume
    // lint:allow(hot-path-scan): projecting the cache onto the allocator view is O(result) by contract — the walk IS the output
    pub fn visible_sessions(&self, space: &AddrSpace) -> Vec<VisibleSession> {
        let mut v = Vec::new();
        for (&(group, ttl), &count) in &self.visible {
            if let Some(addr) = space.index_of(group) {
                for _ in 0..count {
                    v.push(VisibleSession::new(addr, ttl));
                }
            }
        }
        // `visible` iterates in (group IP, ttl) order and the space is a
        // contiguous range, so `v` is already (addr, ttl)-sorted.
        v
    }

    /// Iterate all entries (unordered) as borrowed views.
    // lint:allow(hot-path-scan): returns a lazy iterator; the accessor itself performs no scan — the cost belongs to callers that drain it
    pub fn iter(&self) -> impl Iterator<Item = (CacheKey, EntryRef<'_>)> {
        self.ids.iter().filter_map(move |(&key, &id)| {
            self.arena.get(id).map(|rec| {
                (
                    key,
                    EntryRef {
                        rec,
                        strings: &self.strings,
                    },
                )
            })
        })
    }

    /// Total slots across the band expiry heaps (test instrumentation
    /// for the lazy re-file invariant: refresh churn must not grow the
    /// heaps).
    #[cfg(test)]
    fn expiry_slots(&self) -> usize {
        self.bands.iter().map(|b| b.expiry.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::{Media, Origin};

    fn desc(
        origin_ip: [u8; 4],
        sid: u64,
        version: u64,
        group: [u8; 4],
        ttl: u8,
    ) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: sid,
                version,
                address: Ipv4Addr::from(origin_ip),
            },
            name: format!("s{sid}"),
            info: None,
            group: Ipv4Addr::from(group),
            ttl,
            start: 0,
            stop: 0,
            media: vec![Media {
                kind: "audio".into(),
                port: 5004,
                proto: "RTP/AVP".into(),
                format: 0,
            }],
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn new_refresh_modify_stale() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        assert_eq!(c.observe_announce(t(0), d1.clone()), CacheUpdate::New);
        assert_eq!(
            c.observe_announce(t(10), d1.clone()),
            CacheUpdate::Refreshed
        );
        let mut d2 = d1.clone();
        d2.origin.version = 2;
        d2.group = Ipv4Addr::new(224, 2, 128, 9);
        assert_eq!(c.observe_announce(t(20), d2), CacheUpdate::Modified);
        // The old version is now stale.
        assert_eq!(c.observe_announce(t(30), d1), CacheUpdate::Stale);
        assert_eq!(c.len(), 1);
        let e = c.get(Ipv4Addr::new(10, 0, 0, 1), 7).unwrap();
        assert_eq!(e.group(), Ipv4Addr::new(224, 2, 128, 9));
        assert_eq!(e.announcements(), 3); // stale one not counted
                                          // The group index tracked the move.
        assert!(!c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
        assert!(c.group_in_use(Ipv4Addr::new(224, 2, 128, 9)));
    }

    #[test]
    fn same_version_content_change_counts_as_modified() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        c.observe_announce(t(0), d1.clone());
        let mut d2 = d1;
        d2.ttl = 127;
        assert_eq!(c.observe_announce(t(1), d2), CacheUpdate::Modified);
    }

    #[test]
    fn delete_removes() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63));
        assert!(c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(!c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(c.is_empty());
        assert!(!c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
        assert_eq!(c.earliest_last_heard(), None, "expiry slot compacted");
    }

    #[test]
    fn expiry() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(50), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        let purged = c.purge_expired(t(120));
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].session_id, 1);
        assert_eq!(c.len(), 1);
        // Refreshing resets the clock.
        c.observe_announce(t(140), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert!(c.purge_expired(t(240)).is_empty());
        assert_eq!(c.earliest_last_heard(), Some(t(140)));
    }

    #[test]
    fn purge_returns_sorted_keys() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(10));
        // Insert out of key order with distinct refresh times.
        c.observe_announce(t(2), desc([10, 0, 0, 9], 3, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 2], 63));
        c.observe_announce(t(1), desc([10, 0, 0, 5], 1, 1, [224, 2, 128, 3], 63));
        let purged: Vec<CacheKey> = c.purge_expired(t(100)).to_vec();
        assert_eq!(purged.len(), 3);
        let mut sorted = purged.clone();
        sorted.sort();
        assert_eq!(purged, sorted);
        assert!(c.is_empty());
    }

    #[test]
    fn purge_stale_sheds_ahead_of_timeout() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(1000), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        // Hard timeout not reached, but entry 1 is past the 20-minute
        // staleness horizon.
        let purged: Vec<CacheKey> = c
            .purge_stale(t(1300), SimDuration::from_secs(1200))
            .to_vec();
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].session_id, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn users_of_group() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 9, 1, [224, 2, 128, 5], 15));
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [224, 2, 128, 6], 63));
        let users: Vec<_> = c.users_of(Ipv4Addr::new(224, 2, 128, 5)).collect();
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0.origin, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c.users_of(Ipv4Addr::new(224, 9, 9, 9)).count(), 0);
    }

    #[test]
    fn visible_sessions_projection() {
        let space = AddrSpace::sdr_dynamic(); // base 224.2.128.0
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 2, 1, [224, 2, 129, 0], 127));
        // Outside the space: ignored in the view.
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [239, 1, 1, 1], 15));
        let view = c.visible_sessions(&space);
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].addr.0, 5);
        assert_eq!(view[0].ttl, 63);
        assert_eq!(view[1].addr.0, 256);
        assert_eq!(view[1].ttl, 127);
    }

    #[test]
    fn visible_sessions_preserve_multiplicity_and_order() {
        let space = AddrSpace::sdr_dynamic();
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        // Two different origins clash on one group with the same TTL —
        // the projection must still list both (the allocators weigh
        // occupancy per session, not per group).
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [224, 2, 128, 4], 15));
        let view = c.visible_sessions(&space);
        assert_eq!(view.len(), 3);
        assert_eq!((view[0].addr.0, view[0].ttl), (4, 15));
        assert_eq!((view[1].addr.0, view[1].ttl), (5, 63));
        assert_eq!((view[2].addr.0, view[2].ttl), (5, 63));
        // Deleting one of the clashing pair leaves the other visible.
        c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 1);
        assert_eq!(c.visible_sessions(&space).len(), 2);
        assert!(c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
    }

    #[test]
    fn distinct_origins_distinct_entries() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        // Same session id from two hosts: two sessions.
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 7, 1, [224, 2, 128, 2], 63));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn earliest_last_heard_tracks_refreshes() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        assert_eq!(c.earliest_last_heard(), None);
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(5), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert_eq!(c.earliest_last_heard(), Some(t(0)));
        // Refreshing the oldest entry moves the horizon to the next one.
        c.observe_announce(t(50), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        assert_eq!(c.earliest_last_heard(), Some(t(5)));
        c.purge_expired(t(200));
        assert_eq!(c.earliest_last_heard(), None);
    }

    #[test]
    fn heap_stays_compact_under_refresh_churn() {
        // Refreshing an entry must not grow the heaps: slots are only
        // re-filed when they surface, so the heaps stay O(entries).
        let mut c = AnnouncementCache::new(SimDuration::from_secs(1000));
        for k in 0..50u64 {
            c.observe_announce(t(0), desc([10, 0, 0, 1], k, 1, [224, 2, 128, k as u8], 63));
        }
        for round in 1..100u64 {
            for k in 0..50u64 {
                c.observe_announce(
                    t(round),
                    desc([10, 0, 0, 1], k, 1, [224, 2, 128, k as u8], 63),
                );
            }
        }
        assert_eq!(c.len(), 50);
        assert_eq!(
            c.expiry_slots(),
            50,
            "refresh churn must not grow the heaps"
        );
    }

    #[test]
    fn digest_is_order_independent() {
        // XOR accumulation: two caches holding the same entries digest
        // identically no matter the arrival order (or refresh history).
        let descs: Vec<_> = (0..20u64)
            .map(|k| {
                desc(
                    [10, 0, (k / 8) as u8, (k % 8) as u8 + 1],
                    k,
                    1,
                    [224, 2, 128, k as u8],
                    63,
                )
            })
            .collect();
        let mut forward = AnnouncementCache::new(SimDuration::from_secs(3600));
        for d in &descs {
            forward.observe_announce(t(0), d.clone());
        }
        let mut backward = AnnouncementCache::new(SimDuration::from_secs(3600));
        for d in descs.iter().rev() {
            backward.observe_announce(t(5), d.clone());
            backward.observe_announce(t(6), d.clone()); // refresh: digest-neutral
        }
        assert_eq!(forward.digest(), backward.digest());
        assert!(forward.diff_buckets(&backward.digest()).is_empty());
    }

    #[test]
    fn digest_tracks_insert_modify_delete() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let empty = c.digest();
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        c.observe_announce(t(0), d1.clone());
        let with_v1 = c.digest();
        assert_ne!(with_v1, empty, "an entry must perturb its bucket");
        // A version bump (e.g. an address move) changes the digest ...
        let mut d2 = d1.clone();
        d2.origin.version = 2;
        d2.group = Ipv4Addr::new(224, 2, 128, 9);
        c.observe_announce(t(1), d2);
        assert_ne!(c.digest(), with_v1);
        // ... while removal restores the empty accumulator exactly.
        assert!(c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert_eq!(c.digest(), empty);
    }

    #[test]
    fn digest_survives_purge() {
        // Expiry removals must unwind the accumulators like deletes do.
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        let empty = c.digest();
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(50), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        c.purge_expired(t(120));
        let survivor = c.digest();
        assert_ne!(survivor, empty);
        c.purge_expired(t(300));
        assert_eq!(c.digest(), empty);
        assert_eq!(
            c.keys_in_bucket(0).len()
                + (1..DIGEST_BUCKETS)
                    .map(|b| c.keys_in_bucket(b).len())
                    .sum::<usize>(),
            0
        );
    }

    #[test]
    fn bucket_index_names_divergent_entries() {
        let mut a = AnnouncementCache::new(SimDuration::from_secs(3600));
        let mut b = AnnouncementCache::new(SimDuration::from_secs(3600));
        let shared = desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63);
        a.observe_announce(t(0), shared.clone());
        b.observe_announce(t(0), shared);
        let only_a = desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63);
        a.observe_announce(t(0), only_a.clone());
        let diff = a.diff_buckets(&b.digest());
        assert_eq!(
            diff.len(),
            1,
            "one extra entry differs in exactly one bucket"
        );
        let keys = a.keys_in_bucket(diff[0] as usize);
        assert!(keys
            .iter()
            .any(|k| k.origin == only_a.origin.address && k.session_id == 2));
    }

    #[test]
    fn governor_indices_track_origins_and_verification() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        for sid in 0..3u64 {
            c.observe_announce(
                t(sid),
                desc([10, 0, 0, 1], sid, 1, [224, 2, 128, sid as u8], 63),
            );
        }
        c.observe_announce(t(9), desc([10, 0, 0, 2], 0, 1, [224, 2, 129, 0], 63));
        assert_eq!(c.origin_count(Ipv4Addr::new(10, 0, 0, 1)), 3);
        assert_eq!(c.origin_count(Ipv4Addr::new(10, 0, 0, 2)), 1);
        assert_eq!(c.origin_count(Ipv4Addr::new(10, 0, 0, 9)), 0);
        // All entries heard once: the oldest unverified is the first in.
        assert_eq!(
            c.oldest_unverified(),
            Some(CacheKey {
                origin: Ipv4Addr::new(10, 0, 0, 1),
                session_id: 0
            })
        );
        // A second announcement verifies the entry out of the tier.
        c.observe_announce(t(10), desc([10, 0, 0, 1], 0, 1, [224, 2, 128, 0], 63));
        assert_eq!(
            c.oldest_unverified(),
            Some(CacheKey {
                origin: Ipv4Addr::new(10, 0, 0, 1),
                session_id: 1
            })
        );
        // Quota tier: origin .1 holds 3 > 2; its stalest session (1,
        // last heard at t(1)) is the deterministic victim.
        assert_eq!(
            c.quota_violator(2),
            Some(CacheKey {
                origin: Ipv4Addr::new(10, 0, 0, 1),
                session_id: 1
            })
        );
        assert_eq!(c.quota_violator(3), None);
        // Eviction unwinds every index.
        let victim = c.quota_violator(2).unwrap();
        assert!(c.evict(victim).is_some());
        assert!(c.evict(victim).is_none());
        assert_eq!(c.origin_count(Ipv4Addr::new(10, 0, 0, 1)), 2);
        assert_eq!(c.quota_violator(2), None);
    }

    #[test]
    fn oldest_entry_matches_earliest_last_heard() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        assert_eq!(c.oldest_entry(), None);
        c.observe_announce(t(3), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(1), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        let (key, at) = c.oldest_entry().unwrap();
        assert_eq!(at, t(1));
        assert_eq!(key.session_id, 2);
        assert_eq!(c.earliest_last_heard(), Some(t(1)));
    }

    #[test]
    fn ttl_move_rehomes_expiry_slot_and_digest_shard() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        let d1 = desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 15); // band 0
        c.observe_announce(t(0), d1.clone());
        assert_ne!(c.shard_digest(0), [0; DIGEST_BUCKETS]);
        assert_eq!(c.shard_digest(3), [0; DIGEST_BUCKETS]);
        // TTL moves to world scope: the digest contribution crosses
        // shards; the global digest tracks the new (group, version).
        let mut d2 = d1.clone();
        d2.origin.version = 2;
        d2.ttl = 255; // band 3
        c.observe_announce(t(10), d2.clone());
        assert_eq!(c.shard_digest(0), [0; DIGEST_BUCKETS]);
        assert_ne!(c.shard_digest(3), [0; DIGEST_BUCKETS]);
        let mut fresh = AnnouncementCache::new(SimDuration::from_secs(100));
        fresh.observe_announce(t(10), d2);
        assert_eq!(c.digest(), fresh.digest());
        // The stale band-0 heap slot re-homes lazily; expiry still
        // fires from the record's true refresh time.
        assert_eq!(c.earliest_last_heard(), Some(t(10)));
        assert!(c.purge_expired(t(105)).is_empty());
        let purged: Vec<CacheKey> = c.purge_expired(t(111)).to_vec();
        assert_eq!(purged.len(), 1);
        assert!(c.is_empty());
        assert_eq!(c.digest(), [0; DIGEST_BUCKETS]);
        assert_eq!(c.shard_digest(3), [0; DIGEST_BUCKETS]);
    }

    #[test]
    fn stale_handle_never_resolves_after_slot_reuse() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        let h = c.handle_of(Ipv4Addr::new(10, 0, 0, 1), 1).unwrap();
        assert_eq!(c.resolve(h).unwrap().group(), Ipv4Addr::new(224, 2, 128, 1));
        // A refresh keeps the handle live ...
        c.observe_announce(t(5), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        assert!(c.resolve(h).is_some());
        // ... eviction kills it, and a new session recycling the slot
        // must not resurrect it.
        c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 1);
        assert!(c.resolve(h).is_none());
        c.observe_announce(t(6), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert!(
            c.resolve(h).is_none(),
            "stale handle aliased a recycled slot"
        );
        let h2 = c.handle_of(Ipv4Addr::new(10, 0, 0, 2), 2).unwrap();
        assert_eq!(c.resolve(h2).unwrap().key().session_id, 2);
    }

    #[test]
    fn entry_ref_materializes_the_original_description() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        let mut d = desc([10, 0, 0, 1], 1, 3, [224, 2, 128, 1], 63);
        d.info = Some("lecture".into());
        c.observe_announce(t(0), d.clone());
        let e = c.get(Ipv4Addr::new(10, 0, 0, 1), 1).unwrap();
        assert_eq!(e.desc(), d);
        assert_eq!(e.name(), "s1");
        assert_eq!(e.version(), 3);
        let entry = e.to_entry();
        assert_eq!(entry.desc, d);
        assert_eq!(entry.announcements, 1);
    }
}
