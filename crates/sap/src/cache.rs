//! The announcement cache: the listener half of announce/listen.
//!
//! "Session directories use an announce/listen approach to build up a
//! complete list of these advertised sessions, and a multicast address
//! is chosen from those not already in use."  The cache holds every
//! session description heard, keyed by `(originating source, session
//! id)`, ages entries out when announcements stop, honours explicit
//! deletions, and — crucially for allocation — projects itself onto the
//! allocator's [`sdalloc_core::View`] as `(address, TTL)` pairs.
//!
//! ## Indexing
//!
//! A production-scale scope caches tens of thousands of sessions, and
//! the first reproduction paid O(cache) on every hot operation: expiry
//! was a full `retain` scan, the clash-detection probe filtered every
//! entry, and the allocator view was rebuilt by scanning the table.
//! Three incrementally-maintained indices remove those scans:
//!
//! * **expiry heap** — a min-heap ordered by `last_heard` (with a fixed
//!   timeout, `last_heard` order *is* expiry order).  Entries are
//!   inserted once when first heard; a refresh just bumps the entry's
//!   `last_heard`, and the stale heap slot is lazily re-pushed when it
//!   surfaces.  [`Self::purge_expired`] therefore costs O(expired ·
//!   log n), not O(n), and [`Self::earliest_last_heard`] exposes the
//!   next expiry deadline for wake-on-deadline callers.
//! * **group index** — `group → sorted set of keys`, so
//!   [`Self::users_of`] (the clash probe, run on *every* received
//!   announcement) is O(candidates) instead of O(cache).
//! * **visible multiset** — `(group, ttl) → count`, kept sorted, so
//!   [`Self::visible_sessions`] walks only distinct occupied
//!   `(group, ttl)` pairs in deterministic order instead of scanning
//!   and sorting the whole table per allocation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use sdalloc_core::{AddrSpace, VisibleSession};
use sdalloc_sim::{SimDuration, SimTime};

use crate::sdp::SessionDescription;

/// Cache key: who announced, which of their sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Originating host (from the SDP `o=` line).
    pub origin: Ipv4Addr,
    /// Origin's session id.
    pub session_id: u64,
}

/// A cached announcement.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The most recent session description heard.
    pub desc: SessionDescription,
    /// When this session was first heard.
    pub first_heard: SimTime,
    /// When this session was last heard.
    pub last_heard: SimTime,
    /// Number of announcements received.
    pub announcements: u64,
}

/// Outcome of feeding an announcement to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheUpdate {
    /// First time this session was heard.
    New,
    /// Re-announcement with unchanged content.
    Refreshed,
    /// The description changed (higher `o=` version) — e.g. an address
    /// moved after a clash.
    Modified,
    /// Stale: lower version than what we hold; ignored.
    Stale,
}

/// The announcement cache.
#[derive(Debug, Clone)]
pub struct AnnouncementCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Entries not refreshed within this span are purged.
    timeout: SimDuration,
    /// Min-heap of `(last_heard-at-push, key)`.  A slot whose pushed
    /// `last_heard` no longer matches the entry's is stale (the entry
    /// was refreshed) and is re-pushed with the current value when it
    /// surfaces; a slot whose key is gone is discarded.
    expiry: BinaryHeap<Reverse<(SimTime, CacheKey)>>,
    /// `group → keys using it`, sorted — the clash-detection probe.
    by_group: HashMap<Ipv4Addr, BTreeSet<CacheKey>>,
    /// `(group, ttl) → entry count`, sorted by group then TTL — the
    /// allocator-view projection.
    visible: BTreeMap<(Ipv4Addr, u8), u32>,
    /// Reused output buffer for the purge methods: no allocation on the
    /// (overwhelmingly common) calls where nothing expires.
    scratch: Vec<CacheKey>,
}

impl AnnouncementCache {
    /// Create a cache with the given expiry timeout.
    ///
    /// RFC 2974 recommends "ten times the announcement period, or one
    /// hour, whichever is the greater"; pass that in from the directory's
    /// announcement schedule.
    pub fn new(timeout: SimDuration) -> Self {
        AnnouncementCache {
            entries: HashMap::new(),
            timeout,
            expiry: BinaryHeap::new(),
            by_group: HashMap::new(),
            visible: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The configured expiry timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    // lint:allow(wire-taint): indexing admitted wire sessions is the cache's contract; decode/parse validated the packet and index_remove mirrors every insert
    fn index_insert(&mut self, key: CacheKey, group: Ipv4Addr, ttl: u8) {
        self.by_group.entry(group).or_default().insert(key);
        *self.visible.entry((group, ttl)).or_insert(0) += 1;
    }

    fn index_remove(&mut self, key: CacheKey, group: Ipv4Addr, ttl: u8) {
        if let Some(set) = self.by_group.get_mut(&group) {
            set.remove(&key);
            if set.is_empty() {
                self.by_group.remove(&group);
            }
        }
        if let Some(count) = self.visible.get_mut(&(group, ttl)) {
            *count -= 1;
            if *count == 0 {
                self.visible.remove(&(group, ttl));
            }
        }
    }

    /// Feed one announcement heard at `now`.
    // lint:allow(wire-taint): admitting wire announcements is the cache's contract (RFC 2974); SapPacket::decode/SessionDescription::parse validated the payload and purge_expired bounds residency
    pub fn observe_announce(&mut self, now: SimTime, desc: SessionDescription) -> CacheUpdate {
        let key = CacheKey {
            origin: desc.origin.address,
            session_id: desc.origin.session_id,
        };
        match self.entries.get_mut(&key) {
            None => {
                let (group, ttl) = (desc.group, desc.ttl);
                self.entries.insert(
                    key,
                    CacheEntry {
                        desc,
                        first_heard: now,
                        last_heard: now,
                        announcements: 1,
                    },
                );
                self.expiry.push(Reverse((now, key)));
                self.index_insert(key, group, ttl);
                CacheUpdate::New
            }
            Some(entry) => {
                if desc.origin.version < entry.desc.origin.version {
                    return CacheUpdate::Stale;
                }
                let modified =
                    desc.origin.version > entry.desc.origin.version || desc != entry.desc;
                let (old_group, old_ttl) = (entry.desc.group, entry.desc.ttl);
                let (new_group, new_ttl) = (desc.group, desc.ttl);
                entry.desc = desc;
                entry.last_heard = now;
                entry.announcements += 1;
                // The refresh only bumps `last_heard`; the stale expiry
                // slot is lazily re-pushed when it surfaces.
                if (old_group, old_ttl) != (new_group, new_ttl) {
                    self.index_remove(key, old_group, old_ttl);
                    self.index_insert(key, new_group, new_ttl);
                }
                if modified {
                    CacheUpdate::Modified
                } else {
                    CacheUpdate::Refreshed
                }
            }
        }
    }

    /// Feed a deletion for `(origin, session_id)`; returns whether an
    /// entry was removed.
    pub fn observe_delete(&mut self, origin: Ipv4Addr, session_id: u64) -> bool {
        let key = CacheKey { origin, session_id };
        match self.entries.remove(&key) {
            Some(entry) => {
                self.index_remove(key, entry.desc.group, entry.desc.ttl);
                // The expiry slot is discarded lazily.
                true
            }
            None => false,
        }
    }

    /// Pop every entry whose `last_heard` is more than `horizon` before
    /// `now` into `self.scratch`, maintaining all indices.  Shared core
    /// of [`Self::purge_expired`] and [`Self::purge_stale`]; both orders
    /// agree because the horizon is constant within one call.
    fn purge_older_than(&mut self, now: SimTime, horizon: SimDuration) {
        self.scratch.clear();
        while let Some(&Reverse((pushed, key))) = self.expiry.peek() {
            // The oldest possibly-dead slot is still within the horizon:
            // every live entry is newer, so we are done.  (A stale slot
            // is always older than its entry's true `last_heard`, so
            // this early-out never misses an expired entry.)
            if now.saturating_since(pushed) <= horizon {
                break;
            }
            self.expiry.pop();
            let Some(entry) = self.entries.get(&key) else {
                continue; // deleted since the push: discard the slot
            };
            if entry.last_heard != pushed {
                // Refreshed since the push: re-file under the current
                // refresh time and keep looking.
                self.expiry.push(Reverse((entry.last_heard, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow
                continue;
            }
            if now.saturating_since(entry.last_heard) > horizon {
                let (group, ttl) = (entry.desc.group, entry.desc.ttl);
                self.entries.remove(&key);
                self.index_remove(key, group, ttl);
                self.scratch.push(key);
            } else {
                // Unreachable in practice (pushed == last_heard and the
                // horizon check above already passed), kept for safety.
                self.expiry.push(Reverse((pushed, key)));
                break;
            }
        }
        self.scratch.sort_unstable();
    }

    /// Remove entries that have not been refreshed within the timeout;
    /// returns the purged keys, sorted.  The returned slice borrows an
    /// internal scratch buffer: when nothing expired (the common case)
    /// this allocates nothing.
    pub fn purge_expired(&mut self, now: SimTime) -> &[CacheKey] {
        self.purge_older_than(now, self.timeout);
        &self.scratch
    }

    /// Staleness-aware early shedding: remove entries not refreshed
    /// within `horizon` (typically a few background announcement
    /// periods, shorter than the hard timeout).  Returns the purged
    /// keys, sorted, borrowing the same scratch buffer as
    /// [`Self::purge_expired`].
    pub fn purge_stale(&mut self, now: SimTime, horizon: SimDuration) -> &[CacheKey] {
        self.purge_older_than(now, horizon.min(self.timeout));
        &self.scratch
    }

    /// The `last_heard` of the least-recently-refreshed entry — the
    /// basis of the next expiry deadline (`earliest_last_heard +
    /// effective timeout`).  Lazily compacts stale heap slots, so the
    /// answer is exact.
    pub fn earliest_last_heard(&mut self) -> Option<SimTime> {
        loop {
            let &Reverse((pushed, key)) = self.expiry.peek()?;
            let Some(entry) = self.entries.get(&key) else {
                self.expiry.pop();
                continue;
            };
            if entry.last_heard != pushed {
                self.expiry.pop();
                self.expiry.push(Reverse((entry.last_heard, key))); // lint:allow(wire-taint): re-files the popped slot of an existing entry; net heap size does not grow
                continue;
            }
            return Some(pushed);
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up one entry.
    pub fn get(&self, origin: Ipv4Addr, session_id: u64) -> Option<&CacheEntry> {
        self.entries.get(&CacheKey { origin, session_id })
    }

    /// All entries using the given multicast group — the clash-detection
    /// probe.  O(users of `group`), in `(origin, session_id)` order,
    /// allocation-free.
    pub fn users_of(&self, group: Ipv4Addr) -> impl Iterator<Item = (&CacheKey, &CacheEntry)> + '_ {
        self.by_group
            .get(&group)
            .into_iter()
            .flatten()
            .filter_map(move |key| self.entries.get_key_value(key))
    }

    /// Whether any cached session currently uses `group`.  O(1).
    pub fn group_in_use(&self, group: Ipv4Addr) -> bool {
        self.by_group.contains_key(&group)
    }

    /// Project the cache onto an allocator view: `(address index, TTL)`
    /// for every cached session whose group lies in `space`, sorted by
    /// `(address, TTL)`.  Walks the sorted `(group, ttl)` multiset, so
    /// the cost is O(result), not O(cache) + sort.  Multiplicity is
    /// preserved (two clashing sessions on one group project twice),
    /// matching the per-entry projection the allocators were built
    /// against.
    // lint:allow(hot-alloc): returns the projected per-session view the allocators consume
    // lint:allow(hot-path-scan): projecting the cache onto the allocator view is O(result) by contract — the walk IS the output
    pub fn visible_sessions(&self, space: &AddrSpace) -> Vec<VisibleSession> {
        let mut v = Vec::new();
        for (&(group, ttl), &count) in &self.visible {
            if let Some(addr) = space.index_of(group) {
                for _ in 0..count {
                    v.push(VisibleSession::new(addr, ttl));
                }
            }
        }
        // `visible` iterates in (group IP, ttl) order and the space is a
        // contiguous range, so `v` is already (addr, ttl)-sorted.
        v
    }

    /// Iterate all entries (unordered).
    // lint:allow(hot-path-scan): returns a lazy iterator; the accessor itself performs no scan — the cost belongs to callers that drain it
    pub fn iter(&self) -> impl Iterator<Item = (&CacheKey, &CacheEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::{Media, Origin};

    fn desc(
        origin_ip: [u8; 4],
        sid: u64,
        version: u64,
        group: [u8; 4],
        ttl: u8,
    ) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: "-".into(),
                session_id: sid,
                version,
                address: Ipv4Addr::from(origin_ip),
            },
            name: format!("s{sid}"),
            info: None,
            group: Ipv4Addr::from(group),
            ttl,
            start: 0,
            stop: 0,
            media: vec![Media {
                kind: "audio".into(),
                port: 5004,
                proto: "RTP/AVP".into(),
                format: 0,
            }],
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn new_refresh_modify_stale() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        assert_eq!(c.observe_announce(t(0), d1.clone()), CacheUpdate::New);
        assert_eq!(
            c.observe_announce(t(10), d1.clone()),
            CacheUpdate::Refreshed
        );
        let mut d2 = d1.clone();
        d2.origin.version = 2;
        d2.group = Ipv4Addr::new(224, 2, 128, 9);
        assert_eq!(c.observe_announce(t(20), d2), CacheUpdate::Modified);
        // The old version is now stale.
        assert_eq!(c.observe_announce(t(30), d1), CacheUpdate::Stale);
        assert_eq!(c.len(), 1);
        let e = c.get(Ipv4Addr::new(10, 0, 0, 1), 7).unwrap();
        assert_eq!(e.desc.group, Ipv4Addr::new(224, 2, 128, 9));
        assert_eq!(e.announcements, 3); // stale one not counted
                                        // The group index tracked the move.
        assert!(!c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
        assert!(c.group_in_use(Ipv4Addr::new(224, 2, 128, 9)));
    }

    #[test]
    fn same_version_content_change_counts_as_modified() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        let d1 = desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63);
        c.observe_announce(t(0), d1.clone());
        let mut d2 = d1;
        d2.ttl = 127;
        assert_eq!(c.observe_announce(t(1), d2), CacheUpdate::Modified);
    }

    #[test]
    fn delete_removes() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 5], 63));
        assert!(c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(!c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 7));
        assert!(c.is_empty());
        assert!(!c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
        assert_eq!(c.earliest_last_heard(), None, "expiry slot compacted");
    }

    #[test]
    fn expiry() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(50), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        let purged = c.purge_expired(t(120));
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].session_id, 1);
        assert_eq!(c.len(), 1);
        // Refreshing resets the clock.
        c.observe_announce(t(140), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert!(c.purge_expired(t(240)).is_empty());
        assert_eq!(c.earliest_last_heard(), Some(t(140)));
    }

    #[test]
    fn purge_returns_sorted_keys() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(10));
        // Insert out of key order with distinct refresh times.
        c.observe_announce(t(2), desc([10, 0, 0, 9], 3, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 2], 63));
        c.observe_announce(t(1), desc([10, 0, 0, 5], 1, 1, [224, 2, 128, 3], 63));
        let purged: Vec<CacheKey> = c.purge_expired(t(100)).to_vec();
        assert_eq!(purged.len(), 3);
        let mut sorted = purged.clone();
        sorted.sort();
        assert_eq!(purged, sorted);
        assert!(c.is_empty());
    }

    #[test]
    fn purge_stale_sheds_ahead_of_timeout() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(1000), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        // Hard timeout not reached, but entry 1 is past the 20-minute
        // staleness horizon.
        let purged: Vec<CacheKey> = c
            .purge_stale(t(1300), SimDuration::from_secs(1200))
            .to_vec();
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].session_id, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn users_of_group() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 9, 1, [224, 2, 128, 5], 15));
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [224, 2, 128, 6], 63));
        let users: Vec<_> = c.users_of(Ipv4Addr::new(224, 2, 128, 5)).collect();
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0.origin, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c.users_of(Ipv4Addr::new(224, 9, 9, 9)).count(), 0);
    }

    #[test]
    fn visible_sessions_projection() {
        let space = AddrSpace::sdr_dynamic(); // base 224.2.128.0
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 2, 1, [224, 2, 129, 0], 127));
        // Outside the space: ignored in the view.
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [239, 1, 1, 1], 15));
        let view = c.visible_sessions(&space);
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].addr.0, 5);
        assert_eq!(view[0].ttl, 63);
        assert_eq!(view[1].addr.0, 256);
        assert_eq!(view[1].ttl, 127);
    }

    #[test]
    fn visible_sessions_preserve_multiplicity_and_order() {
        let space = AddrSpace::sdr_dynamic();
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        // Two different origins clash on one group with the same TTL —
        // the projection must still list both (the allocators weigh
        // occupancy per session, not per group).
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 5], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 3], 3, 1, [224, 2, 128, 4], 15));
        let view = c.visible_sessions(&space);
        assert_eq!(view.len(), 3);
        assert_eq!((view[0].addr.0, view[0].ttl), (4, 15));
        assert_eq!((view[1].addr.0, view[1].ttl), (5, 63));
        assert_eq!((view[2].addr.0, view[2].ttl), (5, 63));
        // Deleting one of the clashing pair leaves the other visible.
        c.observe_delete(Ipv4Addr::new(10, 0, 0, 1), 1);
        assert_eq!(c.visible_sessions(&space).len(), 2);
        assert!(c.group_in_use(Ipv4Addr::new(224, 2, 128, 5)));
    }

    #[test]
    fn distinct_origins_distinct_entries() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(3600));
        // Same session id from two hosts: two sessions.
        c.observe_announce(t(0), desc([10, 0, 0, 1], 7, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(0), desc([10, 0, 0, 2], 7, 1, [224, 2, 128, 2], 63));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn earliest_last_heard_tracks_refreshes() {
        let mut c = AnnouncementCache::new(SimDuration::from_secs(100));
        assert_eq!(c.earliest_last_heard(), None);
        c.observe_announce(t(0), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        c.observe_announce(t(5), desc([10, 0, 0, 2], 2, 1, [224, 2, 128, 2], 63));
        assert_eq!(c.earliest_last_heard(), Some(t(0)));
        // Refreshing the oldest entry moves the horizon to the next one.
        c.observe_announce(t(50), desc([10, 0, 0, 1], 1, 1, [224, 2, 128, 1], 63));
        assert_eq!(c.earliest_last_heard(), Some(t(5)));
        c.purge_expired(t(200));
        assert_eq!(c.earliest_last_heard(), None);
    }

    #[test]
    fn heap_stays_compact_under_refresh_churn() {
        // Refreshing an entry must not grow the heap: slots are only
        // re-filed when they surface, so the heap stays O(entries).
        let mut c = AnnouncementCache::new(SimDuration::from_secs(1000));
        for k in 0..50u64 {
            c.observe_announce(t(0), desc([10, 0, 0, 1], k, 1, [224, 2, 128, k as u8], 63));
        }
        for round in 1..100u64 {
            for k in 0..50u64 {
                c.observe_announce(
                    t(round),
                    desc([10, 0, 0, 1], k, 1, [224, 2, 128, k as u8], 63),
                );
            }
        }
        assert_eq!(c.len(), 50);
        assert_eq!(c.expiry.len(), 50, "refresh churn must not grow the heap");
    }
}
