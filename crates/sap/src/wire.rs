//! SAP wire format (Session Announcement Protocol, RFC 2974 v1).
//!
//! The paper's reference \[6\] is the SAP Internet Draft that became
//! RFC 2974; sdr's announcements use exactly this layout:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! | V=1 |A|R|T|E|C|   auth len    |         msg id hash           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                originating source (IPv4, A=0)                 |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |          optional authentication data (auth len words)        |
//! |        optional payload type ("application/sdp" NUL)          |
//! |                          payload                              |
//! ```
//!
//! We implement announcements and deletions over IPv4 sources with
//! optional authentication data, and reject the encrypted/compressed
//! bits (sdr never negotiated them in the open Mbone).

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The SAP version this implementation speaks.
pub const SAP_VERSION: u8 = 1;

/// The well-known SAP multicast group for global-scope announcements.
pub const SAP_GROUP: Ipv4Addr = Ipv4Addr::new(224, 2, 127, 254);

/// The well-known SAP port.
pub const SAP_PORT: u16 = 9875;

/// The conventional payload type for session descriptions.
pub const PAYLOAD_TYPE_SDP: &str = "application/sdp";

/// Message type: announce a session or delete a previous announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// Session announcement (T = 0).
    Announce,
    /// Session deletion (T = 1).
    Delete,
}

/// A decoded SAP packet viewed in place: every variable-length field
/// borrows from the datagram buffer it was decoded from.  This is the
/// canonical decoder — [`SapPacket::decode`] wraps it and materializes
/// owned copies.  The receive path holds a `SapFrame` only for the
/// duration of one datagram; ownership is taken at cache-admit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SapFrame<'a> {
    /// Announce or delete.
    pub message_type: MessageType,
    /// 16-bit hash identifying this version of the announcement.
    pub msg_id_hash: u16,
    /// Originating source address.
    pub source: Ipv4Addr,
    /// Authentication data, borrowed from the packet buffer (wire
    /// padding included).
    pub auth: &'a [u8],
    /// The payload text, borrowed from the packet buffer.
    pub payload: &'a str,
}

impl<'a> SapFrame<'a> {
    /// Decode a datagram in place.  No bytes are copied: `auth` and
    /// `payload` point into `data`.
    ///
    /// The payload-type marker is optional on the wire (early sdr
    /// omitted it); per the RFC's guidance we treat a payload starting
    /// with `v=` as bare SDP.
    pub fn decode(mut data: &'a [u8]) -> Result<SapFrame<'a>, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated);
        }
        let b0 = data.get_u8();
        let version = (b0 >> 5) & 0x07;
        if version != SAP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        if b0 & 0x10 != 0 {
            return Err(WireError::UnsupportedAddressType); // A bit: IPv6
        }
        if b0 & 0x03 != 0 {
            return Err(WireError::UnsupportedEncoding); // E or C bit
        }
        let message_type = if b0 & 0x04 != 0 {
            MessageType::Delete
        } else {
            MessageType::Announce
        };
        let auth_words = data.get_u8() as usize;
        let msg_id_hash = data.get_u16();
        let mut src = [0u8; 4];
        data.copy_to_slice(&mut src);
        let source = Ipv4Addr::from(src);
        let auth_len = auth_words * 4;
        let auth = data.get(..auth_len).ok_or(WireError::BadAuthLength)?;
        data.advance(auth_len);

        // Optional payload type: text up to a NUL, unless the payload
        // starts directly with SDP.
        let rest = data;
        let payload_bytes = if rest.starts_with(b"v=") {
            rest
        } else if let Some(nul) = rest.iter().position(|&b| b == 0) {
            rest.get(nul + 1..).unwrap_or(&[])
        } else {
            rest
        };
        let payload = std::str::from_utf8(payload_bytes).map_err(|_| WireError::BadPayload)?;
        Ok(SapFrame {
            message_type,
            msg_id_hash,
            source,
            auth,
            payload,
        })
    }

    /// Materialize an owned packet from this view — the one place the
    /// auth and payload bytes are copied.
    // lint:allow(hot-alloc): this is the explicit ownership boundary; callers copy only when admitting
    pub fn to_packet(&self) -> SapPacket {
        SapPacket {
            message_type: self.message_type,
            msg_id_hash: self.msg_id_hash,
            source: self.source,
            auth: self.auth.to_vec(),
            payload: self.payload.to_string(),
        }
    }
}

/// A decoded SAP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SapPacket {
    /// Announce or delete.
    pub message_type: MessageType,
    /// 16-bit hash identifying this version of the announcement; a
    /// changed hash from the same source means a modified session.
    pub msg_id_hash: u16,
    /// Originating source address (identifies the announcer, *not* the
    /// session's multicast group).
    pub source: Ipv4Addr,
    /// Optional authentication data (opaque; length must be a multiple
    /// of four bytes on the wire).
    pub auth: Vec<u8>,
    /// The payload — SDP text for our purposes.
    pub payload: String,
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a minimal header.
    Truncated,
    /// Version field is not 1.
    BadVersion(u8),
    /// IPv6 sources are not supported by this implementation.
    UnsupportedAddressType,
    /// Encrypted (E) or compressed (C) packets are not supported.
    UnsupportedEncoding,
    /// Authentication data longer than the packet.
    BadAuthLength,
    /// Payload is not valid UTF-8.
    BadPayload,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported SAP version {v}"),
            WireError::UnsupportedAddressType => write!(f, "IPv6 origin not supported"),
            WireError::UnsupportedEncoding => write!(f, "encrypted/compressed SAP not supported"),
            WireError::BadAuthLength => write!(f, "authentication data overruns packet"),
            WireError::BadPayload => write!(f, "payload is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl SapPacket {
    /// Build an announcement packet.
    pub fn announce(source: Ipv4Addr, msg_id_hash: u16, payload: String) -> SapPacket {
        SapPacket {
            message_type: MessageType::Announce,
            msg_id_hash,
            source,
            auth: Vec::new(), // lint:allow(hot-alloc): capacity-zero placeholder for the optional auth block
            payload,
        }
    }

    /// Build a deletion packet for a previous announcement.
    pub fn delete(source: Ipv4Addr, msg_id_hash: u16, payload: String) -> SapPacket {
        SapPacket {
            message_type: MessageType::Delete,
            msg_id_hash,
            source,
            auth: Vec::new(),
            payload,
        }
    }

    /// Encode to wire bytes, including the `application/sdp` payload
    /// type marker.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            8 + self.auth.len() + PAYLOAD_TYPE_SDP.len() + 1 + self.payload.len(),
        );
        // Auth data must be padded to a multiple of 4 (length field is
        // in 32-bit words, and only 8 bits wide): clamp to what the
        // field can express rather than wrapping the length byte.
        const MAX_AUTH_BYTES: usize = 255 * 4;
        let auth = self.auth.get(..MAX_AUTH_BYTES).unwrap_or(&self.auth);
        let auth_words = auth.len().div_ceil(4);
        let mut b0: u8 = (SAP_VERSION & 0x07) << 5;
        // A (address type) = 0 → IPv4.  R = 0.
        if self.message_type == MessageType::Delete {
            b0 |= 0x04; // T bit
        }
        // E = 0, C = 0.
        buf.put_u8(b0);
        buf.put_u8(u8::try_from(auth_words).unwrap_or(u8::MAX));
        buf.put_u16(self.msg_id_hash);
        buf.put_slice(&self.source.octets());
        buf.put_slice(auth);
        for _ in auth.len()..auth_words * 4 {
            buf.put_u8(0);
        }
        buf.put_slice(PAYLOAD_TYPE_SDP.as_bytes());
        buf.put_u8(0);
        buf.put_slice(self.payload.as_bytes());
        buf.freeze()
    }

    /// Decode from wire bytes into an owned packet.  Thin wrapper over
    /// the zero-copy [`SapFrame::decode`]; hot receive paths should
    /// hold the frame instead and defer the copy to admit time.
    pub fn decode(data: &[u8]) -> Result<SapPacket, WireError> {
        SapFrame::decode(data).map(|f| f.to_packet())
    }

    /// Borrow this packet as a frame view (the reverse of
    /// [`SapFrame::to_packet`]) so owned and borrowed receive paths
    /// share one downstream signature.
    pub fn as_frame(&self) -> SapFrame<'_> {
        SapFrame {
            message_type: self.message_type,
            msg_id_hash: self.msg_id_hash,
            source: self.source,
            auth: &self.auth,
            payload: &self.payload,
        }
    }
}

/// The 16-bit message-id hash for a payload: FNV-1a folded to 16 bits.
///
/// SAP only requires the hash to change whenever the session
/// description changes; any uniform 16-bit digest suffices.
pub fn msg_id_hash(payload: &str) -> u16 {
    let mut h: u32 = 0x811c9dc5;
    for &b in payload.as_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x01000193);
    }
    // Both operands are masked below 2^16, so the fold always fits.
    u16::try_from((h >> 16) ^ (h & 0xffff)).unwrap_or(u16::MAX)
}

/// 64-bit FNV-1a over raw bytes — the trace fingerprint used by the
/// differential and determinism regression tests.  Feed it the exact
/// wire bytes (plus any framing the test adds): two traces fingerprint
/// equal iff they are byte-identical.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Upper bound on the bucket list a reconciliation payload may carry.
/// The protocol uses 16 buckets; the parser tolerates more (a future
/// widening) but refuses unbounded lists from the wire.
pub const MAX_RECON_BUCKETS: usize = 64;

/// An anti-entropy summary of a directory's announcement cache: the
/// XOR-accumulated per-bucket hashes plus enough context (seed, entry
/// count, rebuilding flag) for a peer to decide whether and how to
/// respond.  Rides as the payload of an ordinary SAP announce packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDigest {
    /// The digest seed the sender hashed under; digests computed under
    /// different seeds are incomparable and must be ignored.
    pub seed: u64,
    /// Number of entries in the sender's cache.
    pub entries: u64,
    /// Whether the sender is rebuilding after a restart — a request
    /// for peers to answer with their own digests promptly.
    pub rebuilding: bool,
    /// The per-bucket accumulators.
    pub buckets: Vec<u64>,
}

/// A request for targeted re-announcement of the sessions hashed into
/// the named digest buckets — the "diff → fetch" half of
/// reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileRequest {
    /// Bucket indices whose contents the sender wants re-announced.
    pub buckets: Vec<u16>,
}

/// A reconciliation control message, carried as a SAP announce payload
/// that begins with the `x-recon:` marker (so it can never be mistaken
/// for SDP, which begins `v=`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconMessage {
    /// A cache digest broadcast.
    Digest(CacheDigest),
    /// A targeted re-announcement request.
    Request(ReconcileRequest),
}

impl ReconMessage {
    /// The payload marker distinguishing reconciliation messages from
    /// session descriptions.
    pub const MARKER: &'static str = "x-recon:";

    /// Whether a SAP payload is a reconciliation message (cheap check
    /// before attempting a full [`Self::parse`]).
    pub fn is_recon(payload: &str) -> bool {
        payload.starts_with(Self::MARKER)
    }

    /// Render to a SAP announce payload.
    // lint:allow(hot-alloc): encode mints the owned payload string; digest and request sends are rate-limited by min_digest_gap/min_request_gap
    pub fn encode_payload(&self) -> String {
        match self {
            ReconMessage::Digest(d) => {
                let mut s = format!(
                    "x-recon: digest\nseed: {:016x}\nentries: {}\nrebuilding: {}\nbuckets:",
                    d.seed,
                    d.entries,
                    u8::from(d.rebuilding),
                );
                for b in &d.buckets {
                    s.push_str(&format!(" {b:016x}"));
                }
                s.push('\n');
                s
            }
            ReconMessage::Request(r) => {
                let mut s = String::from("x-recon: request\nbuckets:");
                for b in &r.buckets {
                    s.push_str(&format!(" {b}"));
                }
                s.push('\n');
                s
            }
        }
    }

    /// Parse a SAP payload as a reconciliation message.  Total: any
    /// malformed, truncated or oversized input yields `None`, never a
    /// panic — this sits on the same attacker-controlled path as
    /// [`SapPacket::decode`].
    pub fn parse(payload: &str) -> Option<ReconMessage> {
        let mut lines = payload.lines().map(str::trim);
        let kind = lines.next()?.strip_prefix(Self::MARKER)?.trim();
        let mut seed = None;
        let mut entries = None;
        let mut rebuilding = false;
        let mut buckets_raw = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once(':')?;
            let v = v.trim();
            match k.trim() {
                "seed" => seed = Some(u64::from_str_radix(v, 16).ok()?),
                "entries" => entries = Some(v.parse::<u64>().ok()?),
                "rebuilding" => {
                    rebuilding = match v {
                        "0" => false,
                        "1" => true,
                        _ => return None,
                    }
                }
                "buckets" => buckets_raw = Some(v),
                _ => return None,
            }
        }
        match kind {
            "digest" => {
                let mut buckets = Vec::new(); // lint:allow(hot-alloc): parse returns an owned message; capped at MAX_RECON_BUCKETS entries
                for tok in buckets_raw?.split_ascii_whitespace() {
                    if buckets.len() >= MAX_RECON_BUCKETS {
                        return None;
                    }
                    buckets.push(u64::from_str_radix(tok, 16).ok()?);
                }
                Some(ReconMessage::Digest(CacheDigest {
                    seed: seed?,
                    entries: entries?,
                    rebuilding,
                    buckets,
                }))
            }
            "request" => {
                let mut buckets = Vec::new(); // lint:allow(hot-alloc): parse returns an owned message; capped at MAX_RECON_BUCKETS entries
                for tok in buckets_raw?.split_ascii_whitespace() {
                    if buckets.len() >= MAX_RECON_BUCKETS {
                        return None;
                    }
                    buckets.push(tok.parse::<u16>().ok()?);
                }
                Some(ReconMessage::Request(ReconcileRequest { buckets }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src() -> Ipv4Addr {
        Ipv4Addr::new(128, 16, 64, 32)
    }

    #[test]
    fn announce_roundtrip() {
        let p = SapPacket::announce(src(), 0xBEEF, "v=0\r\ns=test\r\n".into());
        let decoded = SapPacket::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn delete_roundtrip() {
        let p = SapPacket::delete(src(), 0x1234, "v=0\r\ns=bye\r\n".into());
        let decoded = SapPacket::decode(&p.encode()).unwrap();
        assert_eq!(decoded.message_type, MessageType::Delete);
        assert_eq!(decoded, p);
    }

    #[test]
    fn auth_data_roundtrip_with_padding() {
        let mut p = SapPacket::announce(src(), 1, "v=0\r\n".into());
        p.auth = vec![1, 2, 3, 4, 5]; // padded to 8 on the wire
        let decoded = SapPacket::decode(&p.encode()).unwrap();
        assert_eq!(&decoded.auth[..5], &[1, 2, 3, 4, 5]);
        assert_eq!(decoded.auth.len(), 8);
        assert_eq!(decoded.payload, p.payload);
    }

    #[test]
    fn bare_sdp_payload_without_type_marker() {
        // Hand-build a packet without the payload type string.
        let mut raw = vec![0x20, 0, 0xAB, 0xCD, 10, 0, 0, 1];
        raw.extend_from_slice(b"v=0\r\ns=x\r\n");
        let p = SapPacket::decode(&raw).unwrap();
        assert_eq!(p.msg_id_hash, 0xABCD);
        assert_eq!(p.source, Ipv4Addr::new(10, 0, 0, 1));
        assert!(p.payload.starts_with("v=0"));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(SapPacket::decode(&[0x20, 0, 0]), Err(WireError::Truncated));
        assert_eq!(SapPacket::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut raw = SapPacket::announce(src(), 1, "v=0\r\n".into())
            .encode()
            .to_vec();
        raw[0] = (2 << 5) | (raw[0] & 0x1f);
        assert_eq!(SapPacket::decode(&raw), Err(WireError::BadVersion(2)));
    }

    #[test]
    fn ipv6_flag_rejected() {
        let mut raw = SapPacket::announce(src(), 1, "v=0\r\n".into())
            .encode()
            .to_vec();
        raw[0] |= 0x10;
        assert_eq!(
            SapPacket::decode(&raw),
            Err(WireError::UnsupportedAddressType)
        );
    }

    #[test]
    fn encrypted_or_compressed_rejected() {
        for bit in [0x01u8, 0x02] {
            let mut raw = SapPacket::announce(src(), 1, "v=0\r\n".into())
                .encode()
                .to_vec();
            raw[0] |= bit;
            assert_eq!(SapPacket::decode(&raw), Err(WireError::UnsupportedEncoding));
        }
    }

    #[test]
    fn overlong_auth_rejected() {
        let mut raw = SapPacket::announce(src(), 1, "v=0\r\n".into())
            .encode()
            .to_vec();
        raw[1] = 200; // 800 bytes of auth data that aren't there
        assert_eq!(SapPacket::decode(&raw), Err(WireError::BadAuthLength));
    }

    #[test]
    fn hash_changes_with_payload() {
        let a = msg_id_hash("v=0\r\ns=a\r\n");
        let b = msg_id_hash("v=0\r\ns=b\r\n");
        assert_ne!(a, b);
        assert_eq!(a, msg_id_hash("v=0\r\ns=a\r\n"));
    }

    #[test]
    fn hash_spreads() {
        // Hashes of many distinct payloads should rarely collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(msg_id_hash(&format!("v=0\r\ns=session-{i}\r\n")));
        }
        assert!(seen.len() > 950, "only {} distinct hashes", seen.len());
    }

    #[test]
    fn well_known_constants() {
        assert!(SAP_GROUP.is_multicast());
        assert_eq!(SAP_PORT, 9875);
    }

    #[test]
    fn recon_digest_roundtrip() {
        let msg = ReconMessage::Digest(CacheDigest {
            seed: 0x5d1c_4a11_0c8d_1697,
            entries: 42,
            rebuilding: true,
            buckets: (0..16).map(|i| i * 0x1111_1111_1111).collect(),
        });
        let payload = msg.encode_payload();
        assert!(ReconMessage::is_recon(&payload));
        assert_eq!(ReconMessage::parse(&payload), Some(msg));
        // The payload survives SAP framing untouched (no NUL, no `v=`).
        let pkt = SapPacket::announce(src(), msg_id_hash(&payload), payload.clone());
        let decoded = SapPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn recon_request_roundtrip() {
        let msg = ReconMessage::Request(ReconcileRequest {
            buckets: vec![0, 3, 7, 15],
        });
        assert_eq!(ReconMessage::parse(&msg.encode_payload()), Some(msg));
    }

    #[test]
    fn recon_parse_rejects_malformed() {
        for bad in [
            "",
            "v=0\r\ns=x\r\n",
            "x-recon: digest",                                   // missing fields
            "x-recon: digest\nseed: zz\nentries: 1\nbuckets: 0", // bad hex
            "x-recon: digest\nseed: 1\nentries: -1\nbuckets: 0", // bad count
            "x-recon: digest\nseed: 1\nentries: 1\nrebuilding: 7\nbuckets: 0",
            "x-recon: request",                    // missing buckets
            "x-recon: request\nbuckets: 99999999", // not u16
            "x-recon: fetch\nbuckets: 1",          // unknown kind
            "x-recon: digest\nseed: 1\nentries: 1\nbogus: 1\nbuckets: 0",
        ] {
            assert_eq!(ReconMessage::parse(bad), None, "accepted {bad:?}");
        }
        // Oversized bucket lists are refused, not truncated.
        let huge = format!(
            "x-recon: request\nbuckets:{}",
            " 1".repeat(MAX_RECON_BUCKETS + 1)
        );
        assert_eq!(ReconMessage::parse(&huge), None);
    }

    #[test]
    fn zero_copy_frame_borrows_the_buffer() {
        let mut p = SapPacket::announce(src(), 0xBEEF, "v=0\r\ns=test\r\n".into());
        p.auth = vec![9, 9, 9, 9];
        let bytes = p.encode();
        let frame = SapFrame::decode(&bytes).unwrap();
        let buf = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(buf.contains(&(frame.payload.as_ptr() as usize)));
        assert!(buf.contains(&(frame.auth.as_ptr() as usize)));
        assert_eq!(frame.to_packet(), p);
    }

    #[test]
    fn frame_and_packet_decoders_agree() {
        let p = SapPacket::delete(src(), 0x7777, "v=0\r\ns=gone\r\n".into());
        let bytes = p.encode();
        let frame = SapFrame::decode(&bytes).unwrap();
        let owned = SapPacket::decode(&bytes).unwrap();
        assert_eq!(frame.to_packet(), owned);
        assert_eq!(owned.as_frame(), frame);
        // Errors agree too.
        assert_eq!(
            SapFrame::decode(&bytes[..3]).unwrap_err(),
            SapPacket::decode(&bytes[..3]).unwrap_err()
        );
    }

    #[test]
    fn recon_marker_never_collides_with_sdp() {
        assert!(!ReconMessage::is_recon("v=0\r\ns=x\r\n"));
        assert_eq!(ReconMessage::parse("v=0\r\ns=x\r\n"), None);
    }
}

/// Fuzz-style robustness properties: the decoder is the first thing an
/// attacker-controlled datagram touches, so it must never panic — not
/// on arbitrary bytes, not on truncations of valid packets, not on
/// single bit-flips in flight.  Valid packets must survive a full
/// encode/decode round trip.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A valid packet built from generator inputs (payload avoids NUL,
    /// which the wire format uses as the payload-type terminator).
    fn arb_packet() -> impl Strategy<Value = SapPacket> {
        (
            any::<bool>(),
            any::<u16>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            "[ -~]{0,64}",
        )
            .prop_map(|(delete, hash, src, auth, payload)| {
                let source = Ipv4Addr::from(src);
                let mut pkt = if delete {
                    SapPacket::delete(source, hash, payload)
                } else {
                    SapPacket::announce(source, hash, payload)
                };
                pkt.auth = auth;
                pkt
            })
    }

    /// A valid reconciliation message from generator inputs.
    fn arb_recon() -> impl Strategy<Value = ReconMessage> {
        (
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            proptest::collection::vec(any::<u64>(), 0..=MAX_RECON_BUCKETS),
        )
            .prop_map(|(request, seed, entries, rebuilding, vals)| {
                if request {
                    ReconMessage::Request(ReconcileRequest {
                        buckets: vals.iter().map(|&v| v as u16).collect(),
                    })
                } else {
                    ReconMessage::Digest(CacheDigest {
                        seed,
                        entries,
                        rebuilding,
                        buckets: vals,
                    })
                }
            })
    }

    proptest! {
        #[test]
        fn decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let _ = SapPacket::decode(&bytes);
        }

        #[test]
        fn decode_never_panics_on_truncation(pkt in arb_packet(), cut in any::<u16>()) {
            let full = pkt.encode().to_vec();
            let keep = cut as usize % (full.len() + 1);
            // Every prefix either decodes or errors — never panics.
            let _ = SapPacket::decode(&full[..keep]);
        }

        #[test]
        fn decode_never_panics_on_bit_flip(pkt in arb_packet(), pos in any::<u32>()) {
            let mut bytes = pkt.encode().to_vec();
            let bit = pos as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            let _ = SapPacket::decode(&bytes);
        }

        #[test]
        fn recon_parse_never_panics_on_arbitrary_text(payload in "\\PC{0,256}") {
            let _ = ReconMessage::parse(&payload);
        }

        #[test]
        fn recon_parse_never_panics_on_truncation(msg in arb_recon(), cut in any::<u16>()) {
            let payload = msg.encode_payload();
            let keep = cut as usize % (payload.len() + 1);
            // Truncate on a char boundary (payloads are ASCII anyway).
            let prefix: String = payload.chars().take(keep).collect();
            let _ = ReconMessage::parse(&prefix);
        }

        #[test]
        fn recon_survives_sap_bit_flip_without_panic(msg in arb_recon(), pos in any::<u32>()) {
            // A recon payload inside a SAP packet, flipped in flight:
            // the full receive path (decode, then parse) must not panic.
            let payload = msg.encode_payload();
            let pkt = SapPacket::announce(Ipv4Addr::new(10, 0, 0, 1), msg_id_hash(&payload), payload);
            let mut bytes = pkt.encode().to_vec();
            let bit = pos as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            if let Ok(decoded) = SapPacket::decode(&bytes) {
                let _ = ReconMessage::parse(&decoded.payload);
            }
        }

        #[test]
        fn recon_messages_roundtrip(msg in arb_recon()) {
            prop_assert_eq!(ReconMessage::parse(&msg.encode_payload()), Some(msg));
        }

        #[test]
        fn valid_packets_roundtrip(pkt in arb_packet()) {
            let decoded = SapPacket::decode(&pkt.encode());
            // Auth padding may grow to a word boundary; all other
            // fields must survive unchanged.
            let decoded = decoded.expect("own encoding must decode");
            prop_assert_eq!(decoded.message_type, pkt.message_type);
            prop_assert_eq!(decoded.msg_id_hash, pkt.msg_id_hash);
            prop_assert_eq!(decoded.source, pkt.source);
            prop_assert_eq!(&decoded.auth[..pkt.auth.len()], &pkt.auth[..]);
            prop_assert_eq!(decoded.payload, pkt.payload);
        }
    }
}
