//! SDP-lite session descriptions.
//!
//! SAP payloads are SDP documents ("a session is minimally defined by
//! the set of media streams it uses (their format and transport ports),
//! by the multicast addresses and scope of those streams").  We
//! implement the subset sdr used: version, origin, name, optional info,
//! connection (multicast address + TTL), timing and media lines.
//!
//! The grammar follows RFC 2327's `<type>=<value>` line structure with
//! strict line ordering (v, o, s, \[i\], c, t, m*), which is all a session
//! directory needs and keeps parsing unambiguous.
//!
//! ## Zero-copy parsing
//!
//! The canonical parser is [`DescRef::parse`]: every textual field it
//! returns **borrows** the packet buffer it was handed — no string is
//! copied at parse time.  The receive path runs clash detection,
//! governor gates and cache lookups on the borrowed view's `Copy`
//! fields, and only the cache materialises owned copies (interned, at
//! admit time).  [`SessionDescription::parse`] survives as the
//! eager-owning wrapper for tests and cold paths.

use std::fmt;
use std::net::Ipv4Addr;

/// The `o=` origin line: who created the session and its version stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Origin {
    /// Username of the creator ("-" when unknown).
    pub username: String,
    /// Globally unique session id (sdr used an NTP timestamp).
    pub session_id: u64,
    /// Version of this announcement; bumped on every modification.
    pub version: u64,
    /// Unicast address of the originating host.
    pub address: Ipv4Addr,
}

/// A media stream (`m=` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Media {
    /// Media kind: "audio", "video", "whiteboard", …
    pub kind: String,
    /// Transport port.
    pub port: u16,
    /// Transport protocol ("RTP/AVP").
    pub proto: String,
    /// Format number (RTP payload type).
    pub format: u32,
}

/// An SDP-lite session description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionDescription {
    /// Origin (`o=`).
    pub origin: Origin,
    /// Session name (`s=`).
    pub name: String,
    /// Optional free-text description (`i=`).
    pub info: Option<String>,
    /// Multicast group of the session (`c=`).
    pub group: Ipv4Addr,
    /// Scope TTL of the session (from the `c=` line's `/ttl` suffix).
    pub ttl: u8,
    /// Start time, NTP-style seconds (`t=`), 0 = unbounded.
    pub start: u64,
    /// Stop time (`t=`), 0 = unbounded.
    pub stop: u64,
    /// Media streams (`m=`), at least one for a useful session.
    // lint:bounded: the m= lines of one session description — a session carries a handful of streams, not daemon state
    pub media: Vec<Media>,
}

/// Errors from [`SessionDescription::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdpError {
    /// A required line is missing or out of order.
    MissingLine(&'static str),
    /// A line failed to parse; contains the offending line.
    Malformed(String),
    /// The protocol version is not 0.
    BadVersion,
    /// The connection address is not IPv4 multicast.
    NotMulticast,
}

impl fmt::Display for SdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdpError::MissingLine(l) => write!(f, "missing or misplaced '{l}=' line"),
            SdpError::Malformed(l) => write!(f, "malformed line: {l}"),
            SdpError::BadVersion => write!(f, "unsupported SDP version"),
            SdpError::NotMulticast => write!(f, "connection address is not multicast"),
        }
    }
}

impl std::error::Error for SdpError {}

impl SessionDescription {
    /// Render to SDP text (lines terminated with `\r\n`).
    // lint:allow(hot-alloc): rendering produces the owned SDP text this fn exists to build
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str("v=0\r\n");
        out.push_str(&format!(
            "o={} {} {} IN IP4 {}\r\n",
            escape(&self.origin.username),
            self.origin.session_id,
            self.origin.version,
            self.origin.address
        ));
        out.push_str(&format!("s={}\r\n", escape(&self.name)));
        if let Some(info) = &self.info {
            out.push_str(&format!("i={}\r\n", escape(info)));
        }
        out.push_str(&format!("c=IN IP4 {}/{}\r\n", self.group, self.ttl));
        out.push_str(&format!("t={} {}\r\n", self.start, self.stop));
        for m in &self.media {
            out.push_str(&format!(
                "m={} {} {} {}\r\n",
                escape(&m.kind),
                m.port,
                escape(&m.proto),
                m.format
            ));
        }
        out
    }

    /// Parse SDP text (accepts `\n` or `\r\n` line endings), eagerly
    /// materialising owned strings.  Cold-path wrapper over
    /// [`DescRef::parse`]; the receive path keeps the borrowed view.
    pub fn parse(text: &str) -> Result<SessionDescription, SdpError> {
        DescRef::parse(text).map(|d| d.to_desc())
    }

    /// A borrowed view of this description (the inverse of
    /// [`DescRef::to_desc`]): lets owned descriptions flow through the
    /// borrow-only admit path without copying.
    // lint:allow(hot-alloc): the media Vec of borrowed refs is the view's only allocation, sized by the handful of m= lines
    pub fn as_ref(&self) -> DescRef<'_> {
        DescRef {
            origin: OriginRef {
                username: &self.origin.username,
                session_id: self.origin.session_id,
                version: self.origin.version,
                address: self.origin.address,
            },
            name: &self.name,
            info: self.info.as_deref(),
            group: self.group,
            ttl: self.ttl,
            start: self.start,
            stop: self.stop,
            media: self
                .media
                .iter()
                .map(|m| MediaRef {
                    kind: &m.kind,
                    port: m.port,
                    proto: &m.proto,
                    format: m.format,
                })
                .collect(),
        }
    }
}

/// Borrowed `o=` line: every string field points into the packet
/// buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginRef<'a> {
    /// Username of the creator ("-" when unknown).
    pub username: &'a str,
    /// Globally unique session id.
    pub session_id: u64,
    /// Version of this announcement.
    pub version: u64,
    /// Unicast address of the originating host.
    pub address: Ipv4Addr,
}

/// Borrowed `m=` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaRef<'a> {
    /// Media kind: "audio", "video", …
    pub kind: &'a str,
    /// Transport port.
    pub port: u16,
    /// Transport protocol ("RTP/AVP").
    pub proto: &'a str,
    /// Format number (RTP payload type).
    pub format: u32,
}

/// A zero-copy session description: the borrowed counterpart of
/// [`SessionDescription`], produced by [`DescRef::parse`] directly over
/// the packet buffer.  Owned strings are materialised only where a copy
/// must outlive the packet — at cache-admit time, via the cache's
/// interner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescRef<'a> {
    /// Origin (`o=`), borrowed.
    pub origin: OriginRef<'a>,
    /// Session name (`s=`), borrowed.
    pub name: &'a str,
    /// Optional free-text description (`i=`), borrowed.
    pub info: Option<&'a str>,
    /// Multicast group of the session (`c=`).
    pub group: Ipv4Addr,
    /// Scope TTL of the session.
    pub ttl: u8,
    /// Start time (`t=`), 0 = unbounded.
    pub start: u64,
    /// Stop time (`t=`), 0 = unbounded.
    pub stop: u64,
    /// Media streams (`m=`): borrowed refs, one small Vec per parse.
    // lint:bounded: the m= lines of one packet's description — a handful of streams, freed with the view
    pub media: Vec<MediaRef<'a>>,
}

impl<'a> DescRef<'a> {
    /// Parse SDP text without copying a single field: every `&str` in
    /// the result borrows `text`.  Same grammar, ordering rules and
    /// errors as [`SessionDescription::parse`].
    // lint:allow(hot-alloc): the media Vec of borrowed refs is the only allocation; error-path formatting is off the hot path
    pub fn parse(text: &'a str) -> Result<DescRef<'a>, SdpError> {
        // Only the CR of a CRLF ending is stripped: other trailing
        // whitespace is significant field content.
        let mut lines = text
            .split('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .filter(|l| !l.is_empty())
            .peekable();

        let v = take(&mut lines, 'v').ok_or(SdpError::MissingLine("v"))?;
        if v != "0" {
            return Err(SdpError::BadVersion);
        }

        let o = take(&mut lines, 'o').ok_or(SdpError::MissingLine("o"))?;
        let origin = parse_origin(o)?;

        let name = take(&mut lines, 's').ok_or(SdpError::MissingLine("s"))?;

        let info = take(&mut lines, 'i');

        let c = take(&mut lines, 'c').ok_or(SdpError::MissingLine("c"))?;
        let (group, ttl) = parse_connection(c)?;

        let t = take(&mut lines, 't').ok_or(SdpError::MissingLine("t"))?;
        let (start, stop) = parse_times(t)?;

        let mut media = Vec::new();
        while let Some(m) = take(&mut lines, 'm') {
            media.push(parse_media(m)?);
        }

        if let Some(extra) = lines.next() {
            return Err(SdpError::Malformed(extra.to_string()));
        }

        Ok(DescRef {
            origin,
            name,
            info,
            group,
            ttl,
            start,
            stop,
            media,
        })
    }

    /// Materialise an owned [`SessionDescription`] — the one place the
    /// borrowed view's strings are copied.
    // lint:allow(hot-alloc): materialisation IS the copy; the admit path calls this only for entries the cache keeps
    pub fn to_desc(&self) -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: self.origin.username.to_string(),
                session_id: self.origin.session_id,
                version: self.origin.version,
                address: self.origin.address,
            },
            name: self.name.to_string(),
            info: self.info.map(str::to_string),
            group: self.group,
            ttl: self.ttl,
            start: self.start,
            stop: self.stop,
            media: self
                .media
                .iter()
                .map(|m| Media {
                    kind: m.kind.to_string(),
                    port: m.port,
                    proto: m.proto.to_string(),
                    format: m.format,
                })
                .collect(),
        }
    }
}

/// Strip CR/LF from user-supplied fields so they cannot forge lines.
// lint:allow(hot-alloc): returns the sanitized copy of a caller-owned field
fn escape(s: &str) -> String {
    s.replace(['\r', '\n'], " ")
}

/// If the next line is `<key>=<value>`, consume and return the value,
/// borrowed from the input buffer.
fn take<'a, I>(lines: &mut std::iter::Peekable<I>, key: char) -> Option<&'a str>
where
    I: Iterator<Item = &'a str>,
{
    let line = lines.peek()?;
    let value = line.strip_prefix(key)?.strip_prefix('=')?;
    lines.next();
    Some(value)
}

// The field helpers below destructure each line with iterator/tuple
// matching: no intermediate Vec, no index expressions, total on any
// input.  Error-path `format!` captures the offending line.

// lint:allow(hot-alloc): error-path message formatting only; all fields borrow the input
fn parse_origin(s: &str) -> Result<OriginRef<'_>, SdpError> {
    let err = || SdpError::Malformed(format!("o={s}"));
    let mut f = s.split_whitespace();
    match (
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
    ) {
        (Some(user), Some(sid), Some(ver), Some("IN"), Some("IP4"), Some(addr), None) => {
            Ok(OriginRef {
                username: user,
                session_id: sid.parse().map_err(|_| err())?,
                version: ver.parse().map_err(|_| err())?,
                address: addr.parse().map_err(|_| err())?,
            })
        }
        _ => Err(err()),
    }
}

// lint:allow(hot-alloc): error-path message formatting only
fn parse_connection(s: &str) -> Result<(Ipv4Addr, u8), SdpError> {
    let err = || SdpError::Malformed(format!("c={s}"));
    let mut f = s.split_whitespace();
    let (Some("IN"), Some("IP4"), Some(conn), None) = (f.next(), f.next(), f.next(), f.next())
    else {
        return Err(err());
    };
    let (addr_str, ttl_str) = conn.split_once('/').ok_or_else(err)?;
    let addr: Ipv4Addr = addr_str.parse().map_err(|_| err())?;
    if !addr.is_multicast() {
        return Err(SdpError::NotMulticast);
    }
    let ttl: u8 = ttl_str.parse().map_err(|_| err())?;
    Ok((addr, ttl))
}

// lint:allow(hot-alloc): error-path message formatting only
fn parse_times(s: &str) -> Result<(u64, u64), SdpError> {
    let err = || SdpError::Malformed(format!("t={s}"));
    let mut f = s.split_whitespace();
    let (Some(start), Some(stop), None) = (f.next(), f.next(), f.next()) else {
        return Err(err());
    };
    Ok((
        start.parse().map_err(|_| err())?,
        stop.parse().map_err(|_| err())?,
    ))
}

// lint:allow(hot-alloc): error-path message formatting only; all fields borrow the input
fn parse_media(s: &str) -> Result<MediaRef<'_>, SdpError> {
    let err = || SdpError::Malformed(format!("m={s}"));
    let mut f = s.split_whitespace();
    let (Some(kind), Some(port), Some(proto), Some(format), None) =
        (f.next(), f.next(), f.next(), f.next(), f.next())
    else {
        return Err(err());
    };
    Ok(MediaRef {
        kind,
        port: port.parse().map_err(|_| err())?,
        proto,
        format: format.parse().map_err(|_| err())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionDescription {
        SessionDescription {
            origin: Origin {
                username: "mjh".into(),
                session_id: 3_086_943_492,
                version: 1,
                address: Ipv4Addr::new(128, 9, 160, 45),
            },
            name: "ISI seminar".into(),
            info: Some("Weekly systems seminar".into()),
            group: Ipv4Addr::new(224, 2, 130, 7),
            ttl: 127,
            start: 0,
            stop: 0,
            media: vec![
                Media {
                    kind: "audio".into(),
                    port: 49170,
                    proto: "RTP/AVP".into(),
                    format: 0,
                },
                Media {
                    kind: "video".into(),
                    port: 51372,
                    proto: "RTP/AVP".into(),
                    format: 31,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let sd = sample();
        let text = sd.format();
        let parsed = SessionDescription::parse(&text).unwrap();
        assert_eq!(parsed, sd);
    }

    #[test]
    fn roundtrip_without_info() {
        let mut sd = sample();
        sd.info = None;
        let parsed = SessionDescription::parse(&sd.format()).unwrap();
        assert_eq!(parsed, sd);
    }

    #[test]
    fn parse_known_text() {
        let text = "v=0\r\no=- 42 7 IN IP4 10.0.0.1\r\ns=test\r\nc=IN IP4 239.1.2.3/15\r\nt=100 200\r\nm=audio 5004 RTP/AVP 0\r\n";
        let sd = SessionDescription::parse(text).unwrap();
        assert_eq!(sd.origin.session_id, 42);
        assert_eq!(sd.origin.version, 7);
        assert_eq!(sd.ttl, 15);
        assert_eq!(sd.group, Ipv4Addr::new(239, 1, 2, 3));
        assert_eq!(sd.media.len(), 1);
        assert_eq!((sd.start, sd.stop), (100, 200));
    }

    #[test]
    fn accepts_bare_newlines() {
        let text = "v=0\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 224.2.0.1/63\nt=0 0\n";
        let sd = SessionDescription::parse(text).unwrap();
        assert_eq!(sd.ttl, 63);
        assert!(sd.media.is_empty());
    }

    #[test]
    fn rejects_bad_version() {
        let text = "v=1\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 224.2.0.1/63\nt=0 0\n";
        assert_eq!(SessionDescription::parse(text), Err(SdpError::BadVersion));
    }

    #[test]
    fn rejects_missing_lines() {
        assert_eq!(
            SessionDescription::parse("v=0\ns=x\n"),
            Err(SdpError::MissingLine("o"))
        );
        assert_eq!(
            SessionDescription::parse(""),
            Err(SdpError::MissingLine("v"))
        );
    }

    #[test]
    fn rejects_unicast_group() {
        let text = "v=0\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 10.1.2.3/63\nt=0 0\n";
        assert_eq!(SessionDescription::parse(text), Err(SdpError::NotMulticast));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let text = "v=0\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 224.2.0.1/63\nt=0 0\nz=???\n";
        assert!(matches!(
            SessionDescription::parse(text),
            Err(SdpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_malformed_media() {
        let text =
            "v=0\no=- 1 1 IN IP4 10.0.0.1\ns=x\nc=IN IP4 224.2.0.1/63\nt=0 0\nm=audio 5004\n";
        assert!(matches!(
            SessionDescription::parse(text),
            Err(SdpError::Malformed(_))
        ));
    }

    #[test]
    fn newlines_in_fields_cannot_forge_lines() {
        let mut sd = sample();
        sd.name = "evil\r\nc=IN IP4 224.9.9.9/255".into();
        let parsed = SessionDescription::parse(&sd.format()).unwrap();
        // The injected text is flattened into the name, not a new line.
        assert_eq!(parsed.group, sd.group);
        assert!(parsed.name.contains("evil"));
    }

    #[test]
    fn version_bump_reflected() {
        let mut sd = sample();
        sd.origin.version += 1;
        let parsed = SessionDescription::parse(&sd.format()).unwrap();
        assert_eq!(parsed.origin.version, 2);
    }

    #[test]
    fn zero_copy_parse_borrows_the_buffer() {
        let text = sample().format();
        let view = DescRef::parse(&text).unwrap();
        // Pointer containment: each borrowed field lies inside `text`.
        let inside = |s: &str| {
            let (lo, hi) = (text.as_ptr() as usize, text.as_ptr() as usize + text.len());
            let p = s.as_ptr() as usize;
            lo <= p && p + s.len() <= hi
        };
        assert!(inside(view.name));
        assert!(inside(view.origin.username));
        assert!(view.info.is_some_and(inside));
        for m in &view.media {
            assert!(inside(m.kind));
            assert!(inside(m.proto));
        }
    }

    #[test]
    fn borrowed_and_owned_parsers_agree() {
        let sd = sample();
        let text = sd.format();
        let view = DescRef::parse(&text).unwrap();
        assert_eq!(view.to_desc(), sd);
        assert_eq!(view, sd.as_ref());
        // Errors agree too.
        for bad in ["", "v=1\n", "v=0\ns=x\n"] {
            assert_eq!(
                DescRef::parse(bad).err(),
                SessionDescription::parse(bad).err()
            );
        }
    }
}
