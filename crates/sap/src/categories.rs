//! Category-partitioned announcement channels (Section 4).
//!
//! The paper's conclusions: one flat announcement channel per scope
//! stops scaling once "distinct user groups emerge" — "we would like to
//! dynamically allocate new announcement addresses for certain
//! categories of announcement, and only announce the existence of the
//! category on the base session directory address … \[this\] would allow
//! receivers to decide the categories for which they receive
//! announcements, and hence the bandwidth used by the session
//! directory."  (Footnote 8 explains why this cannot be combined with
//! address *allocation*; allocation stays on the full-scope view.)
//!
//! Mechanism implemented here:
//!
//! * the **base channel** carries only lightweight *category
//!   announcements* — (category name, the multicast group its session
//!   announcements use);
//! * each category's session announcements go to that category's own
//!   group, which receivers join only if subscribed;
//! * category groups are allocated through the ordinary [`Allocator`]
//!   machinery, so they are themselves clash-managed.
//!
//! [`Allocator`]: sdalloc_core::Allocator

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use sdalloc_core::{AddrSpace, Allocator, View, VisibleSession};
use sdalloc_sim::SimRng;

/// A category announcement carried on the base channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryAnnouncement {
    /// Category name ("misc", "conferences/ietf", …).
    pub name: String,
    /// The multicast group carrying this category's session
    /// announcements.
    pub group: Ipv4Addr,
    /// Scope TTL of the category channel.
    pub ttl: u8,
}

impl CategoryAnnouncement {
    /// Wire encoding: a tiny text record (`category=<name>\ngroup=<ip>/<ttl>`).
    pub fn encode(&self) -> String {
        format!(
            "category={}\ngroup={}/{}\n",
            self.name.replace(['\r', '\n'], " "),
            self.group,
            self.ttl
        )
    }

    /// Parse the wire encoding.
    pub fn decode(text: &str) -> Option<CategoryAnnouncement> {
        let mut name = None;
        let mut group = None;
        let mut ttl = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("category=") {
                name = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("group=") {
                let (g, t) = v.split_once('/')?;
                let g: Ipv4Addr = g.parse().ok()?;
                if !g.is_multicast() {
                    return None;
                }
                group = Some(g);
                ttl = Some(t.parse().ok()?);
            }
        }
        Some(CategoryAnnouncement {
            name: name?,
            group: group?,
            ttl: ttl?,
        })
    }
}

/// Per-directory category state: known categories, local subscriptions,
/// and the groups we would join.
#[derive(Debug, Default)]
pub struct CategoryRegistry {
    /// Known categories by name.
    // lint:allow(unbounded-growth): keyed by category name: re-announcements overwrite in place, and the vocabulary is operator-curated
    known: BTreeMap<String, CategoryAnnouncement>,
    /// Categories this receiver wants.
    subscriptions: BTreeSet<String>,
}

impl CategoryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        CategoryRegistry::default()
    }

    /// Feed a category announcement heard on the base channel.
    // lint:allow(hot-alloc): the registry stores the announcement under its own name key
    pub fn observe(&mut self, ann: CategoryAnnouncement) {
        self.known.insert(ann.name.clone(), ann);
    }

    /// Known category names.
    pub fn known(&self) -> impl Iterator<Item = &str> {
        self.known.keys().map(String::as_str)
    }

    /// Look up a category.
    pub fn get(&self, name: &str) -> Option<&CategoryAnnouncement> {
        self.known.get(name)
    }

    /// Subscribe to a category (by name; it need not be known yet).
    pub fn subscribe(&mut self, name: &str) {
        self.subscriptions.insert(name.to_string());
    }

    /// Unsubscribe.
    pub fn unsubscribe(&mut self, name: &str) {
        self.subscriptions.remove(name);
    }

    /// Whether we are subscribed to `name`.
    pub fn subscribed(&self, name: &str) -> bool {
        self.subscriptions.contains(name)
    }

    /// The multicast groups this receiver should currently be joined to
    /// (known ∩ subscribed), in name order.
    pub fn joined_groups(&self) -> Vec<Ipv4Addr> {
        self.subscriptions
            .iter()
            .filter_map(|n| self.known.get(n))
            .map(|a| a.group)
            .collect()
    }

    /// Allocate a group for a new category through the standard
    /// allocation machinery and register it locally.  The caller
    /// announces the result on the base channel.
    pub fn create_category(
        &mut self,
        name: &str,
        ttl: u8,
        space: &AddrSpace,
        allocator: &dyn Allocator,
        visible: &[VisibleSession],
        rng: &mut SimRng,
    ) -> Option<CategoryAnnouncement> {
        if self.known.contains_key(name) {
            return self.known.get(name).cloned();
        }
        let view = View::new(visible);
        let addr = allocator.allocate(space, ttl, &view, rng)?;
        let ann = CategoryAnnouncement {
            name: name.to_string(),
            group: space.ip(addr),
            ttl,
        };
        self.observe(ann.clone());
        Some(ann)
    }
}

/// Bandwidth accounting for the category split (the paper's motivation:
/// "reduce session announcement bandwidth at the edges of the network").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Bytes/second a subscriber of everything receives (flat model).
    pub flat_bps: f64,
    /// Bytes/second this receiver gets with its subscription set
    /// (base channel + subscribed categories).
    pub subscribed_bps: f64,
}

/// Compute the announcement bandwidth seen by a receiver.
///
/// `sessions_per_category` maps category → (session count, mean
/// announcement bytes); every session re-announces once per `interval`
/// seconds; category announcements themselves are `category_bytes` every
/// `interval` on the base channel.
pub fn bandwidth(
    registry: &CategoryRegistry,
    sessions_per_category: &BTreeMap<String, (usize, usize)>,
    interval_secs: f64,
    category_bytes: usize,
) -> BandwidthReport {
    assert!(interval_secs > 0.0);
    let mut flat = 0.0;
    let mut subscribed = 0.0;
    for (name, &(count, bytes)) in sessions_per_category {
        let bps = (count * bytes) as f64 / interval_secs;
        flat += bps;
        if registry.subscribed(name) {
            subscribed += bps;
        }
    }
    // The base channel (one record per category) is always received.
    let base = (sessions_per_category.len() * category_bytes) as f64 / interval_secs;
    BandwidthReport {
        flat_bps: flat + base,
        subscribed_bps: subscribed + base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_core::InformedRandomAllocator;

    fn ann(name: &str, last_octet: u8) -> CategoryAnnouncement {
        CategoryAnnouncement {
            name: name.into(),
            group: Ipv4Addr::new(224, 2, 140, last_octet),
            ttl: 127,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = ann("conferences/ietf", 7);
        let decoded = CategoryAnnouncement::decode(&a.encode()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(CategoryAnnouncement::decode(""), None);
        assert_eq!(CategoryAnnouncement::decode("category=x\n"), None);
        assert_eq!(
            CategoryAnnouncement::decode("category=x\ngroup=10.0.0.1/15\n"),
            None,
            "unicast group must be rejected"
        );
        assert_eq!(
            CategoryAnnouncement::decode("category=x\ngroup=224.2.2.2\n"),
            None,
            "missing TTL"
        );
    }

    #[test]
    fn newline_in_name_cannot_forge_records() {
        let a = CategoryAnnouncement {
            name: "evil\ngroup=224.9.9.9/255".into(),
            group: Ipv4Addr::new(224, 2, 140, 1),
            ttl: 63,
        };
        let decoded = CategoryAnnouncement::decode(&a.encode()).unwrap();
        assert_eq!(decoded.group, a.group);
        assert_eq!(decoded.ttl, 63);
    }

    #[test]
    fn subscriptions_control_joined_groups() {
        let mut reg = CategoryRegistry::new();
        reg.observe(ann("misc", 1));
        reg.observe(ann("music", 2));
        reg.observe(ann("ietf", 3));
        assert!(reg.joined_groups().is_empty());
        reg.subscribe("music");
        reg.subscribe("ietf");
        assert_eq!(
            reg.joined_groups(),
            vec![Ipv4Addr::new(224, 2, 140, 3), Ipv4Addr::new(224, 2, 140, 2)]
        );
        reg.unsubscribe("music");
        assert_eq!(reg.joined_groups(), vec![Ipv4Addr::new(224, 2, 140, 3)]);
        // Subscribing to an unknown category joins nothing until it is
        // announced on the base channel.
        reg.subscribe("unknown");
        assert_eq!(reg.joined_groups().len(), 1);
        reg.observe(ann("unknown", 9));
        assert_eq!(reg.joined_groups().len(), 2);
    }

    #[test]
    fn create_category_allocates_clash_free_group() {
        let mut reg = CategoryRegistry::new();
        let space = AddrSpace::abstract_space(32);
        let mut rng = SimRng::new(1);
        let in_use = vec![VisibleSession::new(sdalloc_core::Addr(5), 127)];
        let a = reg
            .create_category(
                "misc",
                127,
                &space,
                &InformedRandomAllocator,
                &in_use,
                &mut rng,
            )
            .unwrap();
        assert_ne!(a.group, space.ip(sdalloc_core::Addr(5)));
        // Idempotent: the same name returns the existing group.
        let b = reg
            .create_category(
                "misc",
                127,
                &space,
                &InformedRandomAllocator,
                &in_use,
                &mut rng,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bandwidth_shrinks_with_subscriptions() {
        let mut reg = CategoryRegistry::new();
        reg.observe(ann("misc", 1));
        reg.observe(ann("bulk", 2));
        reg.subscribe("misc");
        let mut sessions = BTreeMap::new();
        sessions.insert("misc".to_string(), (10usize, 400usize));
        sessions.insert("bulk".to_string(), (990usize, 400usize));
        let report = bandwidth(&reg, &sessions, 600.0, 60);
        // Flat: 1000 sessions' announcements; subscribed: 10 plus base.
        assert!(
            report.subscribed_bps < report.flat_bps / 10.0,
            "subscribed {} vs flat {}",
            report.subscribed_bps,
            report.flat_bps
        );
        // Base channel cost is shared by both.
        assert!(report.subscribed_bps > 0.0);
    }

    #[test]
    fn bandwidth_with_everything_subscribed_equals_flat() {
        let mut reg = CategoryRegistry::new();
        reg.observe(ann("a", 1));
        reg.observe(ann("b", 2));
        reg.subscribe("a");
        reg.subscribe("b");
        let mut sessions = BTreeMap::new();
        sessions.insert("a".to_string(), (5usize, 300usize));
        sessions.insert("b".to_string(), (7usize, 300usize));
        let report = bandwidth(&reg, &sessions, 60.0, 50);
        assert!((report.subscribed_bps - report.flat_bps).abs() < 1e-9);
    }
}
