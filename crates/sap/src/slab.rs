//! Generational slab arena and string interner — the storage core
//! beneath the announcement cache.
//!
//! A production-scale scope caches up to a million sessions.  Holding
//! each as a `HashMap<CacheKey, CacheEntry>` entry with owned `String`
//! fields costs a heap allocation per string per session, scatters
//! records across the heap, and re-hashes the 12-byte key on every
//! index hop.  The slab fixes all three:
//!
//! * **Contiguous arena** — records live in a `Vec` of fixed-layout
//!   slots, addressed by a dense [`SessionId`] (a `u32` slot index).
//!   Indices store ids instead of keys, so a probe resolves a record
//!   with one bounds-checked array access, no hashing.
//! * **Generation counters** — every slot carries a generation that is
//!   bumped on removal.  A [`SessionHandle`] pairs an id with the
//!   generation it was minted under; resolving a handle whose
//!   generation no longer matches yields `None`, so a stale handle can
//!   never alias a recycled slot (the classic ABA hazard of dense-id
//!   stores).
//! * **Interned strings** — session names, usernames and media labels
//!   repeat heavily (every sdr session says `audio`/`RTP/AVP`).  The
//!   [`Interner`] maps each distinct string to a [`Sym`] and
//!   reference-counts it, so records hold 4-byte symbols and churn
//!   releases strings instead of leaking them.
//!
//! The slab is deliberately *not* a general-purpose crate: it exposes
//! exactly the operations the cache needs, all panic-free, and its
//! iteration order is never relied upon (deterministic orders come
//! from the cache's sorted indices).

use std::collections::HashMap;
use std::sync::Arc;

/// Dense index of a session record in the arena.  Stable for the
/// lifetime of the record; recycled (with a fresh generation) after
/// removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

/// A generation-checked reference to a slab record: the id plus the
/// generation it was minted under.  [`Slab::resolve`] returns `None`
/// once the slot has been freed or recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionHandle {
    /// The dense slot index.
    pub id: SessionId,
    /// The slot generation at mint time.
    pub generation: u32,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab: contiguous slots, free-list reuse, generation
/// counters against stale-handle aliasing.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    // lint:allow(unbounded-growth): slots are recycled through `free` (remove() takes the value and free-lists the index); capacity is bounded by the peak live population, which the ingest governor caps
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots the arena has ever grown to (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Insert a record, reusing a freed slot when one exists; returns
    /// its dense id.
    pub fn insert(&mut self, value: T) -> SessionId {
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                slot.value = Some(value);
                self.live += 1;
                return SessionId(idx);
            }
        }
        let idx = self.slots.len();
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        self.live += 1;
        // The arena is u32-indexed; a million sessions sits far below
        // the 4G-slot ceiling, and saturating keeps this panic-free.
        SessionId(u32::try_from(idx).unwrap_or(u32::MAX))
    }

    /// Remove a record by id, bumping the slot generation so every
    /// outstanding handle to it goes stale.  Returns the record.
    pub fn remove(&mut self, id: SessionId) -> Option<T> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.0);
        self.live -= 1;
        Some(value)
    }

    /// Borrow a record by id.
    pub fn get(&self, id: SessionId) -> Option<&T> {
        self.slots.get(id.0 as usize)?.value.as_ref()
    }

    /// Mutably borrow a record by id.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut T> {
        self.slots.get_mut(id.0 as usize)?.value.as_mut()
    }

    /// Mint a generation-checked handle for a live id.
    pub fn handle(&self, id: SessionId) -> Option<SessionHandle> {
        let slot = self.slots.get(id.0 as usize)?;
        slot.value.as_ref()?;
        Some(SessionHandle {
            id,
            generation: slot.generation,
        })
    }

    /// Resolve a handle: `Some` only while the slot still holds the
    /// record the handle was minted for.
    pub fn resolve(&self, handle: SessionHandle) -> Option<&T> {
        let slot = self.slots.get(handle.id.0 as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }
}

/// Interned string symbol: a dense index into the [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

#[derive(Debug, Clone)]
struct SymSlot {
    text: Option<Arc<str>>,
    refs: u32,
}

/// A reference-counted string interner.  Each distinct string is
/// stored once; records hold [`Sym`] indices.  Releasing the last
/// reference frees the slot for reuse, so sustained churn (a million
/// sessions aging in and out) does not leak the string table.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    // lint:allow(unbounded-growth): slots are recycled through `free` (release() drops the text and free-lists the index); the table is bounded by the distinct strings of live records
    slots: Vec<SymSlot>,
    lookup: HashMap<Arc<str>, u32>,
    free: Vec<u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, taking one reference on the symbol.
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&idx) = self.lookup.get(text) {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                slot.refs = slot.refs.saturating_add(1);
                return Sym(idx);
            }
        }
        let arc: Arc<str> = Arc::from(text); // lint:allow(hot-alloc): first sighting of a distinct string — the one materialization point; refreshes resolve through the lookup hit above
        let idx = if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                slot.text = Some(Arc::clone(&arc));
                slot.refs = 1;
                idx
            } else {
                // Unreachable: free-list entries index real slots.
                self.push_slot(&arc)
            }
        } else {
            self.push_slot(&arc)
        };
        self.lookup.insert(arc, idx); // lint:allow(wire-taint): keyed by string content, bounded by live records' distinct strings — admission is governor-gated upstream
        Sym(idx)
    }

    fn push_slot(&mut self, arc: &Arc<str>) -> u32 {
        let idx = self.slots.len();
        self.slots.push(SymSlot {
            text: Some(Arc::clone(arc)),
            refs: 1,
        });
        u32::try_from(idx).unwrap_or(u32::MAX)
    }

    /// Take an additional reference on an existing symbol (record
    /// duplication).
    pub fn retain(&mut self, sym: Sym) {
        if let Some(slot) = self.slots.get_mut(sym.0 as usize) {
            slot.refs = slot.refs.saturating_add(1);
        }
    }

    /// Drop one reference; the last release frees the slot and its
    /// lookup entry.
    pub fn release(&mut self, sym: Sym) {
        let Some(slot) = self.slots.get_mut(sym.0 as usize) else {
            return;
        };
        slot.refs = slot.refs.saturating_sub(1);
        if slot.refs == 0 {
            if let Some(text) = slot.text.take() {
                self.lookup.remove(&text);
            }
            self.free.push(sym.0);
        }
    }

    /// Resolve a symbol to its text (empty for a freed symbol — the
    /// cache never resolves a symbol it does not hold a reference on).
    pub fn get(&self, sym: Sym) -> &str {
        self.slots
            .get(sym.0 as usize)
            .and_then(|s| s.text.as_deref())
            .unwrap_or("")
    }

    /// Resolve a symbol to a shared handle on its text (`None` for a
    /// freed symbol).  A snapshot of the cache clones these instead of
    /// copying string bytes: the `Arc` keeps the text alive even after
    /// the interner slot is released, so an immutable snapshot can
    /// outlive the record it was taken from.
    pub fn get_arc(&self, sym: Sym) -> Option<Arc<str>> {
        self.slots.get(sym.0 as usize)?.text.clone()
    }

    /// Number of distinct live strings.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no strings are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<u64> = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_recycled_with_fresh_generation() {
        let mut slab: Slab<&'static str> = Slab::new();
        let a = slab.insert("first");
        let stale = slab.handle(a).unwrap();
        slab.remove(a);
        let b = slab.insert("second");
        // The freed slot is reused (dense ids stay dense) ...
        assert_eq!(a, b);
        assert_eq!(slab.capacity(), 1);
        // ... but the stale handle does not alias the new record.
        assert_eq!(slab.resolve(stale), None);
        assert_eq!(slab.resolve(slab.handle(b).unwrap()), Some(&"second"));
    }

    #[test]
    fn handle_of_freed_slot_is_none() {
        let mut slab: Slab<u8> = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        assert_eq!(slab.handle(a), None);
        assert_eq!(slab.get(a), None);
    }

    #[test]
    fn interner_dedups_and_refcounts() {
        let mut i = Interner::new();
        let a = i.intern("audio");
        let b = i.intern("audio");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        let c = i.intern("video");
        assert_ne!(a, c);
        assert_eq!(i.get(a), "audio");
        assert_eq!(i.get(c), "video");
        // Two references on "audio": one release keeps it alive.
        i.release(a);
        assert_eq!(i.get(b), "audio");
        i.release(b);
        assert_eq!(i.len(), 1, "audio freed, video live");
        i.release(c);
        assert!(i.is_empty());
    }

    #[test]
    fn interner_reuses_freed_slots() {
        let mut i = Interner::new();
        let a = i.intern("one");
        i.release(a);
        let b = i.intern("two");
        assert_eq!(i.get(b), "two");
        assert_eq!(i.len(), 1);
        // The freed slot was recycled rather than growing the table.
        assert_eq!(i.slots.len(), 1);
    }

    #[test]
    fn retain_balances_release() {
        let mut i = Interner::new();
        let a = i.intern("x");
        i.retain(a);
        i.release(a);
        assert_eq!(i.get(a), "x");
        i.release(a);
        assert!(i.is_empty());
    }

    #[test]
    fn churn_does_not_leak() {
        let mut i = Interner::new();
        for round in 0..1000 {
            let s = i.intern(&format!("session-{round}"));
            let keep = i.intern("audio");
            i.release(s);
            i.release(keep);
        }
        assert!(i.is_empty());
        assert!(i.slots.len() <= 2, "table grew to {}", i.slots.len());
    }
}
