//! An in-memory SAP testbed: several [`SessionDirectory`] instances
//! joined by an impaired multicast channel, driven by the discrete-event
//! simulator.
//!
//! This is the harness behind the clash-recovery demonstrations and the
//! integration tests: every packet any directory emits is fanned out to
//! every other directory through a [`Channel`] (loss + delay), exactly
//! like a flat SAP scope.  Network partitions can be injected and healed
//! to reproduce the Section 3 scenarios ("existing sessions can only be
//! disrupted by other existing sessions that had not been known due to
//! network partitioning").
//!
//! Beyond hand-driven `partition`/`heal` calls, a seeded
//! [`FaultPlan`] can be installed with [`Testbed::with_faults`] to
//! replay timed fault scenarios — burst-loss windows, zone partitions
//! that heal on schedule, node crashes with cache-losing restarts,
//! per-node clock skew, forged announcement storms, and packet
//! corruption (truncation/bit-flips/garbage) that must pass back
//! through the real [`SapPacket::decode`] to be delivered at all.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use sdalloc_core::Allocator;
use sdalloc_sim::{Channel, FaultPlan, SimContext, SimRng, SimTime, Simulator, Transmission};

use crate::directory::{DirectoryConfig, DirectoryEvent, SessionDirectory};
use crate::sdp::{Origin, SessionDescription};
use crate::wire::{msg_id_hash, SapFrame, SapPacket};

/// Sender index used for forged storm packets: matches no real node, so
/// it is never partitioned away and never equals a recipient.
const PHANTOM_SENDER: usize = usize::MAX;

/// Events flowing through the testbed simulator.
#[derive(Debug, Clone)]
enum Event {
    /// Deliver a packet to directory `to`.
    Deliver { to: usize, pkt: SapPacket },
    /// A packet reached `to`'s socket but died before decode
    /// (corruption mangled it past recognition); only the drop counter
    /// arrives.
    DeliverDropped { to: usize },
    /// Give directory `node` a chance to run its timers.
    Wakeup { node: usize },
    /// Take a directory down: it neither sends nor receives until its
    /// Restart (if any) fires.
    Crash { node: usize },
    /// Bring a crashed directory back with an empty cache.
    Restart { node: usize },
    /// Inject a burst of forged third-party announcements.
    Storm { index: usize, packets: u32 },
}

/// A record of something that happened, for assertions and demos.
#[derive(Debug, Clone)]
pub struct LoggedEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which directory it happened at.
    pub node: usize,
    /// What happened.
    pub event: DirectoryEvent,
}

/// The testbed.
pub struct Testbed {
    sim: Simulator<Event>,
    directories: Vec<SessionDirectory>,
    channel: Channel,
    rng: SimRng,
    /// Directed pairs (from, to) whose packets are currently dropped.
    blocked: HashSet<(usize, usize)>,
    /// Timed fault scenario composed on top of `channel` and `blocked`.
    faults: FaultPlan,
    /// Everything the directories reported.
    pub log: Vec<LoggedEvent>,
    /// Restarts that have fired, as `(at, node)` — for measuring cache
    /// rebuild times in chaos experiments.
    pub restarts: Vec<(SimTime, usize)>,
    /// Per-node down flag, flipped by Crash/Restart events (replacing
    /// per-packet scans over the fault plan's crash windows).
    down: Vec<bool>,
    /// The earliest pending Wakeup per node (global time), so a node
    /// whose deadline is already covered is not flooded with redundant
    /// wakeups — the core of wake-on-deadline: a node only enters the
    /// event queue when something of its is actually due.
    wake_at: Vec<Option<SimTime>>,
    /// Optional byte trace of every packet a directory *emits*
    /// (`global-time-nanos ‖ node ‖ encoded packet`), recorded before
    /// fan-out so loss and corruption downstream do not perturb it.
    /// Enabled by [`Self::enable_packet_trace`]; the differential tests
    /// fingerprint this against the threaded runtime's loopback-bus
    /// trace to pin byte-identical behaviour across the two drivers.
    trace: Option<Vec<u8>>,
}

/// Append one emission record to a packet trace: time, sender, bytes.
/// Must stay in lock-step with the runtime loopback bus's trace format
/// (`sdalloc-runtime`), which is the whole point of the tap.
fn trace_emission(trace: &mut Option<Vec<u8>>, now: SimTime, node: usize, pkt: &SapPacket) {
    if let Some(t) = trace.as_mut() {
        t.extend_from_slice(&now.as_nanos().to_le_bytes());
        t.push(node as u8);
        t.extend_from_slice(&pkt.encode());
    }
}

/// Schedule a wakeup for `node` at global time `at` unless an earlier or
/// equal one is already pending.  Superseded later wakeups are not
/// cancelled; firing one finds nothing due and is a no-op.
// lint:allow(panic-reach): test harness: instance ids are dense indices issued by this testbed
fn schedule_wake(
    ctx: &mut SimContext<Event>,
    wake_at: &mut [Option<SimTime>],
    node: usize,
    at: SimTime,
) {
    if let Some(pending) = wake_at[node] {
        if pending <= at {
            return;
        }
    }
    wake_at[node] = Some(at);
    ctx.schedule_at(at, Event::Wakeup { node });
}

impl Testbed {
    /// Build a testbed of directories with the given configs and
    /// allocator factory, joined by `channel`.
    pub fn new(
        configs: Vec<DirectoryConfig>,
        mut make_allocator: impl FnMut() -> Box<dyn Allocator>,
        channel: Channel,
        seed: u64,
    ) -> Self {
        let directories: Vec<SessionDirectory> = configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| {
                let mut d = SessionDirectory::new(cfg, make_allocator());
                d.set_telemetry_identity(i as u32, seed);
                d
            })
            .collect();
        let n = directories.len();
        Testbed {
            sim: Simulator::new(),
            directories,
            channel,
            rng: SimRng::new(seed),
            blocked: HashSet::new(),
            faults: FaultPlan::new(),
            log: Vec::new(),
            restarts: Vec::new(),
            down: vec![false; n],
            wake_at: vec![None; n],
            trace: None,
        }
    }

    /// Start recording every directory emission into a byte trace (see
    /// the `trace` field).  Call before the first [`Self::run_until`].
    pub fn enable_packet_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded packet trace, leaving recording enabled.
    pub fn take_packet_trace(&mut self) -> Vec<u8> {
        self.trace.replace(Vec::new()).unwrap_or_default()
    }

    /// Install a fault plan, scheduling its timed events (crashes,
    /// restarts, storms).  Call before the first [`Self::run_until`];
    /// the plan's *windows* (loss, partitions, corruption) are consulted
    /// per packet as the simulation runs, while crashes and restarts are
    /// ordinary simulator events that flip the node's up/down flag and
    /// reschedule its timers.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let ctx = self.sim.context();
        for crash in &plan.crashes {
            ctx.schedule_at(crash.at, Event::Crash { node: crash.node });
            if let Some(at) = crash.restart_at {
                ctx.schedule_at(at, Event::Restart { node: crash.node });
            }
        }
        for (index, storm) in plan.storms.iter().enumerate() {
            ctx.schedule_at(
                storm.at,
                Event::Storm {
                    index,
                    packets: storm.packets,
                },
            );
        }
        self.faults = plan;
        self
    }

    /// Number of directories.
    pub fn len(&self) -> usize {
        self.directories.len()
    }

    /// Whether the testbed is empty.
    pub fn is_empty(&self) -> bool {
        self.directories.is_empty()
    }

    /// Access a directory.
    // lint:allow(panic-reach): test harness: panicking on a bad instance id is the desired failure mode
    pub fn directory(&self, node: usize) -> &SessionDirectory {
        &self.directories[node]
    }

    /// Mutable access (e.g. to create sessions).  Remember to call
    /// [`Self::kick`] afterwards so the new session's announcements get
    /// scheduled.
    // lint:allow(panic-reach): test harness: panicking on a bad instance id is the desired failure mode
    pub fn directory_mut(&mut self, node: usize) -> &mut SessionDirectory {
        &mut self.directories[node]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The shared RNG (for creating sessions deterministically).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Enable or disable telemetry recording on every node.
    pub fn set_telemetry_enabled(&mut self, on: bool) {
        for d in &mut self.directories {
            d.set_telemetry_enabled(on);
        }
    }

    /// Deterministic per-node telemetry snapshots as one JSON array,
    /// node order.  Byte-identical across runs for a fixed seed and
    /// schedule (pinned by `tests/event_driven.rs`).
    pub fn telemetry_json(&self) -> String {
        let mut s = String::from("[\n");
        let n = self.directories.len();
        for (i, d) in self.directories.iter().enumerate() {
            let snap = d.telemetry_snapshot_json();
            s.push_str(snap.trim_end());
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("]\n");
        s
    }

    /// Post-mortem flight-recorder dumps, one JSON document per node,
    /// stamped with `reason`.  Call when a chaos scenario or property
    /// check fails.
    pub fn flight_dump(&self, reason: &str) -> Vec<String> {
        self.directories
            .iter()
            .map(|d| d.flight_dump_json(reason))
            .collect()
    }

    /// Partition two nodes from each other (both directions).
    pub fn partition(&mut self, a: usize, b: usize) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Block one direction only: packets from `from` no longer reach
    /// `to` — the transport-level analogue of the paper's TTL-scoping
    /// asymmetry, where A's announcements miss B while B's traffic can
    /// still collide with A's.
    pub fn block_direction(&mut self, from: usize, to: usize) {
        self.blocked.insert((from, to));
    }

    /// Heal a partition (both directions).
    pub fn heal(&mut self, a: usize, b: usize) {
        self.blocked.remove(&(a, b));
        self.blocked.remove(&(b, a));
    }

    /// Schedule a wakeup for `node` at its next deadline (call after
    /// creating sessions or any out-of-band mutation).
    // lint:allow(panic-reach): test harness: panicking on a bad instance id is the desired failure mode
    pub fn kick(&mut self, node: usize) {
        if let Some(at) = self.directories[node].next_deadline() {
            let at = self.faults.global_time(node, at).max(self.sim.now());
            schedule_wake(self.sim.context(), &mut self.wake_at, node, at);
        }
    }

    /// Run the testbed until `horizon`.
    ///
    /// Wake-on-deadline: a node enters the event queue only when its
    /// directory reports a due deadline ([`SessionDirectory::next_deadline`])
    /// or a packet arrives for it; nothing polls idle nodes.  Crashes
    /// and restarts are events that stop and re-prime a node's timer
    /// chain rather than per-packet window checks.
    // lint:allow(panic-reach): test harness: instance ids are dense indices issued by this testbed
    pub fn run_until(&mut self, horizon: SimTime) {
        // Split borrows for the closure.
        let directories = &mut self.directories;
        let channel = &self.channel;
        let rng = &mut self.rng;
        let blocked = &self.blocked;
        let faults = &self.faults;
        let log = &mut self.log;
        let restarts = &mut self.restarts;
        let down = &mut self.down;
        let wake_at = &mut self.wake_at;
        let trace = &mut self.trace;
        self.sim.run_until(horizon, &mut |ctx, event| match event {
            Event::Wakeup { node } => {
                let now = ctx.now();
                // Clear the pending marker first: even a wake that finds
                // the node down must not block later reschedules.
                if wake_at[node] == Some(now) {
                    wake_at[node] = None;
                }
                if down[node] {
                    // Crashed: timers stop; the Restart event (if any)
                    // re-primes the wakeup chain.
                    return;
                }
                let lnow = faults.local_time(node, now);
                let pkts = directories[node].poll(lnow);
                for pkt in pkts {
                    trace_emission(trace, now, node, &pkt);
                    fan_out(ctx, channel, faults, rng, blocked, down, node, pkt);
                }
                if let Some(at) = directories[node].next_deadline() {
                    let at = faults.global_time(node, at).max(now);
                    schedule_wake(ctx, wake_at, node, at);
                }
            }
            Event::Deliver { to, pkt } => {
                let now = ctx.now();
                if down[to] {
                    return; // packets to a crashed node vanish
                }
                let lnow = faults.local_time(to, now);
                let (replies, events) = directories[to].on_packet(lnow, &pkt, rng);
                for e in events {
                    log.push(LoggedEvent {
                        at: now,
                        node: to,
                        event: e,
                    });
                }
                for reply in replies {
                    trace_emission(trace, now, to, &reply);
                    fan_out(ctx, channel, faults, rng, blocked, down, to, reply);
                }
                if let Some(at) = directories[to].next_deadline() {
                    let at = faults.global_time(to, at).max(now);
                    schedule_wake(ctx, wake_at, to, at);
                }
            }
            Event::DeliverDropped { to } => {
                if down[to] {
                    return; // a crashed node has no socket to count on
                }
                let lnow = faults.local_time(to, ctx.now());
                directories[to].note_rx_dropped(lnow);
            }
            Event::Crash { node } => {
                down[node] = true;
            }
            Event::Restart { node } => {
                let now = ctx.now();
                down[node] = false;
                restarts.push((now, node));
                let lnow = faults.local_time(node, now);
                directories[node].restart(lnow);
                if let Some(at) = directories[node].next_deadline() {
                    let at = faults.global_time(node, at).max(now);
                    schedule_wake(ctx, wake_at, node, at);
                }
            }
            Event::Storm { index, packets } => {
                for i in 0..packets {
                    let pkt = forge_storm_packet(index, i, rng);
                    fan_out(
                        ctx,
                        channel,
                        faults,
                        rng,
                        blocked,
                        down,
                        PHANTOM_SENDER,
                        pkt,
                    );
                }
            }
        });
    }
}

/// Forge one storm announcement from a phantom site (TEST-NET-2
/// addresses), with a random group — the kind of traffic a buggy or
/// hostile announcer would flood the SAP group with.
fn forge_storm_packet(storm: usize, i: u32, rng: &mut SimRng) -> SapPacket {
    let origin = Ipv4Addr::new(198, 51, 100, 1 + ((storm as u32 * 17 + i) % 250) as u8);
    let group = Ipv4Addr::new(224, 2, rng.below(128) as u8, rng.below(256) as u8);
    let desc = SessionDescription {
        origin: Origin {
            username: "-".into(),
            // Distinct per (storm, packet) so each forgery is a fresh
            // cache entry, maximising cache pressure.
            session_id: 0x5701_0000 + (storm as u64) * 0x1_0000 + i as u64,
            version: 1,
            address: origin,
        },
        name: format!("storm-{storm}-{i}"),
        info: None,
        group,
        ttl: 127,
        start: 0,
        stop: 0,
        media: vec![],
    };
    let payload = desc.format();
    SapPacket::announce(origin, msg_id_hash(&payload), payload)
}

/// Fan a packet out to every other node through the channel, under the
/// fault plan: partition cuts, crashed recipients, burst loss, and
/// corruption all apply per (link, packet).  Corrupted bytes must
/// survive a real [`SapFrame::decode`] round-trip to be delivered —
/// most mangled packets die right there, like on a real socket.
#[allow(clippy::too_many_arguments)]
fn fan_out(
    ctx: &mut SimContext<Event>,
    channel: &Channel,
    faults: &FaultPlan,
    rng: &mut SimRng,
    blocked: &HashSet<(usize, usize)>,
    down: &[bool],
    from: usize,
    pkt: SapPacket,
) {
    let now = ctx.now();
    for (to, &to_down) in down.iter().enumerate() {
        if to == from {
            continue;
        }
        if blocked.contains(&(from, to)) {
            continue;
        }
        if !faults.delivers(now, from, to) || to_down {
            continue;
        }
        let extra = faults.extra_drop(now);
        if extra > 0.0 && rng.chance(extra) {
            continue;
        }
        match channel.transmit(rng) {
            Transmission::Lost => {}
            Transmission::Delivered(delay) => {
                let mut delivered = pkt.clone();
                if let Some((p, mode)) = faults.corruption_at(now) {
                    if rng.chance(p) {
                        let mut bytes = delivered.encode().to_vec();
                        mode.apply(&mut bytes, rng);
                        // Validate zero-copy against the mangled buffer;
                        // an owning packet materializes only if the
                        // frame survives — like a real receive path.
                        match SapFrame::decode(&bytes) {
                            Ok(frame) => delivered = frame.to_packet(),
                            Err(_) => {
                                // Mangled beyond recognition: the bytes
                                // still hit the receiver's socket, so the
                                // drop is accounted there.
                                ctx.schedule_after(delay, Event::DeliverDropped { to });
                                continue;
                            }
                        }
                    }
                }
                ctx.schedule_after(delay, Event::Deliver { to, pkt: delivered });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::Media;
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};
    use sdalloc_sim::SimDuration;
    use std::net::Ipv4Addr;

    fn testbed(n: usize, seed: u64) -> Testbed {
        let configs: Vec<DirectoryConfig> = (0..n)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(50)),
            seed,
        )
    }

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    #[test]
    fn announcements_propagate() {
        let mut tb = testbed(3, 1);
        let now = tb.now();
        let mut rng = SimRng::new(99);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }

    #[test]
    fn sequential_allocations_avoid_each_other() {
        let mut tb = testbed(4, 2);
        for node in 0..4 {
            let now = tb.now();
            let mut rng = tb.rng().fork();
            tb.directory_mut(node)
                .create_session(now, "s", 127, media(), &mut rng)
                .unwrap();
            tb.kick(node);
            // Let the announcement settle before the next allocation.
            let horizon = tb.now() + SimDuration::from_secs(2);
            tb.run_until(horizon);
        }
        let groups: HashSet<Ipv4Addr> = (0..4)
            .flat_map(|n| {
                tb.directory(n)
                    .own_sessions()
                    .map(|(_, s)| s.desc.group)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(groups.len(), 4, "all four sessions on distinct groups");
    }

    #[test]
    fn partition_causes_clash_then_heals() {
        // Two nodes partitioned from each other pick addresses blindly
        // from a tiny space until they collide; healing the partition
        // triggers detection and recovery, ending with distinct groups.
        let configs: Vec<DirectoryConfig> = (0..2)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(2); // collide quickly
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(50)),
            3,
        );
        tb.partition(0, 1);
        // Both allocate while deaf to each other; with a 2-address space
        // and different seeds they may or may not collide — force it by
        // trying seeds until the groups match.
        let mut rng0 = SimRng::new(7);
        let mut rng1 = SimRng::new(8);
        loop {
            let now = tb.now();
            let id0 = tb
                .directory_mut(0)
                .create_session(now, "a", 127, media(), &mut rng0)
                .unwrap();
            let id1 = tb
                .directory_mut(1)
                .create_session(now, "b", 127, media(), &mut rng1)
                .unwrap();
            let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
            let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
            if g0 == g1 {
                break;
            }
            tb.directory_mut(0).withdraw_session(id0);
            tb.directory_mut(1).withdraw_session(id1);
        }
        tb.kick(0);
        tb.kick(1);
        let horizon = tb.now() + SimDuration::from_secs(30);
        tb.run_until(horizon);
        // Still clashing (they can't hear each other).
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_eq!(g0, g1);

        // Heal; the next announcements collide, phases 1/2 resolve it.
        tb.heal(0, 1);
        let horizon = tb.now() + SimDuration::from_secs(1_300);
        tb.run_until(horizon);
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_ne!(g0, g1, "clash not resolved after heal");
        assert!(
            tb.log
                .iter()
                .any(|e| matches!(e.event, DirectoryEvent::Moved { .. })),
            "no session moved: {:?}",
            tb.log
        );
    }

    #[test]
    fn heavy_loss_still_converges_via_backoff() {
        // 20% loss: the exponential back-off's early repeats push the
        // announcement through within a couple of minutes.
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel {
                loss: sdalloc_sim::LossModel::new(0.20),
                delay: sdalloc_sim::DelayModel::Constant(SimDuration::from_millis(150)),
            },
            77,
        );
        let now = tb.now();
        let mut rng = SimRng::new(78);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(180));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }

    #[test]
    fn asymmetric_block_resolved_by_third_party() {
        // A cannot hear B (one-way block), so when B later lands on A's
        // address, A would never notice — but C hears both and either
        // side's defence flows through the open directions.
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(2);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(40)),
            79,
        );
        // B deaf to A (so B can collide) and A deaf to B (so only third-
        // party relay can inform A's side of the world).
        tb.block_direction(0, 1);
        tb.block_direction(1, 0);
        let mut rng_a = SimRng::new(80);
        let now = tb.now();
        tb.directory_mut(0)
            .create_session(now, "alpha", 127, media(), &mut rng_a)
            .unwrap();
        let group_a = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        tb.kick(0);
        tb.run_until(SimTime::from_secs(2));
        // B collides.
        let mut rng_b = SimRng::new(81);
        loop {
            let now = tb.now();
            let id = tb
                .directory_mut(1)
                .create_session(now, "beta", 127, media(), &mut rng_b)
                .unwrap();
            let g = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
            if g == group_a {
                break;
            }
            tb.directory_mut(1).withdraw_session(id);
        }
        tb.kick(1);
        let horizon = tb.now() + SimDuration::from_secs(120);
        tb.run_until(horizon);
        let ga = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let gb = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_ne!(ga, gb, "asymmetric clash unresolved");
        assert_eq!(ga, group_a, "the incumbent should keep its address");
    }

    #[test]
    fn fault_plan_partition_cuts_and_heals_on_schedule() {
        let mut tb = testbed(2, 11).with_faults(FaultPlan::new().with_partition(
            SimTime::ZERO,
            SimTime::from_secs(60),
            vec![0],
            vec![1],
        ));
        let now = tb.now();
        let mut rng = SimRng::new(12);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(59));
        assert_eq!(tb.directory(1).cached_sessions(), 0, "partition holds");
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.directory(1).cached_sessions(), 1, "heal lets it through");
    }

    #[test]
    fn crash_loses_cache_and_restart_reannounces() {
        let mut tb = testbed(2, 13).with_faults(FaultPlan::new().with_crash(
            1,
            SimTime::from_secs(30),
            Some(SimTime::from_secs(60)),
        ));
        let now = tb.now();
        let mut rng = SimRng::new(14);
        // Node 1 announces; node 0 hears it.  Node 1 then crashes and
        // restarts with an empty cache but keeps announcing its session.
        tb.directory_mut(1)
            .create_session(now, "survivor", 127, media(), &mut rng)
            .unwrap();
        tb.kick(1);
        tb.run_until(SimTime::from_secs(29));
        assert_eq!(tb.directory(0).cached_sessions(), 1);
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.restarts, vec![(SimTime::from_secs(60), 1)]);
        // Re-announcement after restart refreshed node 0's entry.
        let heard_after_restart = tb.log.iter().any(|e| {
            e.node == 0
                && e.at > SimTime::from_secs(60)
                && matches!(e.event, DirectoryEvent::Heard(_))
        });
        assert!(heard_after_restart, "restarted node must re-announce");
    }

    #[test]
    fn storm_fills_caches_without_breaking_real_traffic() {
        let mut tb =
            testbed(2, 15).with_faults(FaultPlan::new().with_storm(SimTime::from_secs(5), 40));
        let now = tb.now();
        let mut rng = SimRng::new(16);
        tb.directory_mut(0)
            .create_session(now, "real", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(30));
        // The forged sessions landed in the caches …
        assert!(tb.directory(1).cached_sessions() > 30, "storm cached");
        // … and the real announcement still made it through.
        assert!(
            tb.log
                .iter()
                .any(|e| e.node == 1 && matches!(e.event, DirectoryEvent::Heard(_))),
            "real traffic survives the storm"
        );
    }

    #[test]
    fn corruption_window_thins_but_does_not_stop_traffic() {
        // Garbage corruption with p=1 kills every packet in the window;
        // after it closes announcements flow again.
        let mut tb = testbed(2, 17).with_faults(FaultPlan::new().with_corruption(
            SimTime::ZERO,
            SimTime::from_secs(40),
            1.0,
            sdalloc_sim::CorruptionMode::Garbage,
        ));
        let now = tb.now();
        let mut rng = SimRng::new(18);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(39));
        assert_eq!(tb.directory(1).cached_sessions(), 0, "garbage never parses");
        // The mangled packets were not invisible: every pre-decode death
        // shows up in the receiver's drop counter.
        let dropped = tb
            .directory(1)
            .telemetry()
            .metrics
            .counter_by_name("net.rx_dropped");
        assert!(dropped > 0, "pre-decode drops must be accounted");
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.directory(1).cached_sessions(), 1, "window closed");
    }

    #[test]
    fn skewed_clock_still_converges() {
        // Node 1's clock runs 30 s ahead; announcements still propagate
        // and cache (the cache keys on local arrival time only).
        let mut tb =
            testbed(2, 19).with_faults(FaultPlan::new().with_clock_skew(1, 30_000_000_000));
        let now = tb.now();
        let mut rng = SimRng::new(20);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(10));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
    }

    #[test]
    fn skewed_clock_does_not_burst_catchup_announcements() {
        // Regression for the unbounded catch-up loop: node 1's clock
        // runs 35 s ahead, so its first wakeup lands at local t ≈ 35 s
        // while its announce schedule was anchored at local-session
        // creation.  The old `while next_send <= now` loop replayed
        // every missed period (t = 0, 5, 15, 35) back-to-back; the clamp
        // emits exactly one announcement and re-anchors.
        let mut tb =
            testbed(2, 25).with_faults(FaultPlan::new().with_clock_skew(1, 35_000_000_000));
        let now = tb.now();
        let mut rng = SimRng::new(26);
        tb.directory_mut(1)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(1);
        // One hop of delay (50 ms) is well inside the first second.
        tb.run_until(SimTime::from_secs(1));
        let heard: Vec<_> = tb
            .log
            .iter()
            .filter(|e| e.node == 0 && matches!(e.event, DirectoryEvent::Heard(_)))
            .collect();
        assert_eq!(
            heard.len(),
            1,
            "skewed node must emit exactly one catch-up announcement: {heard:?}"
        );
        // The schedule re-anchored instead of replaying the backlog:
        // nothing else is due within the next couple of seconds.
        tb.run_until(SimTime::from_secs(3));
        let heard = tb
            .log
            .iter()
            .filter(|e| e.node == 0 && matches!(e.event, DirectoryEvent::Heard(_)))
            .count();
        assert_eq!(heard, 1, "no burst replay of missed periods");
    }

    #[test]
    fn telemetry_json_is_byte_identical_per_seed() {
        let run = || {
            let mut tb = testbed(3, 21);
            let now = tb.now();
            let mut rng = SimRng::new(22);
            tb.directory_mut(0)
                .create_session(now, "s", 127, media(), &mut rng)
                .unwrap();
            tb.kick(0);
            tb.run_until(SimTime::from_secs(60));
            tb.telemetry_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "telemetry must be deterministic per seed");
        assert!(a.contains("\"announce.sent\""), "{a}");
        assert!(a.contains("\"cache.heard_new\": 1"), "{a}");
    }

    #[test]
    fn flight_dump_covers_every_node() {
        let mut tb = testbed(2, 23);
        let now = tb.now();
        let mut rng = SimRng::new(24);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(10));
        let dumps = tb.flight_dump("unit-test dump");
        assert_eq!(dumps.len(), 2);
        for (i, d) in dumps.iter().enumerate() {
            assert!(d.contains("\"flight_recorder\": true"), "{d}");
            assert!(d.contains(&format!("\"node\": {i}")), "{d}");
            assert!(d.contains("\"reason\": \"unit-test dump\""), "{d}");
        }
        // The announcing node recorded its create in the ring.
        assert!(dumps[0].contains("\"name\": \"created\""), "{}", dumps[0]);
    }

    #[test]
    fn lossy_channel_still_converges() {
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(), // 2% loss, 200 ms
            4,
        );
        let now = tb.now();
        let mut rng = SimRng::new(5);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        // Within a few repeats everyone has heard it despite loss.
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }
}
