//! An in-memory SAP testbed: several [`SessionDirectory`] instances
//! joined by an impaired multicast channel, driven by the discrete-event
//! simulator.
//!
//! This is the harness behind the clash-recovery demonstrations and the
//! integration tests: every packet any directory emits is fanned out to
//! every other directory through a [`Channel`] (loss + delay), exactly
//! like a flat SAP scope.  Network partitions can be injected and healed
//! to reproduce the Section 3 scenarios ("existing sessions can only be
//! disrupted by other existing sessions that had not been known due to
//! network partitioning").

use std::collections::HashSet;

use sdalloc_core::Allocator;
use sdalloc_sim::{Channel, SimContext, SimRng, SimTime, Simulator, Transmission};

use crate::directory::{DirectoryConfig, DirectoryEvent, SessionDirectory};
use crate::wire::SapPacket;

/// Events flowing through the testbed simulator.
#[derive(Debug, Clone)]
enum Event {
    /// Deliver a packet to directory `to`.
    Deliver { to: usize, pkt: SapPacket },
    /// Give directory `node` a chance to run its timers.
    Wakeup { node: usize },
}

/// A record of something that happened, for assertions and demos.
#[derive(Debug, Clone)]
pub struct LoggedEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which directory it happened at.
    pub node: usize,
    /// What happened.
    pub event: DirectoryEvent,
}

/// The testbed.
pub struct Testbed {
    sim: Simulator<Event>,
    directories: Vec<SessionDirectory>,
    channel: Channel,
    rng: SimRng,
    /// Directed pairs (from, to) whose packets are currently dropped.
    blocked: HashSet<(usize, usize)>,
    /// Everything the directories reported.
    pub log: Vec<LoggedEvent>,
}

impl Testbed {
    /// Build a testbed of directories with the given configs and
    /// allocator factory, joined by `channel`.
    pub fn new(
        configs: Vec<DirectoryConfig>,
        mut make_allocator: impl FnMut() -> Box<dyn Allocator>,
        channel: Channel,
        seed: u64,
    ) -> Self {
        let directories = configs
            .into_iter()
            .map(|cfg| SessionDirectory::new(cfg, make_allocator()))
            .collect();
        Testbed {
            sim: Simulator::new(),
            directories,
            channel,
            rng: SimRng::new(seed),
            blocked: HashSet::new(),
            log: Vec::new(),
        }
    }

    /// Number of directories.
    pub fn len(&self) -> usize {
        self.directories.len()
    }

    /// Whether the testbed is empty.
    pub fn is_empty(&self) -> bool {
        self.directories.is_empty()
    }

    /// Access a directory.
    pub fn directory(&self, node: usize) -> &SessionDirectory {
        &self.directories[node]
    }

    /// Mutable access (e.g. to create sessions).  Remember to call
    /// [`Self::kick`] afterwards so the new session's announcements get
    /// scheduled.
    pub fn directory_mut(&mut self, node: usize) -> &mut SessionDirectory {
        &mut self.directories[node]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The shared RNG (for creating sessions deterministically).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Partition two nodes from each other (both directions).
    pub fn partition(&mut self, a: usize, b: usize) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Block one direction only: packets from `from` no longer reach
    /// `to` — the transport-level analogue of the paper's TTL-scoping
    /// asymmetry, where A's announcements miss B while B's traffic can
    /// still collide with A's.
    pub fn block_direction(&mut self, from: usize, to: usize) {
        self.blocked.insert((from, to));
    }

    /// Heal a partition (both directions).
    pub fn heal(&mut self, a: usize, b: usize) {
        self.blocked.remove(&(a, b));
        self.blocked.remove(&(b, a));
    }

    /// Schedule a wakeup for `node` at its next deadline (call after
    /// creating sessions or any out-of-band mutation).
    pub fn kick(&mut self, node: usize) {
        if let Some(at) = self.directories[node].next_wakeup() {
            let at = at.max(self.sim.now());
            self.sim.context().schedule_at(at, Event::Wakeup { node });
        }
    }

    /// Run the testbed until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        // Split borrows for the closure.
        let directories = &mut self.directories;
        let channel = &self.channel;
        let rng = &mut self.rng;
        let blocked = &self.blocked;
        let log = &mut self.log;
        self.sim.run_until(horizon, &mut |ctx, event| match event {
            Event::Wakeup { node } => {
                let now = ctx.now();
                let pkts = directories[node].poll(now);
                for pkt in pkts {
                    fan_out(ctx, channel, rng, blocked, directories.len(), node, pkt);
                }
                if let Some(at) = directories[node].next_wakeup() {
                    ctx.schedule_at(at.max(now), Event::Wakeup { node });
                }
            }
            Event::Deliver { to, pkt } => {
                let now = ctx.now();
                let (replies, events) = directories[to].handle_packet(now, &pkt, rng);
                for e in events {
                    log.push(LoggedEvent {
                        at: now,
                        node: to,
                        event: e,
                    });
                }
                for reply in replies {
                    fan_out(ctx, channel, rng, blocked, directories.len(), to, reply);
                }
                if let Some(at) = directories[to].next_wakeup() {
                    ctx.schedule_at(at.max(now), Event::Wakeup { node: to });
                }
            }
        });
    }
}

/// Fan a packet out to every other node through the channel.
fn fan_out(
    ctx: &mut SimContext<Event>,
    channel: &Channel,
    rng: &mut SimRng,
    blocked: &HashSet<(usize, usize)>,
    n: usize,
    from: usize,
    pkt: SapPacket,
) {
    for to in 0..n {
        if to == from {
            continue;
        }
        if blocked.contains(&(from, to)) {
            continue;
        }
        match channel.transmit(rng) {
            Transmission::Lost => {}
            Transmission::Delivered(delay) => {
                ctx.schedule_after(
                    delay,
                    Event::Deliver {
                        to,
                        pkt: pkt.clone(),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdp::Media;
    use sdalloc_core::{AddrSpace, InformedRandomAllocator};
    use sdalloc_sim::SimDuration;
    use std::net::Ipv4Addr;

    fn testbed(n: usize, seed: u64) -> Testbed {
        let configs: Vec<DirectoryConfig> = (0..n)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(50)),
            seed,
        )
    }

    fn media() -> Vec<Media> {
        vec![Media {
            kind: "audio".into(),
            port: 5004,
            proto: "RTP/AVP".into(),
            format: 0,
        }]
    }

    #[test]
    fn announcements_propagate() {
        let mut tb = testbed(3, 1);
        let now = tb.now();
        let mut rng = SimRng::new(99);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }

    #[test]
    fn sequential_allocations_avoid_each_other() {
        let mut tb = testbed(4, 2);
        for node in 0..4 {
            let now = tb.now();
            let mut rng = tb.rng().fork();
            tb.directory_mut(node)
                .create_session(now, "s", 127, media(), &mut rng)
                .unwrap();
            tb.kick(node);
            // Let the announcement settle before the next allocation.
            let horizon = tb.now() + SimDuration::from_secs(2);
            tb.run_until(horizon);
        }
        let groups: HashSet<Ipv4Addr> = (0..4)
            .flat_map(|n| {
                tb.directory(n)
                    .own_sessions()
                    .map(|(_, s)| s.desc.group)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(groups.len(), 4, "all four sessions on distinct groups");
    }

    #[test]
    fn partition_causes_clash_then_heals() {
        // Two nodes partitioned from each other pick addresses blindly
        // from a tiny space until they collide; healing the partition
        // triggers detection and recovery, ending with distinct groups.
        let configs: Vec<DirectoryConfig> = (0..2)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(2); // collide quickly
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(50)),
            3,
        );
        tb.partition(0, 1);
        // Both allocate while deaf to each other; with a 2-address space
        // and different seeds they may or may not collide — force it by
        // trying seeds until the groups match.
        let mut rng0 = SimRng::new(7);
        let mut rng1 = SimRng::new(8);
        loop {
            let now = tb.now();
            let id0 = tb
                .directory_mut(0)
                .create_session(now, "a", 127, media(), &mut rng0)
                .unwrap();
            let id1 = tb
                .directory_mut(1)
                .create_session(now, "b", 127, media(), &mut rng1)
                .unwrap();
            let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
            let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
            if g0 == g1 {
                break;
            }
            tb.directory_mut(0).withdraw_session(id0);
            tb.directory_mut(1).withdraw_session(id1);
        }
        tb.kick(0);
        tb.kick(1);
        let horizon = tb.now() + SimDuration::from_secs(30);
        tb.run_until(horizon);
        // Still clashing (they can't hear each other).
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_eq!(g0, g1);

        // Heal; the next announcements collide, phases 1/2 resolve it.
        tb.heal(0, 1);
        let horizon = tb.now() + SimDuration::from_secs(1_300);
        tb.run_until(horizon);
        let g0 = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let g1 = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_ne!(g0, g1, "clash not resolved after heal");
        assert!(
            tb.log
                .iter()
                .any(|e| matches!(e.event, DirectoryEvent::Moved { .. })),
            "no session moved: {:?}",
            tb.log
        );
    }

    #[test]
    fn heavy_loss_still_converges_via_backoff() {
        // 20% loss: the exponential back-off's early repeats push the
        // announcement through within a couple of minutes.
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel {
                loss: sdalloc_sim::LossModel::new(0.20),
                delay: sdalloc_sim::DelayModel::Constant(SimDuration::from_millis(150)),
            },
            77,
        );
        let now = tb.now();
        let mut rng = SimRng::new(78);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        tb.run_until(SimTime::from_secs(180));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }

    #[test]
    fn asymmetric_block_resolved_by_third_party() {
        // A cannot hear B (one-way block), so when B later lands on A's
        // address, A would never notice — but C hears both and either
        // side's defence flows through the open directions.
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(2);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::perfect(SimDuration::from_millis(40)),
            79,
        );
        // B deaf to A (so B can collide) and A deaf to B (so only third-
        // party relay can inform A's side of the world).
        tb.block_direction(0, 1);
        tb.block_direction(1, 0);
        let mut rng_a = SimRng::new(80);
        let now = tb.now();
        tb.directory_mut(0)
            .create_session(now, "alpha", 127, media(), &mut rng_a)
            .unwrap();
        let group_a = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        tb.kick(0);
        tb.run_until(SimTime::from_secs(2));
        // B collides.
        let mut rng_b = SimRng::new(81);
        loop {
            let now = tb.now();
            let id = tb
                .directory_mut(1)
                .create_session(now, "beta", 127, media(), &mut rng_b)
                .unwrap();
            let g = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
            if g == group_a {
                break;
            }
            tb.directory_mut(1).withdraw_session(id);
        }
        tb.kick(1);
        let horizon = tb.now() + SimDuration::from_secs(120);
        tb.run_until(horizon);
        let ga = tb.directory(0).own_sessions().next().unwrap().1.desc.group;
        let gb = tb.directory(1).own_sessions().next().unwrap().1.desc.group;
        assert_ne!(ga, gb, "asymmetric clash unresolved");
        assert_eq!(ga, group_a, "the incumbent should keep its address");
    }

    #[test]
    fn lossy_channel_still_converges() {
        let configs: Vec<DirectoryConfig> = (0..3)
            .map(|i| {
                let mut cfg = DirectoryConfig::new(Ipv4Addr::new(10, 0, 0, 1 + i as u8));
                cfg.space = AddrSpace::abstract_space(256);
                cfg
            })
            .collect();
        let mut tb = Testbed::new(
            configs,
            || Box::new(InformedRandomAllocator),
            Channel::mbone_default(), // 2% loss, 200 ms
            4,
        );
        let now = tb.now();
        let mut rng = SimRng::new(5);
        tb.directory_mut(0)
            .create_session(now, "s", 127, media(), &mut rng)
            .unwrap();
        tb.kick(0);
        // Within a few repeats everyone has heard it despite loss.
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.directory(1).cached_sessions(), 1);
        assert_eq!(tb.directory(2).cached_sessions(), 1);
    }
}
