//! Announcement timing.
//!
//! The paper's conclusion places a hard requirement on the announcement
//! schedule: "The session announcement rate must be non-uniform …
//! Optimally, it should start from a high announcement rate (say a 5
//! second interval) and exponentially back off the rate until a low
//! background rate is reached."  Front-loading repeats drives the mean
//! effective propagation delay (Section 2.3) from ~12 s down to ~0.3 s —
//! the difference between the `i = 0.001m` and `i = 0.00005m` curves of
//! Figure 6.
//!
//! The background rate is bandwidth-limited as in sdr/RFC 2974: all
//! announcers on a scope share a bandwidth budget, so the steady
//! interval grows with the number and size of announcements heard.

use sdalloc_sim::{SimDuration, SimTime};

/// Exponential back-off announcement schedule.
///
/// ```
/// use sdalloc_sap::BackoffSchedule;
/// use sdalloc_sim::SimDuration;
/// let s = BackoffSchedule::default();
/// assert_eq!(s.interval_after(0), SimDuration::from_secs(5));   // fast start
/// assert_eq!(s.interval_after(20), SimDuration::from_mins(10)); // settles at the cap
/// ```
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    /// First repeat interval (paper: 5 s).
    pub initial: SimDuration,
    /// Multiplier applied to the interval after each send (paper:
    /// "exponentially backing off" — we use 2).
    pub factor: u32,
    /// Interval cap: the low background rate (sdr's default announcement
    /// period was ~5–10 minutes for a quiet scope).
    pub cap: SimDuration,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        BackoffSchedule {
            initial: SimDuration::from_secs(5),
            factor: 2,
            cap: SimDuration::from_mins(10),
        }
    }
}

impl BackoffSchedule {
    /// A constant-interval schedule (the pre-paper sdr behaviour, used
    /// as the ablation baseline).
    pub fn constant(interval: SimDuration) -> Self {
        BackoffSchedule {
            initial: interval,
            factor: 1,
            cap: interval,
        }
    }

    /// The interval to wait *after* the `n`-th transmission (n = 0 for
    /// the initial announcement).
    pub fn interval_after(&self, n: u32) -> SimDuration {
        let mut iv = self.initial;
        for _ in 0..n {
            iv = iv.saturating_mul(self.factor as u64);
            if iv >= self.cap {
                return self.cap;
            }
        }
        iv.min(self.cap)
    }

    /// Absolute send time of the `n`-th transmission given the first was
    /// at `start` (n = 0 → `start`).
    pub fn nth_time(&self, start: SimTime, n: u32) -> SimTime {
        let mut t = start;
        for k in 0..n {
            t += self.interval_after(k);
        }
        t
    }

    /// Mean effective announcement-propagation delay at this schedule's
    /// *initial* repeat spacing, per Section 2.3:
    /// `(1-loss)·delay + loss·repeat`.
    pub fn effective_initial_delay(&self, network_delay: SimDuration, loss: f64) -> SimDuration {
        network_delay.mul_f64(1.0 - loss) + self.interval_after(0).mul_f64(loss)
    }
}

/// Bandwidth-limited steady-state interval: with `n_sessions` sessions of
/// `bytes_each` announced on a scope sharing `limit_bits_per_sec`, each
/// session's announcement period must be at least
/// `n · size · 8 / limit` — but never below `floor`.
pub fn bandwidth_limited_interval(
    n_sessions: usize,
    bytes_each: usize,
    limit_bits_per_sec: f64,
    floor: SimDuration,
) -> SimDuration {
    assert!(limit_bits_per_sec > 0.0, "zero bandwidth budget");
    let total_bits = (n_sessions * bytes_each * 8) as f64;
    let secs = total_bits / limit_bits_per_sec;
    floor.max(SimDuration::from_secs_f64(secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_backoff_sequence() {
        let s = BackoffSchedule::default();
        // 5, 10, 20, 40, ... capped at 600.
        assert_eq!(s.interval_after(0), SimDuration::from_secs(5));
        assert_eq!(s.interval_after(1), SimDuration::from_secs(10));
        assert_eq!(s.interval_after(2), SimDuration::from_secs(20));
        assert_eq!(s.interval_after(6), SimDuration::from_secs(320));
        assert_eq!(s.interval_after(7), SimDuration::from_mins(10)); // 640 → cap
        assert_eq!(s.interval_after(100), SimDuration::from_mins(10));
    }

    #[test]
    fn nth_times_accumulate() {
        let s = BackoffSchedule::default();
        let t0 = SimTime::from_secs(100);
        assert_eq!(s.nth_time(t0, 0), t0);
        assert_eq!(s.nth_time(t0, 1), SimTime::from_secs(105));
        assert_eq!(s.nth_time(t0, 2), SimTime::from_secs(115));
        assert_eq!(s.nth_time(t0, 3), SimTime::from_secs(135));
    }

    #[test]
    fn constant_schedule() {
        let s = BackoffSchedule::constant(SimDuration::from_mins(10));
        for n in [0u32, 1, 5, 50] {
            assert_eq!(s.interval_after(n), SimDuration::from_mins(10));
        }
    }

    #[test]
    fn effective_delay_matches_paper() {
        // Constant 10-minute repeats: ~12.2 s effective delay.
        let slow = BackoffSchedule::constant(SimDuration::from_mins(10));
        let eff = slow.effective_initial_delay(SimDuration::from_millis(200), 0.02);
        assert!((eff.as_secs_f64() - 12.196).abs() < 0.01);
        // Exponential from 5 s: ~0.3 s.
        let fast = BackoffSchedule::default();
        let eff = fast.effective_initial_delay(SimDuration::from_millis(200), 0.02);
        assert!((eff.as_secs_f64() - 0.296).abs() < 0.01);
    }

    #[test]
    fn bandwidth_limit() {
        // 200 sessions × 500 bytes at 4 kbit/s → 200 s period.
        let iv = bandwidth_limited_interval(200, 500, 4_000.0, SimDuration::from_mins(5));
        assert_eq!(iv, SimDuration::from_secs(300)); // floor dominates at 200 s
        let iv2 = bandwidth_limited_interval(2_000, 500, 4_000.0, SimDuration::from_mins(5));
        assert_eq!(iv2, SimDuration::from_secs(2_000));
        // Few sessions: the floor applies.
        let iv3 = bandwidth_limited_interval(2, 500, 4_000.0, SimDuration::from_mins(5));
        assert_eq!(iv3, SimDuration::from_mins(5));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        bandwidth_limited_interval(1, 1, 0.0, SimDuration::ZERO);
    }
}
