//! Topology map files.
//!
//! The paper's simulations were driven by a map "gathered from the
//! mcollect network monitor" — a text dump of mrouters, tunnels,
//! metrics and thresholds.  This module gives the reproduction the same
//! capability: any [`Topology`] can be saved to (and loaded from) a
//! simple line-oriented text format, so users can run every experiment
//! on their own measured maps instead of our synthetic ones.
//!
//! Format (one record per line, `#` comments ignored):
//!
//! ```text
//! node <id> <label>
//! link <a> <b> metric <m> threshold <t> delay_us <d>
//! ```
//!
//! Node ids must be dense and ascending (the loader enforces it so a
//! file and its in-memory form are always index-compatible).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use sdalloc_sim::SimDuration;

use crate::graph::{Node, NodeId, Topology};

/// Errors from [`load_str`]/[`load_file`].
#[derive(Debug)]
pub enum MapfileError {
    /// I/O failure reading the file.
    Io(io::Error),
    /// A line failed to parse; contains (line number, content).
    Malformed(usize, String),
    /// Node ids were not dense and ascending.
    BadNodeOrder(usize),
    /// A link referenced an undeclared node.
    UnknownNode(usize),
}

impl std::fmt::Display for MapfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapfileError::Io(e) => write!(f, "i/o error: {e}"),
            MapfileError::Malformed(n, l) => write!(f, "line {n}: malformed record: {l}"),
            MapfileError::BadNodeOrder(n) => {
                write!(f, "line {n}: node ids must be dense and ascending")
            }
            MapfileError::UnknownNode(n) => write!(f, "line {n}: link references unknown node"),
        }
    }
}

impl std::error::Error for MapfileError {}

impl From<io::Error> for MapfileError {
    fn from(e: io::Error) -> Self {
        MapfileError::Io(e)
    }
}

/// Serialise a topology to the map format.
pub fn save_str(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# sdalloc topology map: {} nodes, {} links",
        topo.node_count(),
        topo.link_count()
    );
    for v in topo.node_ids() {
        let label = topo.node(v).label.replace(char::is_whitespace, "_");
        let label = if label.is_empty() {
            "-".to_string()
        } else {
            label
        };
        let _ = writeln!(out, "node {} {}", v.0, label);
    }
    for link in topo.links() {
        let _ = writeln!(
            out,
            "link {} {} metric {} threshold {} delay_us {}",
            link.a.0,
            link.b.0,
            link.metric,
            link.threshold,
            link.delay.as_nanos() / 1_000
        );
    }
    out
}

/// Write a topology to a file.
pub fn save_file(topo: &Topology, path: &Path) -> Result<(), MapfileError> {
    fs::write(path, save_str(topo))?;
    Ok(())
}

/// Parse a topology from map text.
// lint:allow(panic-reach): every field index is preceded by an exact fields.len() check in the same match arm; malformed lines return MapfileError instead
pub fn load_str(text: &str) -> Result<Topology, MapfileError> {
    let mut topo = Topology::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first() {
            Some(&"node") => {
                if fields.len() != 3 {
                    return Err(MapfileError::Malformed(lineno, raw.to_string()));
                }
                let id: u32 = fields[1]
                    .parse()
                    .map_err(|_| MapfileError::Malformed(lineno, raw.to_string()))?;
                if id as usize != topo.node_count() {
                    return Err(MapfileError::BadNodeOrder(lineno));
                }
                let label = if fields[2] == "-" {
                    String::new()
                } else {
                    fields[2].to_string()
                };
                topo.add_node(Node {
                    label,
                    pos: (0.0, 0.0),
                });
            }
            Some(&"link") => {
                if fields.len() != 9
                    || fields[3] != "metric"
                    || fields[5] != "threshold"
                    || fields[7] != "delay_us"
                {
                    return Err(MapfileError::Malformed(lineno, raw.to_string()));
                }
                let parse = |s: &str| -> Result<u64, MapfileError> {
                    s.parse()
                        .map_err(|_| MapfileError::Malformed(lineno, raw.to_string()))
                };
                let a = parse(fields[1])? as u32;
                let b = parse(fields[2])? as u32;
                let metric = parse(fields[4])? as u32;
                let threshold = parse(fields[6])?.min(255) as u8;
                let delay_us = parse(fields[8])?;
                if a as usize >= topo.node_count() || b as usize >= topo.node_count() {
                    return Err(MapfileError::UnknownNode(lineno));
                }
                if a == b {
                    return Err(MapfileError::Malformed(lineno, raw.to_string()));
                }
                topo.add_link(
                    NodeId(a),
                    NodeId(b),
                    metric,
                    threshold,
                    SimDuration::from_micros(delay_us),
                );
            }
            _ => return Err(MapfileError::Malformed(lineno, raw.to_string())),
        }
    }
    Ok(topo)
}

/// Read a topology from a file.
pub fn load_file(path: &Path) -> Result<Topology, MapfileError> {
    load_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbone::{MboneMap, MboneParams};

    #[test]
    fn roundtrip_small_map() {
        let map = MboneMap::generate(&MboneParams {
            seed: 3,
            target_nodes: 150,
        });
        let text = save_str(&map.topo);
        let loaded = load_str(&text).unwrap();
        assert_eq!(loaded.node_count(), map.topo.node_count());
        assert_eq!(loaded.link_count(), map.topo.link_count());
        for (a, b) in map.topo.links().iter().zip(loaded.links()) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.metric, b.metric);
            assert_eq!(a.threshold, b.threshold);
            // Delay preserved to microsecond resolution.
            assert!(
                a.delay.as_nanos().abs_diff(b.delay.as_nanos()) < 1_000,
                "delay drift"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let map = MboneMap::generate(&MboneParams {
            seed: 4,
            target_nodes: 100,
        });
        let dir = std::env::temp_dir().join("sdalloc_mapfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.txt");
        save_file(&map.topo, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.node_count(), map.topo.node_count());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a map\n\nnode 0 a\nnode 1 b\n# tunnel\nlink 0 1 metric 1 threshold 64 delay_us 40000\n";
        let topo = load_str(text).unwrap();
        assert_eq!(topo.node_count(), 2);
        assert_eq!(topo.link_count(), 1);
        assert_eq!(topo.links()[0].threshold, 64);
        assert_eq!(topo.links()[0].delay, SimDuration::from_millis(40));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            load_str("bogus"),
            Err(MapfileError::Malformed(1, _))
        ));
        assert!(matches!(
            load_str("node 0"),
            Err(MapfileError::Malformed(1, _))
        ));
        assert!(matches!(
            load_str("node 0 a\nnode 1 b\nlink 0 1 metric x threshold 1 delay_us 1"),
            Err(MapfileError::Malformed(3, _))
        ));
    }

    #[test]
    fn node_order_enforced() {
        assert!(matches!(
            load_str("node 1 a"),
            Err(MapfileError::BadNodeOrder(1))
        ));
        assert!(matches!(
            load_str("node 0 a\nnode 0 b"),
            Err(MapfileError::BadNodeOrder(2))
        ));
    }

    #[test]
    fn unknown_node_in_link_rejected() {
        assert!(matches!(
            load_str("node 0 a\nlink 0 5 metric 1 threshold 1 delay_us 1"),
            Err(MapfileError::UnknownNode(2))
        ));
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(
            load_str("node 0 a\nlink 0 0 metric 1 threshold 1 delay_us 1"),
            Err(MapfileError::Malformed(2, _))
        ));
    }

    #[test]
    fn whitespace_in_labels_flattened() {
        let mut topo = Topology::new();
        topo.add_node(Node {
            label: "has space".into(),
            pos: (0.0, 0.0),
        });
        let text = save_str(&topo);
        let loaded = load_str(&text).unwrap();
        assert_eq!(loaded.node(NodeId(0)).label, "has_space");
    }
}
