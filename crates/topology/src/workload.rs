//! Session workload generation: the paper's TTL distributions.
//!
//! Figure 5's simulations choose session originators uniformly at random
//! and TTLs "randomly from the following distributions":
//!
//! * ds1 `{1,15,31,47,63,127,191}`
//! * ds2 `{1,1,15,15,31,47,63,127,191}`
//! * ds3 `{1,1,1,1,15,15,15,15,31,47,63,127,191}`
//! * ds4 `{1,1,1,1,1,1,1,1,15,15,15,15,15,15,31,31,47,47,63,63,127,191}`
//!
//! Each list is sampled uniformly, so repetition weights low TTLs more
//! heavily from ds1 to ds4 — "they help illustrate the way that local
//! scoping of sessions helps scaling".

use sdalloc_sim::SimRng;

use crate::graph::{NodeId, Topology};
use crate::scope::Scope;

/// A discrete TTL distribution sampled uniformly from a fixed list.
///
/// ```
/// use sdalloc_topology::TtlDistribution;
/// use sdalloc_sim::SimRng;
/// let ds4 = TtlDistribution::ds4();
/// let mut rng = SimRng::new(3);
/// let ttl = ds4.sample(&mut rng);
/// assert!(ds4.values().contains(&ttl));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtlDistribution {
    /// Name used in figures ("ds1".."ds4" or custom).
    pub name: &'static str,
    values: Vec<u8>,
}

impl TtlDistribution {
    /// Build a distribution from explicit values.
    pub fn new(name: &'static str, values: Vec<u8>) -> Self {
        assert!(!values.is_empty(), "empty TTL distribution");
        TtlDistribution { name, values }
    }

    /// The paper's ds1.
    pub fn ds1() -> Self {
        TtlDistribution::new("ds1", vec![1, 15, 31, 47, 63, 127, 191])
    }

    /// The paper's ds2.
    pub fn ds2() -> Self {
        TtlDistribution::new("ds2", vec![1, 1, 15, 15, 31, 47, 63, 127, 191])
    }

    /// The paper's ds3.
    pub fn ds3() -> Self {
        TtlDistribution::new(
            "ds3",
            vec![1, 1, 1, 1, 15, 15, 15, 15, 31, 47, 63, 127, 191],
        )
    }

    /// The paper's ds4.
    pub fn ds4() -> Self {
        TtlDistribution::new(
            "ds4",
            vec![
                1, 1, 1, 1, 1, 1, 1, 1, 15, 15, 15, 15, 15, 15, 31, 31, 47, 47, 63, 63, 127, 191,
            ],
        )
    }

    /// All four paper distributions, in order.
    pub fn all_paper() -> Vec<TtlDistribution> {
        vec![Self::ds1(), Self::ds2(), Self::ds3(), Self::ds4()]
    }

    /// Sample one TTL.
    pub fn sample(&self, rng: &mut SimRng) -> u8 {
        *rng.choose(&self.values)
    }

    /// The distinct TTL values, ascending.
    pub fn distinct(&self) -> Vec<u8> {
        let mut v = self.values.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The raw value list (with repetitions).
    pub fn values(&self) -> &[u8] {
        &self.values
    }
}

/// Draw a random session scope: uniform originator, TTL from `dist` —
/// exactly the paper's workload ("Nodes in this graph were chosen at
/// random as the originator of a session, and the TTL for the session
/// was chosen randomly from the following distributions").
pub fn random_scope(topo: &Topology, dist: &TtlDistribution, rng: &mut SimRng) -> Scope {
    let src = NodeId(rng.below(topo.node_count() as u64) as u32);
    Scope::new(src, dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_sim::SimDuration;

    #[test]
    fn paper_distributions_have_right_weights() {
        assert_eq!(TtlDistribution::ds1().values().len(), 7);
        assert_eq!(TtlDistribution::ds2().values().len(), 9);
        assert_eq!(TtlDistribution::ds3().values().len(), 13);
        assert_eq!(TtlDistribution::ds4().values().len(), 22);
        // All share the same support.
        let support = vec![1, 15, 31, 47, 63, 127, 191];
        for d in TtlDistribution::all_paper() {
            assert_eq!(d.distinct(), support, "{}", d.name);
        }
    }

    #[test]
    fn ds4_is_locally_weighted() {
        // ds4 gives TTL 1 probability 8/22 and TTL 191 probability 1/22.
        let d = TtlDistribution::ds4();
        let ones = d.values().iter().filter(|&&t| t == 1).count();
        assert_eq!(ones, 8);
        let globals = d.values().iter().filter(|&&t| t == 191).count();
        assert_eq!(globals, 1);
    }

    #[test]
    fn sampling_matches_weights() {
        let d = TtlDistribution::ds2();
        let mut rng = SimRng::new(5);
        let n = 90_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        // Expect 2/9 ≈ 0.2222.
        let frac = ones as f64 / n as f64;
        assert!((frac - 2.0 / 9.0).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn random_scope_uniform_sources() {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        t.add_link(a, b, 1, 1, SimDuration::from_millis(1));
        let d = TtlDistribution::ds1();
        let mut rng = SimRng::new(6);
        let mut saw = [false; 2];
        for _ in 0..100 {
            let s = random_scope(&t, &d, &mut rng);
            saw[s.source.index()] = true;
            assert!(d.distinct().contains(&s.ttl));
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    #[should_panic(expected = "empty TTL distribution")]
    fn empty_distribution_rejected() {
        TtlDistribution::new("bad", vec![]);
    }
}
