//! A synthetic Mbone map — the substitute for the paper's mcollect data.
//!
//! The paper simulates on "a map of the real Mbone as gathered from the
//! mcollect network monitor … the resulting connected graph includes
//! 1864 distinct nodes", with all TTL thresholds and DVMRP metrics.
//! That data set no longer exists, so we generate a topology that
//! reproduces the three structural properties the paper's results rest
//! on:
//!
//! 1. **Nested threshold rings**: organisation boundaries at TTL 16,
//!    European national boundaries at TTL 48, country/continental
//!    boundaries at TTL 64 — so the canonical session TTLs
//!    (15/47/63/127) map onto organisation / national / international /
//!    intercontinental scopes.
//! 2. **The Figure 3 inconsistency**: within Europe country borders are
//!    at TTL 48, but no 48-boundaries exist in North America, so a
//!    TTL-47 session in the US behaves exactly like a TTL-63 one and
//!    UK-only plus Europe-wide sessions share any 33–64 partition.
//! 3. **Hop-count/TTL proportionality** (Figure 10's table): typical hop
//!    counts ≈ 3 at TTL 16, ≈ 7 at TTL 47/63, ≈ 10–11 at TTL 127, with a
//!    world diameter under the DVMRP infinite metric of 32.
//!
//! The generator is fully deterministic from its seed.

use sdalloc_sim::{SimDuration, SimRng};

use crate::graph::{NodeId, Topology};

/// TTL threshold for organisation (site/campus) boundaries.
pub const THRESHOLD_SITE: u8 = 16;
/// TTL threshold for national boundaries inside Europe.
pub const THRESHOLD_EU_NATIONAL: u8 = 48;
/// TTL threshold for country/continental boundaries elsewhere.
pub const THRESHOLD_INTERNATIONAL: u8 = 64;

/// Canonical session TTLs and what they meant on the 1998 Mbone.
pub mod ttl {
    /// Stays on the originating subnet.
    pub const SUBNET: u8 = 1;
    /// Organisation-local (below the TTL-16 boundary).
    pub const SITE: u8 = 15;
    /// National within Europe (below the TTL-48 boundaries).
    pub const NATIONAL_EU: u8 = 47;
    /// International/continental (below the TTL-64 boundaries).
    pub const INTERNATIONAL: u8 = 63;
    /// Intercontinental.
    pub const INTERCONTINENTAL: u8 = 127;
    /// Effectively global.
    pub const GLOBAL: u8 = 191;
}

/// A continent in the generated map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Continent {
    /// North America (no internal TTL-48 boundaries).
    NorthAmerica,
    /// Europe (TTL-48 national boundaries).
    Europe,
    /// Asia.
    Asia,
    /// Oceania.
    Oceania,
    /// South America.
    SouthAmerica,
}

/// Metadata about one generated country.
#[derive(Debug, Clone)]
pub struct Country {
    /// Human-readable name ("uk", "us"...).
    pub name: String,
    /// Continent the country belongs to.
    pub continent: Continent,
    /// National backbone routers (attachment points for borders).
    pub backbone: Vec<NodeId>,
}

/// The generated map: topology plus placement metadata.
#[derive(Debug, Clone)]
pub struct MboneMap {
    /// The routed topology.
    pub topo: Topology,
    /// Country index of every node.
    pub node_country: Vec<u16>,
    /// Countries in generation order.
    pub countries: Vec<Country>,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MboneParams {
    /// RNG seed; the same seed always produces the same map.
    pub seed: u64,
    /// Total node count (the paper's map had 1864).  Exact for targets
    /// of a few hundred and up; small targets may overshoot slightly
    /// because every country needs a minimum viable structure.
    pub target_nodes: usize,
}

impl Default for MboneParams {
    fn default() -> Self {
        MboneParams {
            seed: 0x05da_110c,
            target_nodes: 1864,
        }
    }
}

/// Per-continent plan: (name, continent, share of nodes, country names).
fn continent_plan() -> Vec<(Continent, f64, Vec<&'static str>)> {
    vec![
        (Continent::NorthAmerica, 0.45, vec!["us", "ca", "mx"]),
        (
            Continent::Europe,
            0.35,
            vec!["uk", "de", "nl", "scand", "fr", "it", "es", "ch"],
        ),
        (Continent::Asia, 0.10, vec!["jp", "kr", "sg"]),
        (Continent::Oceania, 0.05, vec!["au"]),
        (Continent::SouthAmerica, 0.05, vec!["br", "cl"]),
    ]
}

impl MboneMap {
    /// Generate a map with the default 1998 parameters (1864 nodes).
    pub fn generate_default() -> MboneMap {
        MboneMap::generate(&MboneParams::default())
    }

    /// Generate a map.
    // lint:allow(panic-reach): offline generator: country/continent tables are built and sized in this function before any index
    pub fn generate(params: &MboneParams) -> MboneMap {
        assert!(params.target_nodes >= 64, "map too small to be structured");
        let mut rng = SimRng::new(params.seed);
        let mut topo = Topology::new();
        let mut node_country: Vec<u16> = Vec::new();
        let mut countries: Vec<Country> = Vec::new();

        let plan = continent_plan();
        // Node budget per continent, fixing rounding drift on the largest.
        let mut budgets: Vec<usize> = plan
            .iter()
            .map(|(_, f, _)| (params.target_nodes as f64 * f).round() as usize)
            .collect();
        let drift = params.target_nodes as isize - budgets.iter().sum::<usize>() as isize;
        budgets[0] = (budgets[0] as isize + drift) as usize;

        for ((continent, _, names), budget) in plan.iter().zip(budgets) {
            // Country weights: first country (the hub) is the biggest.
            let mut weights: Vec<f64> = names
                .iter()
                .enumerate()
                .map(|(i, _)| if i == 0 { 2.0 } else { 0.6 + rng.f64() * 0.8 })
                .collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            let mut remaining = budget;
            for (i, name) in names.iter().enumerate() {
                let want = if i + 1 == names.len() {
                    remaining
                } else {
                    ((budget as f64 * weights[i]).round() as usize).min(remaining)
                };
                let take = want.max(6).min(remaining.max(6));
                let country_idx = u16::try_from(countries.len()).unwrap_or(u16::MAX);
                let country = build_country(
                    &mut topo,
                    &mut node_country,
                    &mut rng,
                    name,
                    *continent,
                    country_idx,
                    take,
                );
                countries.push(country);
                remaining = remaining.saturating_sub(take);
            }
        }

        link_countries(&mut topo, &countries, &mut rng);

        debug_assert!(topo.is_connected(), "generated map must be connected");
        MboneMap {
            topo,
            node_country,
            countries,
        }
    }

    /// Nodes in a given country.
    pub fn country_nodes(&self, country: u16) -> Vec<NodeId> {
        self.node_country
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == country)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Continent of a node.
    // lint:allow(panic-reach): node_continent is sized to node_count at generation; ids are minted by the same generator
    pub fn continent_of(&self, v: NodeId) -> Continent {
        self.countries[self.node_country[v.index()] as usize].continent
    }
}

/// Build one country's internal structure, returning its metadata.
///
/// Structure: a national backbone ring-ish core; regional hubs hanging
/// off the backbone; organisations ("sites") behind TTL-16 boundary
/// links; small random trees inside each organisation.
// lint:allow(panic-reach): offline generator helper: indices address the node vector it just filled
fn build_country(
    topo: &mut Topology,
    node_country: &mut Vec<u16>,
    rng: &mut SimRng,
    name: &str,
    continent: Continent,
    country_idx: u16,
    budget: usize,
) -> Country {
    fn add(
        topo: &mut Topology,
        node_country: &mut Vec<u16>,
        country_idx: u16,
        label: String,
    ) -> NodeId {
        let id = topo.add_node(crate::graph::Node {
            label,
            pos: (0.0, 0.0),
        });
        node_country.push(country_idx);
        id
    }

    let ms = SimDuration::from_millis;

    // National backbone: 2..=6 routers in a path with one chord.
    let nb = (budget / 40).clamp(2, 6);
    let backbone: Vec<NodeId> = (0..nb)
        .map(|i| add(topo, node_country, country_idx, format!("{name}/bb{i}")))
        .collect();
    for w in backbone.windows(2) {
        topo.add_link(w[0], w[1], 1, 1, ms(5 + rng.below(10)));
    }
    if nb > 3 {
        topo.add_link(backbone[0], backbone[nb - 1], 2, 1, ms(5 + rng.below(10)));
    }
    let mut used = nb;

    // Regional hubs.
    let nr = (budget / 25)
        .clamp(1, 10)
        .min(budget.saturating_sub(used).max(1));
    let regions: Vec<NodeId> = (0..nr)
        .map(|i| {
            let hub = add(topo, node_country, country_idx, format!("{name}/r{i}"));
            let attach = *rng.choose(&backbone);
            topo.add_link(hub, attach, 1, 1, ms(3 + rng.below(8)));
            hub
        })
        .collect();
    used += nr;

    // Organisations behind TTL-16 boundaries until the budget is spent.
    let mut site_no = 0usize;
    while used < budget {
        let remaining = budget - used;
        // Geometric-ish organisation size, mode small, max 12.
        let mut size = 1usize;
        while size < 12 && rng.chance(0.55) {
            size += 1;
        }
        let size = size.min(remaining);
        let gw = add(
            topo,
            node_country,
            country_idx,
            format!("{name}/s{site_no}/gw"),
        );
        let hub = *rng.choose(&regions);
        topo.add_link(gw, hub, 1, THRESHOLD_SITE, ms(2 + rng.below(7)));
        let mut members = vec![gw];
        for r in 1..size {
            let v = add(
                topo,
                node_country,
                country_idx,
                format!("{name}/s{site_no}/r{r}"),
            );
            // Chain bias: usually extend the most recent router, giving
            // organisations some depth (paper: up to ~10 hops at TTL 16).
            // `members` always holds at least the gateway, so the
            // fallthrough arm only serves the chance(0.7)=false draw;
            // `chance` is drawn first to keep the RNG stream unchanged.
            let parent = match (rng.chance(0.7), members.last()) {
                (true, Some(&last)) => last,
                _ => *rng.choose(&members),
            };
            topo.add_link(v, parent, 1, 1, ms(1 + rng.below(3)));
            members.push(v);
        }
        used += size;
        site_no += 1;
    }

    Country {
        name: name.to_string(),
        continent,
        backbone,
    }
}

/// Wire countries together: TTL-48 borders inside Europe, TTL-64
/// elsewhere and between continents.
// lint:allow(panic-reach): offline generator helper: gateway indices come from the country tables built by generate
fn link_countries(topo: &mut Topology, countries: &[Country], rng: &mut SimRng) {
    let ms = SimDuration::from_millis;
    let by_continent = |c: Continent| -> Vec<usize> {
        countries
            .iter()
            .enumerate()
            .filter(|(_, k)| k.continent == c)
            .map(|(i, _)| i)
            .collect()
    };

    for continent in [
        Continent::NorthAmerica,
        Continent::Europe,
        Continent::Asia,
        Continent::Oceania,
        Continent::SouthAmerica,
    ] {
        let members = by_continent(continent);
        let threshold = if continent == Continent::Europe {
            THRESHOLD_EU_NATIONAL
        } else {
            THRESHOLD_INTERNATIONAL
        };
        // Chain the continent's countries, then add a couple of chords in
        // Europe so the 48-mesh is not a pure tree.
        for w in members.windows(2) {
            let a = *rng.choose(&countries[w[0]].backbone);
            let b = *rng.choose(&countries[w[1]].backbone);
            topo.add_link(a, b, 1, threshold, ms(10 + rng.below(15)));
        }
        if continent == Continent::Europe && members.len() > 3 {
            for _ in 0..2 {
                let i = members[rng.index(members.len())];
                let j = members[rng.index(members.len())];
                if i != j {
                    let a = *rng.choose(&countries[i].backbone);
                    let b = *rng.choose(&countries[j].backbone);
                    topo.add_link(a, b, 1, THRESHOLD_EU_NATIONAL, ms(10 + rng.below(15)));
                }
            }
        }
    }

    // Intercontinental links between hub countries (the first country of
    // each continent): NA–EU, NA–AS, EU–AS, NA–SA, AS–OC.
    let hub = |c: Continent| -> NodeId {
        let idx = by_continent(c)[0];
        countries[idx].backbone[0]
    };
    let pairs = [
        (Continent::NorthAmerica, Continent::Europe),
        (Continent::NorthAmerica, Continent::Asia),
        (Continent::Europe, Continent::Asia),
        (Continent::NorthAmerica, Continent::SouthAmerica),
        (Continent::Asia, Continent::Oceania),
    ];
    for (x, y) in pairs {
        topo.add_link(
            hub(x),
            hub(y),
            1,
            THRESHOLD_INTERNATIONAL,
            ms(40 + rng.below(50)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::SourceTree;
    use crate::scope::{Scope, ScopeCache};

    fn small_map() -> MboneMap {
        MboneMap::generate(&MboneParams {
            seed: 1,
            target_nodes: 400,
        })
    }

    #[test]
    fn default_map_has_paper_node_count() {
        let map = MboneMap::generate_default();
        assert_eq!(map.topo.node_count(), 1864);
        assert!(map.topo.is_connected());
    }

    #[test]
    fn deterministic_generation() {
        let a = MboneMap::generate(&MboneParams {
            seed: 7,
            target_nodes: 500,
        });
        let b = MboneMap::generate(&MboneParams {
            seed: 7,
            target_nodes: 500,
        });
        assert_eq!(a.topo.node_count(), b.topo.node_count());
        assert_eq!(a.topo.link_count(), b.topo.link_count());
        assert_eq!(a.node_country, b.node_country);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MboneMap::generate(&MboneParams {
            seed: 1,
            target_nodes: 500,
        });
        let b = MboneMap::generate(&MboneParams {
            seed: 2,
            target_nodes: 500,
        });
        // Same node count (budgeted) but different wiring.
        assert_eq!(a.topo.node_count(), b.topo.node_count());
        assert_ne!(
            a.topo
                .links()
                .iter()
                .map(|l| (l.a, l.b))
                .collect::<Vec<_>>(),
            b.topo
                .links()
                .iter()
                .map(|l| (l.a, l.b))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn thresholds_present() {
        let map = small_map();
        let thresholds: std::collections::HashSet<u8> =
            map.topo.links().iter().map(|l| l.threshold).collect();
        assert!(thresholds.contains(&1));
        assert!(thresholds.contains(&THRESHOLD_SITE));
        assert!(thresholds.contains(&THRESHOLD_EU_NATIONAL));
        assert!(thresholds.contains(&THRESHOLD_INTERNATIONAL));
    }

    #[test]
    fn no_48_boundaries_outside_europe() {
        // The Figure 3 property: TTL-48 borders exist only inside Europe.
        let map = small_map();
        for link in map.topo.links() {
            if link.threshold == THRESHOLD_EU_NATIONAL {
                assert_eq!(map.continent_of(link.a), Continent::Europe);
                assert_eq!(map.continent_of(link.b), Continent::Europe);
            }
        }
    }

    #[test]
    fn ttl15_stays_within_country() {
        let map = small_map();
        let mut cache = ScopeCache::new(map.topo.clone());
        // Sample a handful of sources; a TTL-15 session must never escape
        // its own country (it cannot even cross the site boundary).
        for i in (0..map.topo.node_count()).step_by(37) {
            let src = NodeId(i as u32);
            let set = cache.reach_set(Scope::new(src, ttl::SITE)).clone();
            for v in set.iter() {
                assert_eq!(
                    map.node_country[v.index()],
                    map.node_country[src.index()],
                    "TTL-15 leaked from {} to {}",
                    map.topo.node(src).label,
                    map.topo.node(v).label
                );
            }
        }
    }

    #[test]
    fn ttl63_stays_within_continent_but_crosses_eu_borders() {
        let map = small_map();
        let mut cache = ScopeCache::new(map.topo.clone());
        // Find a European backbone node.
        let eu_country = map
            .countries
            .iter()
            .position(|c| c.continent == Continent::Europe)
            .expect("has europe");
        let src = map.countries[eu_country].backbone[0];
        let set = cache.reach_set(Scope::new(src, ttl::INTERNATIONAL)).clone();
        let mut countries_seen = std::collections::HashSet::new();
        for v in set.iter() {
            assert_eq!(
                map.continent_of(v),
                Continent::Europe,
                "TTL-63 escaped the continent"
            );
            countries_seen.insert(map.node_country[v.index()]);
        }
        assert!(
            countries_seen.len() > 1,
            "TTL-63 should cross European national borders"
        );
    }

    #[test]
    fn ttl127_crosses_continents() {
        let map = small_map();
        let mut cache = ScopeCache::new(map.topo.clone());
        let src = map.countries[0].backbone[0]; // NA hub
        let set = cache
            .reach_set(Scope::new(src, ttl::INTERCONTINENTAL))
            .clone();
        let continents: std::collections::HashSet<_> =
            set.iter().map(|v| map.continent_of(v)).collect();
        assert!(continents.len() >= 3, "TTL-127 reached {continents:?}");
    }

    #[test]
    fn us_ttl47_behaves_like_ttl63() {
        // No 48-boundaries in North America: within the country the two
        // scopes are identical (paper: "In the US ... no TTL 47 sessions
        // are used" because 47 behaves just like 63 nationally).
        let map = small_map();
        let mut cache = ScopeCache::new(map.topo.clone());
        let us_nodes = map.country_nodes(0);
        let src = us_nodes[us_nodes.len() / 2];
        let r47 = cache.reach_set(Scope::new(src, ttl::NATIONAL_EU)).clone();
        let r63 = cache.reach_set(Scope::new(src, ttl::INTERNATIONAL)).clone();
        let us_set: std::collections::HashSet<_> = us_nodes.iter().copied().collect();
        for v in map.topo.node_ids().filter(|v| us_set.contains(v)) {
            assert_eq!(
                r47.contains(v),
                r63.contains(v),
                "47/63 differ inside the US at {}",
                map.topo.node(v).label
            );
        }
    }

    #[test]
    fn uk_ttl47_smaller_than_ttl63() {
        // Inside Europe the 48-borders bite: a UK TTL-47 session is
        // national, TTL-63 is Europe-wide.
        let map = small_map();
        let mut cache = ScopeCache::new(map.topo.clone());
        let uk = map
            .countries
            .iter()
            .position(|c| c.name == "uk")
            .expect("uk exists");
        let src = map.countries[uk].backbone[0];
        let z47 = cache.zone_size(Scope::new(src, ttl::NATIONAL_EU));
        let z63 = cache.zone_size(Scope::new(src, ttl::INTERNATIONAL));
        assert!(
            z47 < z63,
            "47-zone {z47} should be smaller than 63-zone {z63}"
        );
        // And the 47 zone is exactly the UK's reachable portion.
        let set = cache.reach_set(Scope::new(src, ttl::NATIONAL_EU)).clone();
        for v in set.iter() {
            assert_eq!(
                map.countries[map.node_country[v.index()] as usize].name,
                "uk"
            );
        }
    }

    #[test]
    fn world_diameter_under_dvmrp_infinity() {
        let map = small_map();
        // From the NA hub, every node is reachable and within 32 hops.
        let tree = SourceTree::compute(&map.topo, map.countries[0].backbone[0]);
        let max_hops = tree
            .hops
            .iter()
            .filter(|&&h| h != u32::MAX)
            .max()
            .copied()
            .unwrap();
        assert!(max_hops <= 32, "diameter {max_hops} exceeds DVMRP infinity");
        let unreachable = tree.metric.iter().filter(|&&m| m == u32::MAX).count();
        assert_eq!(unreachable, 0, "{unreachable} nodes unreachable from hub");
    }

    #[test]
    fn country_nodes_partition_the_map() {
        let map = small_map();
        let total: usize = (0..map.countries.len() as u16)
            .map(|c| map.country_nodes(c).len())
            .sum();
        assert_eq!(total, map.topo.node_count());
    }
}
