//! DVMRP-style multicast routing over a [`Topology`].
//!
//! DVMRP delivers multicast along per-source shortest-path trees computed
//! on the configured routing metrics (truncated reverse-path broadcast).
//! We model exactly that: a [`SourceTree`] is the metric-shortest-path
//! tree rooted at the source, and TTL scoping is evaluated hop by hop
//! *along the tree*: crossing the k-th link on a tree path requires the
//! packet's TTL, decremented k times, to still be at least the link's
//! threshold.  From this each node gets a single number — the minimum
//! initial TTL required to receive from the source — which makes scope
//! queries O(1).
//!
//! The request–response simulations also need CBT/sparse-mode-PIM-style
//! *shared trees* ([`SharedTree`]): one tree rooted at a core, with
//! delivery between any two members along the unique tree path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sdalloc_sim::SimDuration;

use crate::graph::{LinkId, NodeId, Topology, DVMRP_INFINITY};
use crate::nodeset::NodeSet;

/// Sentinel required-TTL for nodes unreachable at any TTL (disconnected
/// or beyond the DVMRP infinite metric).
pub const TTL_UNREACHABLE: u16 = u16::MAX;

/// The shortest-path tree rooted at one source, annotated with everything
/// scope queries need.
#[derive(Debug, Clone)]
pub struct SourceTree {
    /// The root.
    pub source: NodeId,
    /// For each node: the tree parent and connecting link (`None` for the
    /// source and for unreachable nodes).
    pub parent: Vec<Option<(NodeId, LinkId)>>,
    /// Metric distance from the source (`u32::MAX` when unreachable).
    pub metric: Vec<u32>,
    /// Hop count (number of links) from the source along the tree.
    pub hops: Vec<u32>,
    /// Accumulated propagation delay from the source along the tree.
    pub delay: Vec<SimDuration>,
    /// Minimum initial TTL a packet needs to reach each node, taking both
    /// the per-hop decrement and every threshold on the tree path into
    /// account.  [`TTL_UNREACHABLE`] when the node cannot be reached at
    /// any TTL.
    pub required_ttl: Vec<u16>,
}

impl SourceTree {
    /// Compute the tree for `source`.
    ///
    /// Dijkstra on DVMRP metrics with deterministic tie-breaking (lowest
    /// metric, then fewest hops, then lowest node id), so two runs over
    /// the same topology always produce the same tree.  Paths whose total
    /// metric reaches [`DVMRP_INFINITY`] are treated as unreachable, as a
    /// DVMRP router would.
    // lint:allow(panic-reach): dist/parent/hops are sized to node_count before the Dijkstra loop; link endpoints are in range by Topology's construction contract
    pub fn compute(topo: &Topology, source: NodeId) -> SourceTree {
        let n = topo.node_count();
        let mut metric = vec![u32::MAX; n];
        let mut hops = vec![u32::MAX; n];
        let mut delay = vec![SimDuration::MAX; n];
        let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut done = vec![false; n];

        metric[source.index()] = 0;
        hops[source.index()] = 0;
        delay[source.index()] = SimDuration::ZERO;

        // (metric, hops, node id) — the extra keys make pops deterministic.
        let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, 0, source.0)));

        while let Some(Reverse((m, h, v))) = heap.pop() {
            let v = NodeId(v);
            if done[v.index()] {
                continue;
            }
            done[v.index()] = true;
            for &(lid, w) in topo.neighbors(v) {
                if done[w.index()] {
                    continue;
                }
                let link = topo.link(lid);
                let nm = m.saturating_add(link.metric);
                if nm >= DVMRP_INFINITY {
                    continue; // beyond the DVMRP infinite metric
                }
                let nh = h + 1;
                let better = nm < metric[w.index()]
                    || (nm == metric[w.index()] && nh < hops[w.index()])
                    || (nm == metric[w.index()]
                        && nh == hops[w.index()]
                        && parent[w.index()].map(|(p, _)| v.0 < p.0).unwrap_or(true));
                if better {
                    metric[w.index()] = nm;
                    hops[w.index()] = nh;
                    delay[w.index()] = delay[v.index()] + link.delay;
                    parent[w.index()] = Some((v, lid));
                    heap.push(Reverse((nm, nh, w.0)));
                }
            }
        }

        // required_ttl along tree paths, computed in hop order so parents
        // are always finished before children.
        let mut required_ttl = vec![TTL_UNREACHABLE; n];
        required_ttl[source.index()] = 0;
        let mut order: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| done[v.index()])
            .collect();
        order.sort_by_key(|v| hops[v.index()]);
        for v in order {
            if v == source {
                continue;
            }
            // Every `done` node except the source was reached through a
            // link, so a missing parent cannot occur; skipping it keeps
            // the loop panic-free.
            let Some((p, lid)) = parent[v.index()] else {
                continue;
            };
            let thr = topo.link(lid).threshold as u32;
            // Crossing the hops[v]-th link needs initial TTL ≥ hops + threshold.
            let need_here = hops[v.index()] + thr;
            let need = need_here.max(required_ttl[p.index()] as u32);
            required_ttl[v.index()] = need.min(TTL_UNREACHABLE as u32 - 1) as u16;
        }

        SourceTree {
            source,
            parent,
            metric,
            hops,
            delay,
            required_ttl,
        }
    }

    /// Whether a packet sent with `ttl` from this tree's source reaches `v`.
    #[inline]
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn reaches(&self, v: NodeId, ttl: u8) -> bool {
        self.required_ttl[v.index()] as u32 <= ttl as u32
    }

    /// The set of nodes a packet with `ttl` reaches (always includes the
    /// source itself).
    pub fn reach_set(&self, ttl: u8) -> NodeSet {
        let mut set = NodeSet::with_capacity(self.required_ttl.len());
        for (i, &req) in self.required_ttl.iter().enumerate() {
            if req as u32 <= ttl as u32 {
                set.insert(NodeId(i as u32));
            }
        }
        set
    }

    /// Nodes reachable at `ttl` with their hop distance and delay —
    /// the per-source ingredient of the Figure 10 hop-count histograms.
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn reach_with_hops(
        &self,
        ttl: u8,
    ) -> impl Iterator<Item = (NodeId, u32, SimDuration)> + '_ {
        let ttl = ttl as u32;
        self.required_ttl
            .iter()
            .enumerate()
            .filter(move |&(_, &req)| (req as u32) <= ttl)
            .map(|(i, _)| {
                let v = NodeId(i as u32);
                (v, self.hops[i], self.delay[i])
            })
    }
}

/// A lazily-populated cache of [`SourceTree`]s, one per source.
///
/// The Mbone map has 1864 nodes; each tree costs one Dijkstra, and the
/// allocation experiments query thousands of (source, ttl) scopes, so
/// trees are computed once and retained.
pub struct SptCache {
    topo: Topology,
    trees: Vec<Option<Box<SourceTree>>>,
}

impl SptCache {
    /// Wrap a topology.
    pub fn new(topo: Topology) -> Self {
        let n = topo.node_count();
        SptCache {
            topo,
            trees: (0..n).map(|_| None).collect(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The tree rooted at `source`, computing it on first use.
    // lint:allow(panic-reach): the cache key is the minted source id; the underlying compute sizes its vectors to node_count
    pub fn tree(&mut self, source: NodeId) -> &SourceTree {
        let topo = &self.topo;
        self.trees[source.index()]
            .get_or_insert_with(|| Box::new(SourceTree::compute(topo, source)))
    }

    /// Convenience: the reach set for `(source, ttl)`.
    pub fn reach_set(&mut self, source: NodeId, ttl: u8) -> NodeSet {
        self.tree(source).reach_set(ttl)
    }
}

/// A core-based shared tree (CBT / sparse-mode PIM model).
///
/// The tree is the shortest-path tree of the core; delivery between any
/// two members follows the unique tree path between them.  The paper's
/// request–response simulations compare this against source trees.
#[derive(Debug, Clone)]
pub struct SharedTree {
    /// The core (rendezvous point).
    pub core: NodeId,
    tree: SourceTree,
}

impl SharedTree {
    /// Build the shared tree rooted at `core`.
    pub fn compute(topo: &Topology, core: NodeId) -> SharedTree {
        SharedTree {
            core,
            tree: SourceTree::compute(topo, core),
        }
    }

    /// Pick the most central node (minimum eccentricity by delay over a
    /// sample of sources) as the core.  Deterministic.
    // lint:allow(panic-reach): eccentricity/dist tables are sized to node_count before any index
    pub fn with_central_core(topo: &Topology) -> SharedTree {
        // Use the node minimising total delay from node 0's tree as a
        // cheap 1-median proxy: compute the tree from node 0, take the
        // median-delay node, then root there.  Good enough for a core.
        let probe = SourceTree::compute(topo, NodeId(0));
        let mut best = NodeId(0);
        let mut best_d = SimDuration::MAX;
        // The node whose max distance to the probe tree's extremes is
        // smallest approximates the graph centre.
        let far = probe
            .delay
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != SimDuration::MAX)
            .max_by_key(|(_, &d)| d)
            .map(|(i, _)| NodeId(i as u32))
            .unwrap_or(NodeId(0));
        let from_far = SourceTree::compute(topo, far);
        for i in 0..topo.node_count() {
            let d = from_far.delay[i];
            if d == SimDuration::MAX {
                continue;
            }
            // Middle of the diameter path heuristic: minimise |d - half|.
            let half = from_far
                .delay
                .iter()
                .filter(|&&x| x != SimDuration::MAX)
                .max()
                .copied()
                .unwrap_or(SimDuration::ZERO)
                / 2;
            let score = if d > half { d - half } else { half - d };
            if score < best_d {
                best_d = score;
                best = NodeId(i as u32);
            }
        }
        SharedTree::compute(topo, best)
    }

    /// Hop depth of `v` below the core (`None` if off-tree).
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn depth(&self, v: NodeId) -> Option<u32> {
        if self.tree.required_ttl[v.index()] == TTL_UNREACHABLE {
            None
        } else {
            Some(self.tree.hops[v.index()])
        }
    }

    /// Delay along the unique tree path between `a` and `b`
    /// (delay(a→lca) + delay(lca→b)).
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn path_delay(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        let lca = self.lca(a, b)?;
        let da = self.tree.delay[a.index()] - self.tree.delay[lca.index()];
        let db = self.tree.delay[b.index()] - self.tree.delay[lca.index()];
        Some(da + db)
    }

    /// Hop count along the tree path between `a` and `b`.
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn path_hops(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let lca = self.lca(a, b)?;
        Some(
            self.tree.hops[a.index()] + self.tree.hops[b.index()] - 2 * self.tree.hops[lca.index()],
        )
    }

    /// Lowest common ancestor of `a` and `b` on the tree.
    // lint:allow(panic-reach): parent/hops/delay are sized to node_count by compute; a foreign NodeId is a caller bug in offline analysis, not wire-reachable state
    pub fn lca(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        if self.tree.metric[a.index()] == u32::MAX || self.tree.metric[b.index()] == u32::MAX {
            return None;
        }
        // A node with hops > 0 always has a parent on a well-formed
        // tree; a missing link means the tree is corrupt, reported as
        // "no ancestor" instead of panicking.
        let step = |v: NodeId| self.tree.parent[v.index()].map(|(p, _)| p);
        let mut x = a;
        let mut y = b;
        while self.tree.hops[x.index()] > self.tree.hops[y.index()] {
            x = step(x)?;
        }
        while self.tree.hops[y.index()] > self.tree.hops[x.index()] {
            y = step(y)?;
        }
        while x != y {
            x = step(x)?;
            y = step(y)?;
        }
        Some(x)
    }

    /// The underlying rooted tree.
    pub fn as_source_tree(&self) -> &SourceTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_sim::SimDuration;

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    /// A -1- B -1- C, plus a slow direct A-C link with metric 3.
    fn line_with_shortcut() -> Topology {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let c = t.add_simple_node();
        t.add_link(a, b, 1, 1, d(10));
        t.add_link(b, c, 1, 1, d(10));
        t.add_link(a, c, 3, 1, d(5));
        t
    }

    #[test]
    fn dijkstra_prefers_low_metric() {
        let t = line_with_shortcut();
        let tree = SourceTree::compute(&t, NodeId(0));
        assert_eq!(tree.metric, vec![0, 1, 2]);
        assert_eq!(tree.hops, vec![0, 1, 2]);
        // Path a-b-c (metric 2) beats direct a-c (metric 3).
        assert_eq!(tree.parent[2].unwrap().0, NodeId(1));
        assert_eq!(tree.delay[2], d(20));
    }

    #[test]
    fn ttl_decrement_semantics() {
        // a - b - c chain, all default threshold (1).
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let c = t.add_simple_node();
        t.add_link(a, b, 1, 1, d(1));
        t.add_link(b, c, 1, 1, d(1));
        let tree = SourceTree::compute(&t, a);
        // TTL 1 stays on the source subnet.
        assert!(tree.reaches(a, 1));
        assert!(!tree.reaches(b, 1));
        // TTL 2 crosses one link.
        assert!(tree.reaches(b, 2));
        assert!(!tree.reaches(c, 2));
        // TTL 3 crosses two.
        assert!(tree.reaches(c, 3));
        assert_eq!(tree.required_ttl, vec![0, 2, 3]);
    }

    #[test]
    fn threshold_blocks_low_ttl() {
        // a -[thr 16]- b: a site boundary.
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        t.add_link(a, b, 1, 16, d(1));
        let tree = SourceTree::compute(&t, a);
        // Needs TTL >= 1 + 16 = 17 to cross.
        assert!(!tree.reaches(b, 15));
        assert!(!tree.reaches(b, 16));
        assert!(tree.reaches(b, 17));
    }

    #[test]
    fn threshold_remembered_downstream() {
        // a -[thr 48]- b -1- c: once past the boundary the constraint stays.
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let c = t.add_simple_node();
        t.add_link(a, b, 1, 48, d(1));
        t.add_link(b, c, 1, 1, d(1));
        let tree = SourceTree::compute(&t, a);
        assert_eq!(tree.required_ttl[b.index()], 49);
        // c needs max(49, 2 + 1) = 49.
        assert_eq!(tree.required_ttl[c.index()], 49);
    }

    #[test]
    fn deep_paths_raise_required_ttl() {
        // A 20-hop chain: reaching the end needs TTL >= 21.
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..21).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, d(1));
        }
        let tree = SourceTree::compute(&t, nodes[0]);
        assert_eq!(tree.required_ttl[nodes[20].index()], 21);
        assert!(tree.reaches(nodes[20], 21));
        assert!(!tree.reaches(nodes[20], 20));
    }

    #[test]
    fn dvmrp_infinity_cuts_reachability() {
        // Two nodes joined only by a metric-32 link: unreachable.
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        t.add_link(a, b, 32, 1, d(1));
        let tree = SourceTree::compute(&t, a);
        assert_eq!(tree.metric[b.index()], u32::MAX);
        assert_eq!(tree.required_ttl[b.index()], TTL_UNREACHABLE);
        assert!(!tree.reaches(b, 255));
    }

    #[test]
    fn accumulated_metric_hits_infinity() {
        // Chain of metric-8 links: after 4 links the metric is 32 → cut.
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 8, 1, d(1));
        }
        let tree = SourceTree::compute(&t, nodes[0]);
        assert_eq!(tree.metric[nodes[3].index()], 24);
        assert_eq!(tree.metric[nodes[4].index()], u32::MAX);
    }

    #[test]
    fn reach_set_matches_reaches() {
        let t = line_with_shortcut();
        let tree = SourceTree::compute(&t, NodeId(0));
        for ttl in [0u8, 1, 2, 3, 4, 255] {
            let set = tree.reach_set(ttl);
            for v in 0..3u32 {
                assert_eq!(set.contains(NodeId(v)), tree.reaches(NodeId(v), ttl));
            }
        }
    }

    #[test]
    fn source_always_in_reach_set() {
        let t = line_with_shortcut();
        let tree = SourceTree::compute(&t, NodeId(1));
        assert!(tree.reach_set(0).contains(NodeId(1)));
    }

    #[test]
    fn spt_cache_returns_consistent_trees() {
        let t = line_with_shortcut();
        let mut cache = SptCache::new(t);
        let m1 = cache.tree(NodeId(0)).metric.clone();
        let m2 = cache.tree(NodeId(0)).metric.clone();
        assert_eq!(m1, m2);
        let set = cache.reach_set(NodeId(0), 3);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn shared_tree_path_delay_symmetric() {
        // star: core c with leaves x, y.
        let mut t = Topology::new();
        let c = t.add_simple_node();
        let x = t.add_simple_node();
        let y = t.add_simple_node();
        t.add_link(c, x, 1, 1, d(10));
        t.add_link(c, y, 1, 1, d(20));
        let st = SharedTree::compute(&t, c);
        assert_eq!(st.path_delay(x, y), Some(d(30)));
        assert_eq!(st.path_delay(y, x), Some(d(30)));
        assert_eq!(st.path_delay(x, c), Some(d(10)));
        assert_eq!(st.path_hops(x, y), Some(2));
        assert_eq!(st.lca(x, y), Some(c));
    }

    #[test]
    fn shared_tree_lca_on_chain() {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, d(1));
        }
        let st = SharedTree::compute(&t, nodes[0]);
        assert_eq!(st.lca(nodes[4], nodes[2]), Some(nodes[2]));
        assert_eq!(st.path_delay(nodes[4], nodes[2]), Some(d(2)));
        assert_eq!(st.path_hops(nodes[1], nodes[4]), Some(3));
    }

    #[test]
    fn central_core_is_reasonable() {
        // On a chain, the centre should be near the middle.
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..9).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, d(10));
        }
        let st = SharedTree::with_central_core(&t);
        let mid = st.core.index();
        assert!((3..=5).contains(&mid), "core at {mid}");
    }

    #[test]
    fn determinism_same_tree_twice() {
        let t = line_with_shortcut();
        let a = SourceTree::compute(&t, NodeId(0));
        let b = SourceTree::compute(&t, NodeId(0));
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.required_ttl, b.required_ttl);
        assert_eq!(
            a.parent
                .iter()
                .map(|p| p.map(|(n, _)| n))
                .collect::<Vec<_>>(),
            b.parent
                .iter()
                .map(|p| p.map(|(n, _)| n))
                .collect::<Vec<_>>()
        );
    }
}
