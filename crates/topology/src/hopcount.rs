//! Hop-count distribution analysis (Figure 10 and its table).
//!
//! The paper builds, "from the mcollect network map, … a histogram of
//! number of mrouters against distance from that mrouter for each of
//! four commonly used TTLs.  The graph shows the combined histogram for
//! all potential sources."  The accompanying table extracts the most
//! frequent and maximum hop count per TTL, the numbers that justify the
//! TTL→partition mapping of Deterministic Adaptive IPRMA.

use sdalloc_sim::Histogram;

use crate::graph::{NodeId, Topology};
use crate::routing::SourceTree;

/// Combined hop-count histogram for one TTL scope.
#[derive(Debug, Clone)]
pub struct HopCountProfile {
    /// The session TTL analysed.
    pub ttl: u8,
    /// Histogram of (hop distance → number of reachable mrouters),
    /// combined over all sources, excluding the zero-hop self entry.
    pub histogram: Histogram,
}

impl HopCountProfile {
    /// Most frequent hop count (the table's first column).
    pub fn most_frequent(&self) -> Option<usize> {
        self.histogram.mode()
    }

    /// Maximum hop count observed (the table's second column).
    pub fn max_hops(&self) -> Option<usize> {
        self.histogram.max_value()
    }

    /// Mean hop count.
    pub fn mean_hops(&self) -> f64 {
        self.histogram.mean()
    }

    /// Normalised frequencies, as plotted in Figure 10.
    pub fn normalized(&self) -> Vec<f64> {
        self.histogram.normalized()
    }
}

/// Compute combined hop-count profiles for several TTLs at once.
///
/// Runs one Dijkstra per source (per the DVMRP model) and accumulates
/// every reachable node's hop distance into each TTL's histogram.
/// Sources may be sub-sampled via `stride` (1 = every node, the paper's
/// choice) to trade accuracy for speed on large maps.
// lint:allow(panic-reach): tree.hops is sized to node_count by SourceTree::compute; offline analysis, not the packet path
pub fn hop_count_profiles(topo: &Topology, ttls: &[u8], stride: usize) -> Vec<HopCountProfile> {
    assert!(stride >= 1, "stride must be positive");
    let mut profiles: Vec<HopCountProfile> = ttls
        .iter()
        .map(|&ttl| HopCountProfile {
            ttl,
            histogram: Histogram::new(),
        })
        .collect();
    for src_idx in (0..topo.node_count()).step_by(stride) {
        let tree = SourceTree::compute(topo, NodeId(src_idx as u32));
        for (i, &req) in tree.required_ttl.iter().enumerate() {
            if i == src_idx {
                continue; // skip the zero-hop self entry
            }
            if req == crate::routing::TTL_UNREACHABLE {
                continue;
            }
            let hops = tree.hops[i] as usize;
            for profile in profiles.iter_mut() {
                if req as u32 <= profile.ttl as u32 {
                    profile.histogram.add(hops);
                }
            }
        }
    }
    profiles
}

/// One row of the paper's TTL table.
#[derive(Debug, Clone, PartialEq)]
pub struct TtlTableRow {
    /// Session TTL.
    pub ttl: u8,
    /// Most frequent hop count.
    pub most_frequent: f64,
    /// Maximum hop count.
    pub max_hops: u32,
}

/// Produce the Section 2.4.1 table for the canonical TTLs.
pub fn ttl_table(topo: &Topology, stride: usize) -> Vec<TtlTableRow> {
    let ttls = [16u8, 47, 63, 127];
    hop_count_profiles(topo, &ttls, stride)
        .into_iter()
        .map(|p| TtlTableRow {
            ttl: p.ttl,
            most_frequent: p.most_frequent().unwrap_or(0) as f64,
            max_hops: p.max_hops().unwrap_or(0) as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbone::{MboneMap, MboneParams};
    use sdalloc_sim::SimDuration;

    #[test]
    fn chain_profile() {
        // 5-node chain: from each node, hop distances are symmetric.
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, SimDuration::from_millis(1));
        }
        let profiles = hop_count_profiles(&t, &[255], 1);
        let h = &profiles[0].histogram;
        // Distances over all ordered pairs of a 5-chain:
        // hop 1 ×8, hop 2 ×6, hop 3 ×4, hop 4 ×2.
        assert_eq!(h.count(1), 8);
        assert_eq!(h.count(2), 6);
        assert_eq!(h.count(3), 4);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(0), 0, "self entries excluded");
        assert_eq!(profiles[0].most_frequent(), Some(1));
        assert_eq!(profiles[0].max_hops(), Some(4));
    }

    #[test]
    fn low_ttl_truncates_histogram() {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, SimDuration::from_millis(1));
        }
        // TTL 3 reaches at most 2 hops.
        let profiles = hop_count_profiles(&t, &[3], 1);
        assert_eq!(profiles[0].max_hops(), Some(2));
    }

    #[test]
    fn mbone_table_matches_paper_shape() {
        // The calibration test: hop counts must be roughly proportional
        // to TTL, the ordering 16 < 47 <= 63 < 127 must hold, and the
        // maxima must stay under DVMRP infinity (32).  The paper's values
        // are 3.1/7.0/7.7/10.6 most-frequent and 10/18/18/26 max.
        let map = MboneMap::generate(&MboneParams {
            seed: 1,
            target_nodes: 1000,
        });
        let table = ttl_table(&map.topo, 3);
        assert_eq!(table.len(), 4);
        let mf: Vec<f64> = table.iter().map(|r| r.most_frequent).collect();
        let mx: Vec<u32> = table.iter().map(|r| r.max_hops).collect();
        // TTL 16 local: small hop counts.
        assert!(mf[0] >= 1.0 && mf[0] <= 6.0, "ttl16 mode {}", mf[0]);
        assert!(mx[0] <= 14, "ttl16 max {}", mx[0]);
        // Monotone growth of maxima with TTL.
        assert!(mx[0] < mx[2] && mx[2] <= mx[3], "maxima {mx:?}");
        // Intercontinental scope is the deepest and within DVMRP bounds.
        assert!(mx[3] <= 32, "ttl127 max {}", mx[3]);
        assert!(mf[3] >= mf[0], "modes {mf:?}");
    }

    #[test]
    fn stride_subsampling_close_to_full() {
        let map = MboneMap::generate(&MboneParams {
            seed: 2,
            target_nodes: 400,
        });
        let full = hop_count_profiles(&map.topo, &[127], 1);
        let sub = hop_count_profiles(&map.topo, &[127], 5);
        // Means should agree within ~20%.
        let a = full[0].mean_hops();
        let b = sub[0].mean_hops();
        assert!((a - b).abs() / a < 0.2, "full {a} vs sub {b}");
    }
}
