//! The multicast topology graph.
//!
//! Nodes model mrouters; undirected links carry a DVMRP routing metric,
//! a configured TTL threshold and a propagation delay.  This mirrors the
//! information the paper extracted from the mcollect map of the Mbone:
//! "a simulation model of the Mbone topology including all the TTL
//! thresholds and DVMRP routing metrics in use".
//!
//! TTL threshold semantics (Section 1 of the paper): a router forwarding
//! a packet across a link decrements the packet's TTL and then drops the
//! packet if the decremented TTL is *less than* the link's configured
//! threshold.  An unconfigured link behaves as threshold 1 (the packet
//! merely needs to still be alive).

use sdalloc_sim::SimDuration;

/// Index of a node (mrouter) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize, for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The index as a usize, for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected link between two mrouters.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// DVMRP routing metric (hop cost).  The DVMRP infinite metric is 32,
    /// so any usable link has metric 1..=31.
    pub metric: u32,
    /// Configured TTL threshold; 1 for ordinary links.  A packet crosses
    /// the link only if its TTL, after the per-hop decrement, is at least
    /// this value.
    pub threshold: u8,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

/// The DVMRP infinite routing metric: paths costing this much or more are
/// unreachable.  (Paper, Section 2.4.1: "the DVMRP infinite routing
/// metric of 32".)
pub const DVMRP_INFINITY: u32 = 32;

/// A node (mrouter) with optional placement metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Node {
    /// Free-form label ("eu/uk/region2/site5/r1") used by generators;
    /// purely informational.
    pub label: String,
    /// Coordinates in an abstract plane, used by distance-based delay
    /// models and the Doar-style generator.  `(0,0)` when unused.
    pub pos: (f64, f64),
}

/// An immutable multicast topology: nodes plus undirected links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    // lint:allow(unbounded-growth): a topology is built once by a generator and immutable afterwards
    nodes: Vec<Node>,
    // lint:allow(unbounded-growth): a topology is built once by a generator and immutable afterwards
    links: Vec<Link>,
    /// adjacency[v] = list of (link id, neighbour) pairs.
    // lint:allow(unbounded-growth): a topology is built once by a generator and immutable afterwards
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

/// Convert a node/link index into the `u32` id space.  `add_node` /
/// `add_link` cap the collections at `u32::MAX` entries, so the
/// saturating fallback can never fire for an in-range index.
fn id_u32(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node, returning its id.
    ///
    /// Panics if the node count would overflow the `u32` id space —
    /// a wrapping id would silently alias an existing node.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let raw = u32::try_from(self.nodes.len());
        assert!(raw.is_ok(), "node count overflows the u32 id space");
        let id = NodeId(raw.unwrap_or(u32::MAX));
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an unlabeled node at the origin.
    pub fn add_simple_node(&mut self) -> NodeId {
        self.add_node(Node::default())
    }

    /// Add an undirected link.  Panics on self-loops or out-of-range
    /// endpoints; a zero metric is clamped to 1 and a zero threshold to 1.
    // lint:allow(panic-reach): the asserts are the documented construction contract (no self-loops, endpoints in range); topology building is offline, not the packet path
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        metric: u32,
        threshold: u8,
        delay: SimDuration,
    ) -> LinkId {
        assert!(a != b, "self-loop on node {a:?}");
        assert!(a.index() < self.nodes.len(), "node {a:?} out of range");
        assert!(b.index() < self.nodes.len(), "node {b:?} out of range");
        let raw = u32::try_from(self.links.len());
        assert!(raw.is_ok(), "link count overflows the u32 id space");
        let id = LinkId(raw.unwrap_or(u32::MAX));
        self.links.push(Link {
            a,
            b,
            metric: metric.max(1),
            threshold: threshold.max(1),
            delay,
        });
        self.adjacency[a.index()].push((id, b));
        self.adjacency[b.index()].push((id, a));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..id_u32(self.nodes.len())).map(NodeId)
    }

    /// Node metadata.
    // lint:allow(panic-reach): node ids are minted by add_node and validated there; an out-of-range id is a caller bug in offline topology construction, not wire-reachable state
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node metadata.
    // lint:allow(panic-reach): node ids are minted by add_node and validated there; an out-of-range id is a caller bug in offline topology construction, not wire-reachable state
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Link attributes.
    // lint:allow(panic-reach): link ids are minted by add_link; an out-of-range id is a caller bug in offline topology construction, not wire-reachable state
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbours of `v` as `(link, neighbour)` pairs.
    // lint:allow(panic-reach): adjacency is sized to the node count by add_node; ids are minted there
    pub fn neighbors(&self, v: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[v.index()]
    }

    /// Degree of a node.
    // lint:allow(panic-reach): adjacency is sized to the node count by add_node; ids are minted there
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Whether every node can reach every other node (ignoring TTL).
    // lint:allow(panic-reach): every index comes from the graph's own adjacency lists, always below node_count
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(_, w) in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Return the node ids of the largest connected component.
    ///
    /// The paper removed disconnected subtrees of the mcollect map before
    /// simulating; generators use this for the same clean-up.
    // lint:allow(panic-reach): every index comes from the graph's own adjacency lists, always below node_count
    pub fn largest_component(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut comp = vec![usize::MAX; n];
        let mut sizes: Vec<usize> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = sizes.len();
            let mut size = 0usize;
            let mut stack = vec![NodeId(id_u32(start))];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                size += 1;
                for &(_, w) in self.neighbors(v) {
                    if comp[w.index()] == usize::MAX {
                        comp[w.index()] = c;
                        stack.push(w);
                    }
                }
            }
            sizes.push(size);
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(c, _)| c)
            .unwrap_or(0);
        (0..id_u32(n))
            .map(NodeId)
            .filter(|v| comp[v.index()] == best)
            .collect()
    }

    /// Build a new topology containing only the given nodes (and the links
    /// among them), renumbering node ids densely.  Returns the new
    /// topology and a mapping from old id to new id.
    // lint:allow(panic-reach): the id map is sized to node_count and only minted ids index it; offline topology surgery, not the packet path
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Topology, Vec<Option<NodeId>>) {
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut out = Topology::new();
        for &v in keep {
            let nv = out.add_node(self.nodes[v.index()].clone());
            map[v.index()] = Some(nv);
        }
        for link in &self.links {
            if let (Some(na), Some(nb)) = (map[link.a.index()], map[link.b.index()]) {
                out.add_link(na, nb, link.metric, link.threshold, link.delay);
            }
        }
        (out, map)
    }

    /// The highest TTL threshold configured on any link.
    pub fn max_threshold(&self) -> u8 {
        self.links.iter().map(|l| l.threshold).max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn triangle() -> Topology {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let c = t.add_simple_node();
        t.add_link(a, b, 1, 1, d(1));
        t.add_link(b, c, 1, 1, d(1));
        t.add_link(c, a, 1, 1, d(1));
        t
    }

    #[test]
    fn construction_and_accessors() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
    }

    #[test]
    fn metric_and_threshold_clamped() {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let l = t.add_link(a, b, 0, 0, d(1));
        assert_eq!(t.link(l).metric, 1);
        assert_eq!(t.link(l).threshold, 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        t.add_link(a, a, 1, 1, d(1));
    }

    #[test]
    fn connectivity() {
        let t = triangle();
        assert!(t.is_connected());
        let mut t2 = triangle();
        t2.add_simple_node(); // isolated
        assert!(!t2.is_connected());
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(Topology::new().is_connected());
    }

    #[test]
    fn largest_component_picks_biggest() {
        let mut t = Topology::new();
        // Component 1: pair.
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        t.add_link(a, b, 1, 1, d(1));
        // Component 2: triangle.
        let c = t.add_simple_node();
        let e = t.add_simple_node();
        let f = t.add_simple_node();
        t.add_link(c, e, 1, 1, d(1));
        t.add_link(e, f, 1, 1, d(1));
        t.add_link(f, c, 1, 1, d(1));
        let comp = t.largest_component();
        assert_eq!(comp, vec![c, e, f]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let mut t = Topology::new();
        let a = t.add_simple_node();
        let b = t.add_simple_node();
        let c = t.add_simple_node();
        t.add_link(a, b, 2, 16, d(5));
        t.add_link(b, c, 1, 1, d(1));
        let (sub, map) = t.induced_subgraph(&[b, c]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.link_count(), 1);
        assert_eq!(map[a.index()], None);
        assert_eq!(map[b.index()], Some(NodeId(0)));
        assert_eq!(map[c.index()], Some(NodeId(1)));
        assert_eq!(sub.link(LinkId(0)).metric, 1);
    }

    #[test]
    fn max_threshold() {
        let mut t = triangle();
        assert_eq!(t.max_threshold(), 1);
        let a = t.add_simple_node();
        t.add_link(NodeId(0), a, 1, 64, d(40));
        assert_eq!(t.max_threshold(), 64);
    }
}
