//! Administrative scoping (the paper's Section 1 alternative to TTL
//! scoping; RFC 2365 style).
//!
//! "Administrative scoping is a relatively simple problem domain in
//! that, barring failures, two sites communicating within the scope
//! zone will be able to hear each other's messages, and no site outside
//! the scope zone can get any multicast packet into the scope zone if
//! it uses an address from the scope zone range."
//!
//! A zone is a *convex* region of the topology bounded by filters on an
//! address range: membership is symmetric (unlike TTL zones), so the
//! "informed" part of IPRMA is sufficient inside a zone — which is why
//! the paper notes its "simpler solutions work well for administrative
//! scope zone address allocation".
//!
//! Zones must nest or be disjoint (the RFC 2365 invariant); overlapping
//! zones would make the boundary filters ambiguous.

use crate::graph::{NodeId, Topology};
use crate::nodeset::NodeSet;

/// Identifier of an administrative scope zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub u32);

/// One administrative scope zone: a named node set with a dedicated
/// address sub-range (indices into the admin-scoped address space,
/// e.g. 239.0.0.0/8 in deployment).
#[derive(Debug, Clone)]
pub struct AdminZone {
    /// Zone id.
    pub id: ZoneId,
    /// Human-readable name ("isi-campus", "us-west").
    pub name: String,
    /// Mrouters inside the zone.
    pub members: NodeSet,
    /// Address sub-range `[lo, hi)` reserved for this zone.
    pub range: (u32, u32),
}

/// Errors from zone registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminError {
    /// The zone's members are not connected within the zone — packets
    /// could not reach all members without leaving it.
    NotConvex,
    /// Two zones partially overlap (neither nests inside the other).
    PartialOverlap(ZoneId),
    /// Two zones' address ranges collide without the zones nesting.
    RangeCollision(ZoneId),
    /// Empty member set or empty address range.
    Empty,
    /// The zone count would overflow the `u32` id space.
    TooManyZones,
}

impl std::fmt::Display for AdminError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdminError::NotConvex => write!(f, "zone members are not internally connected"),
            AdminError::PartialOverlap(z) => {
                write!(f, "zone partially overlaps existing zone {}", z.0)
            }
            AdminError::RangeCollision(z) => {
                write!(f, "address range collides with non-nested zone {}", z.0)
            }
            AdminError::Empty => write!(f, "zone has no members or no addresses"),
            AdminError::TooManyZones => write!(f, "zone count overflows the u32 id space"),
        }
    }
}

impl std::error::Error for AdminError {}

/// The set of administrative zones configured on a topology.
#[derive(Debug, Clone, Default)]
pub struct AdminScoping {
    // lint:allow(unbounded-growth): admin zones are operator configuration loaded at startup
    zones: Vec<AdminZone>,
}

impl AdminScoping {
    /// No zones configured.
    pub fn new() -> Self {
        AdminScoping::default()
    }

    /// All zones.
    pub fn zones(&self) -> &[AdminZone] {
        &self.zones
    }

    /// Look up a zone.
    pub fn zone(&self, id: ZoneId) -> Option<&AdminZone> {
        self.zones.iter().find(|z| z.id == id)
    }

    /// Register a zone, enforcing the RFC 2365 invariants:
    /// members connected within the zone (convexity), zones nested or
    /// disjoint, and address ranges shared only between nested zones.
    pub fn add_zone(
        &mut self,
        topo: &Topology,
        name: &str,
        members: NodeSet,
        range: (u32, u32),
    ) -> Result<ZoneId, AdminError> {
        if members.is_empty() || range.1 <= range.0 {
            return Err(AdminError::Empty);
        }
        if !is_internally_connected(topo, &members) {
            return Err(AdminError::NotConvex);
        }
        for z in &self.zones {
            let nested = members.is_subset(&z.members) || z.members.is_subset(&members);
            if members.intersects(&z.members) && !nested {
                return Err(AdminError::PartialOverlap(z.id));
            }
            let ranges_overlap = range.0 < z.range.1 && z.range.0 < range.1;
            if ranges_overlap && !nested {
                return Err(AdminError::RangeCollision(z.id));
            }
        }
        let Ok(raw) = u32::try_from(self.zones.len()) else {
            return Err(AdminError::TooManyZones);
        };
        let id = ZoneId(raw);
        self.zones.push(AdminZone {
            id,
            name: name.to_string(),
            members,
            range,
        });
        Ok(id)
    }

    /// Zones containing `node`, innermost (smallest) first.
    pub fn zones_of(&self, node: NodeId) -> Vec<ZoneId> {
        let mut v: Vec<&AdminZone> = self
            .zones
            .iter()
            .filter(|z| z.members.contains(node))
            .collect();
        v.sort_by_key(|z| z.members.len());
        v.iter().map(|z| z.id).collect()
    }

    /// Whether `a` and `b` can exchange traffic on `zone`'s addresses:
    /// both must be members (the symmetric-visibility property TTL
    /// scoping lacks).
    pub fn can_communicate(&self, zone: ZoneId, a: NodeId, b: NodeId) -> bool {
        self.zone(zone)
            .map(|z| z.members.contains(a) && z.members.contains(b))
            .unwrap_or(false)
    }

    /// Whether a packet sent by `src` on an address in `zone`'s range
    /// can be heard at `dst`.  Non-members can never get zone-range
    /// traffic *into* the zone — the property that makes administrative
    /// allocation easy.
    pub fn zone_traffic_reaches(&self, zone: ZoneId, src: NodeId, dst: NodeId) -> bool {
        self.can_communicate(zone, src, dst)
    }

    /// The zone owning address index `addr`, innermost first.
    pub fn zones_for_address(&self, addr: u32) -> Vec<ZoneId> {
        let mut v: Vec<&AdminZone> = self
            .zones
            .iter()
            .filter(|z| (z.range.0..z.range.1).contains(&addr))
            .collect();
        v.sort_by_key(|z| z.range.1 - z.range.0);
        v.iter().map(|z| z.id).collect()
    }
}

/// Whether the member set is connected using only member-to-member links.
fn is_internally_connected(topo: &Topology, members: &NodeSet) -> bool {
    let Some(start) = members.iter().next() else {
        return true;
    };
    let mut seen = NodeSet::with_capacity(members.capacity());
    let mut stack = vec![start];
    seen.insert(start);
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for &(_, w) in topo.neighbors(v) {
            if members.contains(w) && !seen.contains(w) {
                seen.insert(w);
                count += 1;
                stack.push(w);
            }
        }
    }
    count == members.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_sim::SimDuration;

    /// chain 0-1-2-3-4-5.
    fn chain(n: u32) -> Topology {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| t.add_simple_node()).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], 1, 1, SimDuration::from_millis(1));
        }
        t
    }

    fn set(capacity: usize, ids: &[u32]) -> NodeSet {
        let mut s = NodeSet::with_capacity(capacity);
        for &i in ids {
            s.insert(NodeId(i));
        }
        s
    }

    #[test]
    fn add_and_query_zone() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let z = admin
            .add_zone(&topo, "left", set(6, &[0, 1, 2]), (0, 100))
            .unwrap();
        assert!(admin.can_communicate(z, NodeId(0), NodeId(2)));
        assert!(!admin.can_communicate(z, NodeId(0), NodeId(3)));
        assert_eq!(admin.zones_of(NodeId(1)), vec![z]);
        assert!(admin.zones_of(NodeId(5)).is_empty());
        assert_eq!(admin.zones_for_address(50), vec![z]);
        assert!(admin.zones_for_address(100).is_empty());
    }

    #[test]
    fn disconnected_zone_rejected() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        // 0 and 2 without 1: not convex.
        let err = admin.add_zone(&topo, "holey", set(6, &[0, 2]), (0, 10));
        assert_eq!(err, Err(AdminError::NotConvex));
    }

    #[test]
    fn nesting_allowed_partial_overlap_rejected() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let outer = admin
            .add_zone(&topo, "outer", set(6, &[0, 1, 2, 3]), (0, 100))
            .unwrap();
        // Nested inner zone with nested range: fine.
        let inner = admin
            .add_zone(&topo, "inner", set(6, &[1, 2]), (0, 50))
            .unwrap();
        assert_ne!(outer, inner);
        // Partial overlap (2,3,4 vs 0..3): rejected.
        let err = admin.add_zone(&topo, "straddle", set(6, &[2, 3, 4]), (200, 300));
        assert_eq!(err, Err(AdminError::PartialOverlap(outer)));
    }

    #[test]
    fn range_collision_between_disjoint_zones_rejected() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let left = admin
            .add_zone(&topo, "left", set(6, &[0, 1]), (0, 100))
            .unwrap();
        let err = admin.add_zone(&topo, "right", set(6, &[4, 5]), (50, 150));
        assert_eq!(err, Err(AdminError::RangeCollision(left)));
        // Disjoint ranges are fine — and the same range may then be
        // reused by... no: disjoint zones with disjoint ranges only.
        assert!(admin
            .add_zone(&topo, "right", set(6, &[4, 5]), (100, 200))
            .is_ok());
    }

    #[test]
    fn empty_zone_rejected() {
        let topo = chain(3);
        let mut admin = AdminScoping::new();
        assert_eq!(
            admin.add_zone(&topo, "none", NodeSet::with_capacity(3), (0, 10)),
            Err(AdminError::Empty)
        );
        assert_eq!(
            admin.add_zone(&topo, "norange", set(3, &[0]), (5, 5)),
            Err(AdminError::Empty)
        );
    }

    #[test]
    fn symmetric_visibility_property() {
        // The property TTL scoping lacks: communication within a zone is
        // symmetric by construction.
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let z = admin
            .add_zone(&topo, "z", set(6, &[1, 2, 3]), (0, 16))
            .unwrap();
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(
                    admin.can_communicate(z, NodeId(a), NodeId(b)),
                    admin.can_communicate(z, NodeId(b), NodeId(a)),
                );
            }
        }
    }

    #[test]
    fn outside_traffic_cannot_enter() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let z = admin
            .add_zone(&topo, "z", set(6, &[1, 2, 3]), (0, 16))
            .unwrap();
        // Node 5 is outside: its zone-range traffic reaches no member.
        for member in [1u32, 2, 3] {
            assert!(!admin.zone_traffic_reaches(z, NodeId(5), NodeId(member)));
        }
    }

    #[test]
    fn innermost_zone_first() {
        let topo = chain(6);
        let mut admin = AdminScoping::new();
        let outer = admin
            .add_zone(&topo, "outer", set(6, &[0, 1, 2, 3, 4]), (0, 1000))
            .unwrap();
        let inner = admin
            .add_zone(&topo, "inner", set(6, &[1, 2]), (0, 100))
            .unwrap();
        assert_eq!(admin.zones_of(NodeId(1)), vec![inner, outer]);
        assert_eq!(admin.zones_for_address(10), vec![inner, outer]);
        assert_eq!(admin.zones_for_address(500), vec![outer]);
    }
}
