//! # sdalloc-topology — the multicast network substrate
//!
//! Models everything the paper's simulations need from the network:
//!
//! * a topology graph of mrouters and links carrying DVMRP metrics, TTL
//!   thresholds and propagation delays ([`graph`]);
//! * DVMRP-style per-source shortest-path trees and CBT/PIM-style shared
//!   trees, with exact hop-by-hop TTL-decrement + threshold semantics
//!   ([`routing`]);
//! * scope-zone queries — who hears a session, do two sessions clash —
//!   with bitset-backed caching ([`scope`], [`nodeset`]);
//! * a synthetic 1864-node Mbone map replacing the paper's mcollect data
//!   ([`mbone`]), and the Doar-style generator used by the
//!   request–response simulations ([`doar`]);
//! * hop-count analysis for Figure 10 and its TTL table ([`hopcount`]);
//! * administrative scope zones with RFC 2365 nesting/convexity
//!   invariants ([`admin`]);
//! * a text map format for loading measured topologies ([`mapfile`]);
//! * the ds1–ds4 session TTL workload distributions ([`workload`]).
//!
//! ```
//! use sdalloc_topology::mbone::{MboneMap, MboneParams};
//! use sdalloc_topology::scope::{Scope, ScopeCache};
//!
//! let map = MboneMap::generate(&MboneParams { seed: 1, target_nodes: 200 });
//! let mut scopes = ScopeCache::new(map.topo.clone());
//! let uk_backbone = map.countries.iter().find(|c| c.name == "uk").unwrap().backbone[0];
//! // A UK-national session is invisible outside the UK...
//! let national = Scope::new(uk_backbone, 47);
//! assert!(scopes.zone_size(national) < map.topo.node_count());
//! // ...but a global session from anywhere overlaps (clashes with) it.
//! let global = Scope::new(sdalloc_topology::graph::NodeId(0), 191);
//! assert!(scopes.zones_overlap(national, global));
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod doar;
pub mod graph;
pub mod hopcount;
pub mod mapfile;
pub mod mbone;
pub mod nodeset;
pub mod routing;
pub mod scope;
pub mod workload;

pub use admin::{AdminScoping, AdminZone, ZoneId};
pub use graph::{Link, LinkId, Node, NodeId, Topology, DVMRP_INFINITY};
pub use nodeset::NodeSet;
pub use routing::{SharedTree, SourceTree, SptCache, TTL_UNREACHABLE};
pub use scope::{Scope, ScopeCache};
pub use workload::TtlDistribution;
