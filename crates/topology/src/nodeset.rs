//! A compact bit-set over node ids.
//!
//! Scope-zone computations (which sites can hear a session, whether two
//! sessions' zones overlap) are set operations over up to ~2000 mrouters
//! repeated millions of times inside the steady-state simulations, so we
//! use a fixed-width bitset rather than hash sets.

use crate::graph::NodeId;

/// A set of [`NodeId`]s backed by a bit vector.
///
/// ```
/// use sdalloc_topology::{NodeSet, NodeId};
/// let mut zone_a = NodeSet::with_capacity(64);
/// let mut zone_b = NodeSet::with_capacity(64);
/// zone_a.insert(NodeId(3));
/// zone_b.insert(NodeId(3));
/// zone_b.insert(NodeId(9));
/// assert!(zone_a.intersects(&zone_b)); // the clash test
/// assert!(zone_a.is_subset(&zone_b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSet {
    // lint:bounded: fixed at construction — capacity.div_ceil(64) words for the topology's node count; never grows afterwards
    words: Vec<u64>,
    /// Number of node ids the set was sized for.
    capacity: usize,
}

impl NodeSet {
    /// An empty set able to hold ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in node ids.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a node id.  Panics if out of capacity.
    #[inline]
    // lint:allow(panic-reach): i / 64 is below words.len() whenever i < capacity, which is checked first
    pub fn insert(&mut self, id: NodeId) {
        let i = id.index();
        assert!(
            i < self.capacity,
            "node id {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove a node id (no-op when absent).
    #[inline]
    // lint:allow(panic-reach): i / 64 is below words.len() whenever i < capacity, which is checked first
    pub fn remove(&mut self, id: NodeId) {
        let i = id.index();
        if i < self.capacity {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    // lint:allow(panic-reach): i / 64 is below words.len() whenever i < capacity, which is checked first
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.capacity && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the two sets share any member — the scope-zone overlap
    /// test at the heart of clash detection.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter().chain(std::iter::repeat(&0)))
            .all(|(&a, &b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Remove all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u32 + tz))
                }
            })
        })
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collect ids into a set sized by the largest id seen.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let cap = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut s = NodeSet::with_capacity(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::with_capacity(200);
        assert!(!s.contains(NodeId(5)));
        s.insert(NodeId(5));
        s.insert(NodeId(64));
        s.insert(NodeId(199));
        assert!(s.contains(NodeId(5)));
        assert!(s.contains(NodeId(64)));
        assert!(s.contains(NodeId(199)));
        assert_eq!(s.len(), 3);
        s.remove(NodeId(64));
        assert!(!s.contains(NodeId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersects_and_subset() {
        let mut a = NodeSet::with_capacity(128);
        let mut b = NodeSet::with_capacity(128);
        a.insert(NodeId(3));
        a.insert(NodeId(100));
        b.insert(NodeId(100));
        assert!(a.intersects(&b));
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        b.clear();
        b.insert(NodeId(4));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn union_intersection() {
        let mut a = NodeSet::with_capacity(64);
        let mut b = NodeSet::with_capacity(64);
        a.insert(NodeId(1));
        a.insert(NodeId(2));
        b.insert(NodeId(2));
        b.insert(NodeId(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn iteration_order_ascending() {
        let mut s = NodeSet::with_capacity(300);
        for id in [250u32, 0, 63, 64, 65, 128] {
            s.insert(NodeId(id));
        }
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 128, 250]);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: NodeSet = [NodeId(7), NodeId(2)].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set() {
        let s = NodeSet::with_capacity(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_capacity_panics() {
        let mut s = NodeSet::with_capacity(10);
        s.insert(NodeId(10));
    }
}
