//! Scope-zone queries: who hears a session, and can two sessions clash?
//!
//! Under TTL scoping a session is a `(source, ttl)` pair; its *scope
//! zone* is the set of mrouters its data (and therefore its SAP
//! announcement, which is sent with the same scope) reaches.  Two
//! sessions on the same multicast address **clash** when their scope
//! zones overlap — some receiver could hear both.  Note the asymmetry
//! the paper highlights: zone overlap does not require mutual
//! visibility, because TTL decrements along the path, so A may reach B's
//! zone without B's announcements reaching A.

use std::collections::HashMap;

use crate::graph::{NodeId, Topology};
use crate::nodeset::NodeSet;
use crate::routing::SptCache;

/// A session's scope: where it is sourced and how far it travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scope {
    /// Originating mrouter.
    pub source: NodeId,
    /// Initial TTL of data and announcement packets.
    pub ttl: u8,
}

impl Scope {
    /// Construct a scope.
    pub fn new(source: NodeId, ttl: u8) -> Self {
        Scope { source, ttl }
    }
}

/// Caches reach sets per `(source, ttl)` on top of an [`SptCache`].
///
/// The steady-state simulations test every candidate address against
/// every visible session, so `zones_overlap` and `sees` must be cheap:
/// `sees` is O(1) via the tree's per-node required TTL, and
/// `zones_overlap` is a bitset AND over cached reach sets.
pub struct ScopeCache {
    spt: SptCache,
    // lint:allow(unbounded-growth): memoizes reach sets over a fixed topology; the key domain is nodes x 256 TTLs
    sets: HashMap<Scope, NodeSet>,
}

impl ScopeCache {
    /// Wrap a topology.
    pub fn new(topo: Topology) -> Self {
        ScopeCache {
            spt: SptCache::new(topo),
            sets: HashMap::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        self.spt.topology()
    }

    /// Underlying shortest-path-tree cache.
    pub fn spt(&mut self) -> &mut SptCache {
        &mut self.spt
    }

    /// Whether `observer` hears announcements for `scope` — i.e. whether
    /// the scope's packets reach the observer.
    pub fn sees(&mut self, observer: NodeId, scope: Scope) -> bool {
        self.spt.tree(scope.source).reaches(observer, scope.ttl)
    }

    /// The scope's reach set (cached).
    pub fn reach_set(&mut self, scope: Scope) -> &NodeSet {
        let spt = &mut self.spt;
        self.sets
            .entry(scope)
            .or_insert_with(|| spt.tree(scope.source).reach_set(scope.ttl))
    }

    /// Number of mrouters inside the scope zone.
    pub fn zone_size(&mut self, scope: Scope) -> usize {
        self.reach_set(scope).len()
    }

    /// Whether two sessions with the same address would clash: their
    /// scope zones share at least one mrouter.
    pub fn zones_overlap(&mut self, a: Scope, b: Scope) -> bool {
        // Fast path: each zone contains its own source, so mutual source
        // containment settles most overlapping pairs without set algebra.
        if self.sees(b.source, a) || self.sees(a.source, b) {
            return true;
        }
        // Ensure both sets are cached, then intersect.  `reach_set`
        // inserts any missing entry, so the fallthrough arm is dead; it
        // reads as "no overlap" to keep this path panic-free.
        self.reach_set(a);
        self.reach_set(b);
        match (self.sets.get(&a), self.sets.get(&b)) {
            (Some(sa), Some(sb)) => sa.intersects(sb),
            _ => false,
        }
    }

    /// Number of cached reach sets (for memory accounting in tests).
    pub fn cached_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_sim::SimDuration;

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    /// Two "sites" joined by a threshold-16 boundary link:
    ///   a0 - a1 -[16]- b0 - b1
    fn two_sites() -> Topology {
        let mut t = Topology::new();
        let a0 = t.add_simple_node();
        let a1 = t.add_simple_node();
        let b0 = t.add_simple_node();
        let b1 = t.add_simple_node();
        t.add_link(a0, a1, 1, 1, d(1));
        t.add_link(a1, b0, 1, 16, d(5));
        t.add_link(b0, b1, 1, 1, d(1));
        t
    }

    #[test]
    fn local_scopes_do_not_overlap() {
        let mut cache = ScopeCache::new(two_sites());
        // TTL 15 from a0 stays on the a-side; TTL 15 from b1 stays b-side.
        let sa = Scope::new(NodeId(0), 15);
        let sb = Scope::new(NodeId(3), 15);
        assert!(!cache.zones_overlap(sa, sb));
        // Same-side scopes overlap.
        let sa2 = Scope::new(NodeId(1), 15);
        assert!(cache.zones_overlap(sa, sa2));
    }

    #[test]
    fn global_scope_overlaps_local() {
        let mut cache = ScopeCache::new(two_sites());
        let local = Scope::new(NodeId(0), 15);
        let global = Scope::new(NodeId(3), 127);
        // The asymmetry: the local scope's announcements never reach b1...
        assert!(!cache.sees(NodeId(3), local));
        // ...but the global session reaches the local zone, so they clash.
        assert!(cache.zones_overlap(local, global));
        assert!(cache.zones_overlap(global, local));
    }

    #[test]
    fn sees_is_directional() {
        let mut cache = ScopeCache::new(two_sites());
        // a1 (inside site a) hears a TTL-15 announcement from a0.
        assert!(cache.sees(NodeId(1), Scope::new(NodeId(0), 15)));
        // b0 does not (boundary threshold 16).
        assert!(!cache.sees(NodeId(2), Scope::new(NodeId(0), 15)));
        // But a TTL-18 announcement crosses.
        assert!(cache.sees(NodeId(2), Scope::new(NodeId(0), 18)));
    }

    #[test]
    fn zone_sizes() {
        let mut cache = ScopeCache::new(two_sites());
        assert_eq!(cache.zone_size(Scope::new(NodeId(0), 1)), 1);
        assert_eq!(cache.zone_size(Scope::new(NodeId(0), 15)), 2);
        assert_eq!(cache.zone_size(Scope::new(NodeId(0), 127)), 4);
    }

    #[test]
    fn reach_sets_are_cached() {
        let mut cache = ScopeCache::new(two_sites());
        let s = Scope::new(NodeId(0), 15);
        cache.reach_set(s);
        cache.reach_set(s);
        assert_eq!(cache.cached_sets(), 1);
    }

    #[test]
    fn overlap_is_symmetric_property() {
        let mut cache = ScopeCache::new(two_sites());
        let scopes = [
            Scope::new(NodeId(0), 1),
            Scope::new(NodeId(0), 15),
            Scope::new(NodeId(1), 18),
            Scope::new(NodeId(2), 15),
            Scope::new(NodeId(3), 127),
        ];
        for &x in &scopes {
            for &y in &scopes {
                assert_eq!(
                    cache.zones_overlap(x, y),
                    cache.zones_overlap(y, x),
                    "asymmetric overlap for {x:?} {y:?}"
                );
            }
        }
    }

    #[test]
    fn scope_always_overlaps_itself() {
        let mut cache = ScopeCache::new(two_sites());
        let s = Scope::new(NodeId(2), 15);
        assert!(cache.zones_overlap(s, s));
    }
}
