//! `cargo xtask` — the workspace's own static-analysis tool.
//!
//! * `cargo xtask check` — run the lexical lint pass, the invariant
//!   verifier and the semantic lint tier; exit non-zero if any finds a
//!   violation.
//! * `cargo xtask check --semantic` — semantic tier only (call graph +
//!   panic-reach / hot-alloc / unbounded-growth, plus the dataflow
//!   tier: wire-taint / hot-path-scan / read-path-purity).
//!   * `--json` — emit the SARIF-lite report on stdout instead of text.
//!   * `--update-baseline` — rewrite `crates/xtask/semantic-baseline.txt`
//!     from the current findings and exit successfully.
//! * `cargo xtask check --explain <rule>` — print a rule's contract and
//!   suppression syntax.
//! * `cargo xtask lint` — lexical lint pass only.
//! * `cargo xtask invariants` — invariant verifier only.
//! * `cargo xtask model` — bounded explicit-state model checking of the
//!   clash and request–response protocols (`--smoke` for the
//!   depth-limited CI slice).
//!
//! No external dependencies: the lexical pass is a line scanner, the
//! semantic tier is a hand-rolled lexer + item parser + call graph over
//! the workspace's own sources (see `lexer.rs`, `callgraph.rs`,
//! `semantic.rs`), and the verifier and model checker drive the real
//! `sdalloc-core` / `sdalloc-rr` artifacts.  See DESIGN.md "Static
//! analysis and verification".

mod callgraph;
mod dataflow;
mod invariants;
mod lexer;
mod lint;
mod model;
mod semantic;

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// CI wall-time budget for the semantic tier (ISSUE 6: the gate must
/// stay under 10 seconds so it can run on every push).
const SEMANTIC_BUDGET_MS: u128 = 10_000;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map_or(manifest.clone(), PathBuf::from)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map_or("check", String::as_str);
    let flag = |name: &str| args.iter().any(|a| a == name);
    match mode {
        "check" => {
            if let Some(pos) = args.iter().position(|a| a == "--explain") {
                return explain(args.get(pos + 1).map(String::as_str));
            }
            let semantic_only = flag("--semantic");
            run(
                !semantic_only,
                !semantic_only,
                SemanticMode {
                    enabled: true,
                    json: flag("--json"),
                    update_baseline: flag("--update-baseline"),
                },
            )
        }
        "lint" => run(true, false, SemanticMode::off()),
        "invariants" => run(false, true, SemanticMode::off()),
        "model" => {
            let smoke = flag("--smoke");
            if model::run(smoke) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: cargo xtask [check [--semantic] [--json] [--update-baseline] [--explain <rule>]|lint|invariants|model [--smoke]]"
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "unknown command `{other}`; usage: cargo xtask [check [--semantic] [--json] [--update-baseline] [--explain <rule>]|lint|invariants|model [--smoke]]"
            );
            ExitCode::FAILURE
        }
    }
}

/// `cargo xtask check --explain <rule>`: the contract and suppression
/// syntax of every semantic rule, kept here so CI output can point
/// developers at one command instead of at the sources.
fn explain(rule: Option<&str>) -> ExitCode {
    const RULES: &[(&str, &str, &str)] = &[
        (
            "panic-reach",
            "In the panic-scoped crates (core, sap, rr, sim, topology, chaos) no\n\
             non-test function may contain a direct panic source (unwrap/expect/\n\
             panic!/todo!/unimplemented!/index expressions), and no public function\n\
             may transitively reach one through workspace calls.  A reachable panic\n\
             takes the whole daemon down.",
            "`// lint:allow(panic-reach): <reason>` on the source line, or on/above\n\
             the fn signature to waive the whole function.",
        ),
        (
            "hot-alloc",
            "Functions reachable from the event-core hot roots (SessionDirectory::\n\
             {on_timer,on_packet,next_deadline}, AnnouncementCache::{purge_expired,\n\
             purge_stale}, SapPacket::decode) must not heap-allocate (format!/vec!/\n\
             Vec::new/.clone()/.to_vec()/.collect()/…).  Per-packet allocation is\n\
             the scaling bottleneck of the million-session arc.",
            "`// lint:allow(hot-alloc): <reason>` on the allocating line, or\n\
             on/above the fn signature.",
        ),
        (
            "unbounded-growth",
            "A collection-typed struct field with insert-side calls but no evict\n\
             side (remove/retain/drain/mem::take/reassignment) anywhere in its\n\
             owner's methods leaks in a long-running daemon.",
            "`// lint:allow(unbounded-growth): <reason>` on or above the field\n\
             declaration.",
        ),
        (
            "wire-taint",
            "Values derived from the wire (SapPacket/SessionDescription-typed\n\
             params; returns of SapPacket::decode, the sdp.rs parsers and net.rs\n\
             recv paths) must pass a registered sanitizer before reaching a sink:\n\
             allocation-range arithmetic in core (hier/static_ipr/partition_map),\n\
             a TimerQueue::schedule deadline, or a cache-growth insert on a self\n\
             collection.  Every fact a directory holds arrives in an adversarial\n\
             SAP packet; unvalidated wire data must not drive allocator or timer\n\
             arithmetic.  The finding message carries the source→sink chain.",
            "Register a validator with `// lint:sanitizer(wire-taint): <reason>`\n\
             on/above its fn signature (calls through it cleanse the value), or\n\
             suppress one sink with `// lint:allow(wire-taint): <reason>` on the\n\
             sink line (fn-signature placement waives the whole function).",
        ),
        (
            "hot-path-scan",
            "Iteration sites (`for` over self.<field>, .iter()/.values()/.keys()/\n\
             .retain()/.drain() on one) over unbounded collection-typed fields are\n\
             flagged in functions reachable from the event-core hot roots: an O(n)\n\
             full scan on a per-packet path caps the cache size the runtime can\n\
             sustain.",
            "`// lint:bounded: <why the size is a constant>` on/above the field\n\
             declaration (bound evidence), or `// lint:allow(hot-path-scan):\n\
             <reason>` on the scan line or fn signature.",
        ),
        (
            "read-path-purity",
            "Every `&self` pub fn on SessionDirectory/AnnouncementCache is a query\n\
             root certified write-free: following self-rooted calls, the analysis\n\
             flags any reachable `&mut self` method, mutating self.<field>\n\
             operation, or interior-mutability op (borrow_mut/lock/store/fetch_*/\n\
             compare_exchange).  The lock-free concurrent read path (ROADMAP item\n\
             2) assumes single-writer/snapshot-reader queries.",
            "`// lint:allow(read-path-purity): <reason>` on the offending line, on\n\
             the offending helper's signature, or on the query root's signature.",
        ),
    ];
    match rule.and_then(|r| RULES.iter().find(|(n, _, _)| *n == r)) {
        Some((name, contract, suppress)) => {
            println!("rule: {name}\n\ncontract:\n{contract}\n\nsuppression:\n{suppress}");
            ExitCode::SUCCESS
        }
        None => {
            if let Some(r) = rule {
                eprintln!("unknown rule `{r}`");
            }
            eprintln!(
                "usage: cargo xtask check --explain <rule>\nrules: {}",
                RULES
                    .iter()
                    .map(|(n, _, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            if rule.is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

struct SemanticMode {
    enabled: bool,
    json: bool,
    update_baseline: bool,
}

impl SemanticMode {
    fn off() -> Self {
        SemanticMode {
            enabled: false,
            json: false,
            update_baseline: false,
        }
    }
}

fn run(do_lint: bool, do_invariants: bool, sem: SemanticMode) -> ExitCode {
    let mut failed = false;

    if do_lint {
        let (findings, scanned) = lint::run(&workspace_root());
        if findings.is_empty() {
            println!("lint: OK ({scanned} files scanned)");
        } else {
            failed = true;
            println!("lint: {} violation(s) in {scanned} files:", findings.len());
            for f in &findings {
                println!("  {f}");
            }
        }
    }

    if do_invariants {
        let report = invariants::run();
        if report.failures.is_empty() {
            println!("invariants: OK ({} checks)", report.checks);
        } else {
            failed = true;
            println!(
                "invariants: {} of {} checks FAILED:",
                report.failures.len(),
                report.checks
            );
            for f in &report.failures {
                println!("  {f}");
            }
        }
    }

    if sem.enabled && !run_semantic(&sem) {
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run the semantic tier; returns `true` on a passing gate.
fn run_semantic(sem: &SemanticMode) -> bool {
    let root = workspace_root();
    // Wall clock is legal here (see WALL_CLOCK_EXEMPT): this measures
    // the checker's own CI budget, not protocol time.
    let t0 = Instant::now();
    let files = semantic::load_workspace_files(&root);
    let baseline_path = root.join("crates/xtask/semantic-baseline.txt");
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    let report = semantic::analyze(&files, baseline.as_deref());
    let elapsed_ms = t0.elapsed().as_millis();

    if sem.update_baseline {
        let text = report.baseline_text();
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("semantic: cannot write {}: {e}", baseline_path.display());
            return false;
        }
        println!(
            "semantic: baseline updated ({} finding(s) recorded, {} stale entr{} dropped)",
            report.findings.len(),
            report.stale.len(),
            if report.stale.len() == 1 { "y" } else { "ies" }
        );
        return true;
    }

    let gate = report.gate_failures(elapsed_ms, SEMANTIC_BUDGET_MS);

    if sem.json {
        println!("{}", report.to_json(elapsed_ms));
    } else {
        println!(
            "semantic: {} files, {} fns, {} call sites — {:.1}% classified ({} workspace, {} external, {} unresolved) in {elapsed_ms}ms",
            report.files_scanned,
            report.fn_count,
            report.stats.total,
            report.stats.classified_pct(),
            report.stats.workspace,
            report.stats.external,
            report.stats.unresolved,
        );
        let new: Vec<_> = report.new_findings().collect();
        println!(
            "semantic: {} finding(s) — {} baselined, {} new",
            report.findings.len(),
            report.findings.len() - new.len(),
            new.len()
        );
        for f in &new {
            println!("  NEW {}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        for k in &report.stale {
            println!("  stale baseline entry (fixed? run --update-baseline): {k}");
        }
    }
    if gate.is_empty() {
        if !sem.json {
            println!("semantic: OK");
        }
        true
    } else {
        for g in &gate {
            eprintln!("semantic: FAIL: {g}");
        }
        false
    }
}
