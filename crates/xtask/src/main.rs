//! `cargo xtask` — the workspace's own static-analysis tool.
//!
//! * `cargo xtask check` — run the custom lint pass and the invariant
//!   verifier; exit non-zero if either finds a violation.
//! * `cargo xtask lint` — lint pass only.
//! * `cargo xtask invariants` — invariant verifier only.
//! * `cargo xtask model` — bounded explicit-state model checking of the
//!   clash and request–response protocols (`--smoke` for the
//!   depth-limited CI slice).
//!
//! No external dependencies: the lint pass is a lexical scanner over
//! the workspace's own sources, and the verifier and model checker
//! drive the real `sdalloc-core` / `sdalloc-rr` artifacts.  See
//! DESIGN.md "Static analysis and verification".

mod invariants;
mod lint;
mod model;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map_or(manifest.clone(), PathBuf::from)
}

fn main() -> ExitCode {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "check".to_string());
    match mode.as_str() {
        "check" => run(true, true),
        "lint" => run(true, false),
        "invariants" => run(false, true),
        "model" => {
            let smoke = std::env::args().nth(2).as_deref() == Some("--smoke");
            if model::run(smoke) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "help" | "--help" | "-h" => {
            eprintln!("usage: cargo xtask [check|lint|invariants|model [--smoke]]");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "unknown command `{other}`; usage: cargo xtask [check|lint|invariants|model [--smoke]]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(do_lint: bool, do_invariants: bool) -> ExitCode {
    let mut failed = false;

    if do_lint {
        let (findings, scanned) = lint::run(&workspace_root());
        if findings.is_empty() {
            println!("lint: OK ({scanned} files scanned)");
        } else {
            failed = true;
            println!("lint: {} violation(s) in {scanned} files:", findings.len());
            for f in &findings {
                println!("  {f}");
            }
        }
    }

    if do_invariants {
        let report = invariants::run();
        if report.failures.is_empty() {
            println!("invariants: OK ({} checks)", report.checks);
        } else {
            failed = true;
            println!(
                "invariants: {} of {} checks FAILED:",
                report.failures.len(),
                report.checks
            );
            for f in &report.failures {
                println!("  {f}");
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
