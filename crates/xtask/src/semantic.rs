//! The semantic lint tier: interprocedural analyses over the workspace
//! call graph ([`crate::callgraph`]).
//!
//! Three reachability rules live here; three dataflow rules
//! (wire-taint, hot-path-scan, read-path-purity) live in
//! [`crate::dataflow`] and are merged into the same report, baseline
//! and gate.  The reachability rules, each replacing or extending what
//! the lexical pass (`lint.rs`) could only approximate per-line:
//!
//! * **panic-reach** — in the panic-free crates, every function with a
//!   direct panic source (`unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!`/index expressions `x[i]`) is reported, and every
//!   *public* function that transitively reaches such a source through
//!   helpers is classified with the offending call chain.  This
//!   supersedes the old lexical `panic-path` rule: it additionally
//!   catches slice/array/map indexing and panics smuggled through a
//!   helper two calls down.
//! * **hot-alloc** — functions reachable from the per-announcement hot
//!   paths (`SessionDirectory::{on_timer,on_packet,next_deadline}`, the
//!   `AnnouncementCache` purge entry points, `SapPacket::decode`) are
//!   flagged for heap-allocating calls (`format!`, `vec!`, `Vec::new`,
//!   `.clone()`, `.to_vec()`, `.collect()`, …) unless the call carries
//!   a justified allow marker.
//! * **unbounded-growth** — a collection-typed struct field with
//!   insert-side method calls but no evict side (remove/retain/drain/
//!   `mem::take`/reassignment) anywhere in its owner's methods is a
//!   leak in a long-running daemon.
//!
//! Suppression uses the same marker syntax as the lexical pass —
//! `lint:allow(<rule>): <reason>` in a comment on the offending line
//! (the panic/alloc source line, the field declaration line, or the
//! `fn` signature line to waive a whole entry point; for declarations
//! the marker may also sit on a comment or attribute line directly
//! above the signature) — and the reason is mandatory
//! (`allow-justification` in the lexical pass enforces that).
//!
//! Findings are deterministically ordered and diffed against the
//! committed baseline `crates/xtask/semantic-baseline.txt`: only *new*
//! findings (absent from the baseline) fail the gate, so the tier can
//! land with known, documented debt while preventing regressions.
//! Baseline keys are line-number-free (`rule|file|function|detail`) so
//! unrelated edits do not churn the file.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::callgraph::{self, SourceFile};
use crate::lint::allow_marker;

/// Source scanned into the call graph: the library crates plus the
/// chaos harness (panic-scoped since PR 5) and the production runtime
/// (its snapshot read path is query-rooted since PR 11).
const GRAPH_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
    "crates/topology/src/",
    "crates/telemetry/src/",
    "crates/experiments/src/chaos.rs",
    "crates/runtime/src/",
];

/// Crates whose non-test source must be panic-free (moved here from the
/// lexical pass when `panic-path` was superseded by `panic-reach`).
/// `telemetry` is scanned into the graph — so a panic there is caught
/// when a scoped public function reaches it — but is not itself
/// panic-scoped: it is observability plumbing, not protocol code.
/// Likewise the runtime's *snapshot* module is panic-scoped (readers
/// must never unwind while holding an epoch pin) while its thread
/// harness files (`driver`, `bus`, `soak`, `clock`) are graph-scanned
/// only: joining a thread it spawned or poisoning recovery are the
/// harness's business, same as the chaos harness's dense indices.
const PANIC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
    "crates/topology/src/",
    "crates/experiments/src/chaos.rs",
    "crates/runtime/src/snapshot.rs",
];

/// Hot-path analysis roots: `(self type, method)`.  Shared with the
/// dataflow tier's hot-path-scan rule.
pub(crate) const HOT_ROOTS: &[(&str, &str)] = &[
    ("SessionDirectory", "on_timer"),
    ("SessionDirectory", "on_packet"),
    ("SessionDirectory", "next_deadline"),
    ("AnnouncementCache", "purge_expired"),
    ("AnnouncementCache", "purge_stale"),
    ("AnnouncementCache", "observe_announce_ref"),
    ("SapPacket", "decode"),
    ("SapFrame", "decode"),
    ("DescRef", "parse"),
];

/// Field methods that grow a collection.
const INSERT_OPS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "entry",
    "resize",
    "get_or_insert_with",
];

/// Field methods (or recorded patterns) that shrink or rebound one:
/// `take-arg`/`append-arg`/`replace-arg` are `mem::take(&mut self.f)`
/// style drains, `=` is whole-field reassignment.
const EVICT_OPS: &[&str] = &[
    "pop",
    "pop_back",
    "pop_front",
    "remove",
    "remove_entry",
    "swap_remove",
    "clear",
    "retain",
    "retain_mut",
    "drain",
    "truncate",
    "split_off",
    "dedup",
    "take-arg",
    "append-arg",
    "replace-arg",
    "=",
];

/// One semantic finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `panic-reach`, `hot-alloc` or `unbounded-growth`.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (the source, the field, or the entry signature).
    pub line: u32,
    /// Qualified function (or `Owner::field` for unbounded-growth).
    pub function: String,
    /// Line-number-free discriminator used in the baseline key.
    pub detail: String,
    /// Human-readable explanation (chains, counts, line lists).
    pub message: String,
    /// Whether the finding is absent from the committed baseline.
    pub is_new: bool,
}

impl Finding {
    /// Stable baseline key: no line numbers, so unrelated edits above a
    /// finding do not churn the baseline.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.rule, self.file, self.function, self.detail
        )
    }
}

/// The full analysis result.
#[derive(Debug)]
pub struct Report {
    /// All findings (baseline-known and new), deterministically sorted
    /// by `(rule, file, line, function, detail)`.
    pub findings: Vec<Finding>,
    /// Baseline keys that no longer match any finding (fixed debt —
    /// prune with `--update-baseline`).
    pub stale: Vec<String>,
    /// Call-site resolution statistics.
    pub stats: callgraph::ResolutionStats,
    /// Files scanned into the graph.
    pub files_scanned: usize,
    /// Functions parsed.
    pub fn_count: usize,
    /// Hot-path roots that were expected but not found in source (a
    /// rename here would silently disable the hot-alloc analysis, so
    /// the gate treats any entry as a failure).
    pub roots_missing: Vec<String>,
    /// Entries loaded from the baseline file.
    pub baseline_entries: usize,
}

impl Report {
    /// Findings not covered by the baseline.
    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_new)
    }

    /// Gate verdict: the list of failure reasons (empty = pass).
    /// `elapsed_ms` is the measured wall time of the analysis;
    /// `budget_ms` the CI budget.
    pub fn gate_failures(&self, elapsed_ms: u128, budget_ms: u128) -> Vec<String> {
        let mut out = Vec::new();
        let new = self.new_findings().count();
        if new > 0 {
            out.push(format!(
                "{new} new finding(s) not in crates/xtask/semantic-baseline.txt (fix them, add a `lint:allow(<rule>): <reason>` marker, or run `cargo xtask check --semantic --update-baseline`)"
            ));
        }
        if !self.roots_missing.is_empty() {
            out.push(format!(
                "hot-path root(s) not found in source: {} (renamed? update HOT_ROOTS in crates/xtask/src/semantic.rs)",
                self.roots_missing.join(", ")
            ));
        }
        if self.stats.classified_pct() < 97.0 {
            out.push(format!(
                "call-graph resolution {:.1}% < 97% ({} of {} call sites unclassified; top: {})",
                self.stats.classified_pct(),
                self.stats.unresolved,
                self.stats.total,
                self.stats
                    .top_unresolved
                    .iter()
                    .take(5)
                    .map(|(n, c)| format!("{n}×{c}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if elapsed_ms > budget_ms {
            out.push(format!(
                "semantic pass took {elapsed_ms}ms, over the {budget_ms}ms budget"
            ));
        }
        out
    }

    /// The baseline file contents representing the current findings.
    pub fn baseline_text(&self) -> String {
        let mut keys: Vec<String> = self.findings.iter().map(Finding::key).collect();
        keys.sort();
        keys.dedup();
        let mut out = String::from(
            "# Semantic lint baseline — known findings tolerated by the gate.\n\
             # One `rule|file|function|detail` key per line; regenerate with\n\
             # `cargo xtask check --semantic --update-baseline`.  New findings\n\
             # (keys not listed here) fail `cargo xtask check`.\n",
        );
        for k in &keys {
            out.push_str(k);
            out.push('\n');
        }
        out
    }

    /// SARIF-lite JSON for machine consumption (`--json`).
    pub fn to_json(&self, elapsed_ms: u128) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"tool\": {\"name\": \"xtask-semantic\", \"version\": \"1\"},\n");
        s.push_str(&format!(
            "  \"stats\": {{\"files\": {}, \"functions\": {}, \"call_sites\": {}, \"workspace_resolved\": {}, \"external\": {}, \"unresolved\": {}, \"classified_pct\": {:.1}, \"elapsed_ms\": {}, \"top_unresolved\": [{}]}},\n",
            self.files_scanned,
            self.fn_count,
            self.stats.total,
            self.stats.workspace,
            self.stats.external,
            self.stats.unresolved,
            self.stats.classified_pct(),
            elapsed_ms,
            self.stats
                .top_unresolved
                .iter()
                .map(|(n, c)| format!("{{\"name\": \"{}\", \"count\": {c}}}", jesc(n)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"results\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"ruleId\": \"{}\", \"level\": \"{}\", \"baseline\": \"{}\", \"location\": {{\"file\": \"{}\", \"line\": {}}}, \"function\": \"{}\", \"key\": \"{}\", \"message\": \"{}\"}}{}\n",
                f.rule,
                if f.is_new { "error" } else { "note" },
                if f.is_new { "new" } else { "existing" },
                jesc(&f.file),
                f.line,
                jesc(&f.function),
                jesc(&f.key()),
                jesc(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"baseline\": {{\"file\": \"crates/xtask/semantic-baseline.txt\", \"entries\": {}, \"new\": {}, \"stale\": [{}]}}\n}}\n",
            self.baseline_entries,
            self.new_findings().count(),
            self.stale
                .iter()
                .map(|k| format!("\"{}\"", jesc(k)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s
    }
}

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Load the graph-scoped source files from disk, sorted by path.
pub fn load_workspace_files(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for scope in GRAPH_SCOPE {
        let abs = root.join(scope);
        if scope.ends_with(".rs") {
            if let Ok(source) = fs::read_to_string(&abs) {
                out.push(SourceFile {
                    rel: (*scope).to_string(),
                    source,
                });
            }
        } else {
            collect_rs(&abs, root, &mut out);
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(source) = fs::read_to_string(&path) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(SourceFile { rel, source });
            }
        }
    }
}

/// Run all three analyses over `files`, diffing against the baseline
/// file contents (if any).
pub fn analyze(files: &[SourceFile], baseline: Option<&str>) -> Report {
    let graph = callgraph::build(files);
    let lines: BTreeMap<&str, Vec<&str>> = files
        .iter()
        .map(|f| (f.rel.as_str(), f.source.lines().collect()))
        .collect();
    // Justified `lint:allow(<rule>): <reason>` on a given line?
    let allowed = |file: &str, line: u32, rule: &str| -> bool {
        line != 0
            && lines
                .get(file)
                .and_then(|ls| ls.get(line as usize - 1))
                .is_some_and(|l| allow_marker(l, rule))
    };
    // Declaration-level suppression: the marker may sit on the
    // signature/field line itself or on any of the contiguous comment /
    // attribute lines directly above it (the natural place for a
    // justification that does not fit in a trailing comment).
    let sig_allowed = |file: &str, line: u32, rule: &str| -> bool {
        if allowed(file, line, rule) {
            return true;
        }
        let Some(ls) = lines.get(file) else {
            return false;
        };
        let mut i = line as usize - 1; // 0-based index of the decl line
        while i > 0 {
            i -= 1;
            let Some(l) = ls.get(i).map(|l| l.trim_start()) else {
                break;
            };
            if l.starts_with("//") || l.starts_with("#[") {
                if allow_marker(l, rule) {
                    return true;
                }
            } else {
                break;
            }
        }
        false
    };

    // Per-function panic/alloc sources surviving suppression.
    let panics: Vec<Vec<&callgraph::PanicSrc>> = graph
        .fns
        .iter()
        .map(|f| {
            if sig_allowed(&f.file, f.line, "panic-reach") {
                Vec::new()
            } else {
                f.panics
                    .iter()
                    .filter(|p| !allowed(&f.file, p.line, "panic-reach"))
                    .collect()
            }
        })
        .collect();
    let allocs: Vec<Vec<&callgraph::AllocSrc>> = graph
        .fns
        .iter()
        .map(|f| {
            if sig_allowed(&f.file, f.line, "hot-alloc") {
                Vec::new()
            } else {
                f.allocs
                    .iter()
                    .filter(|a| !allowed(&f.file, a.line, "hot-alloc"))
                    .collect()
            }
        })
        .collect();

    let mut findings = Vec::new();

    // ---- panic-reach: direct sources in scoped functions. ----
    let in_panic_scope = |file: &str| -> bool { PANIC_SCOPE.iter().any(|p| file.starts_with(p)) };
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || !in_panic_scope(&f.file) || panics[i].is_empty() {
            continue;
        }
        // One finding per distinct source kind, lines aggregated.
        let mut by_what: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for p in &panics[i] {
            by_what.entry(p.what).or_default().push(p.line);
        }
        for (what, mut ls) in by_what {
            ls.sort_unstable();
            findings.push(Finding {
                rule: "panic-reach",
                file: f.file.clone(),
                line: ls[0],
                function: f.qual_name(),
                detail: format!("direct {what}"),
                message: format!(
                    "`{what}` x{} (line{} {}) in `{}`; a reachable panic takes the daemon down — use checked access or a justified allow",
                    ls.len(),
                    if ls.len() == 1 { "" } else { "s" },
                    ls.iter().map(u32::to_string).collect::<Vec<_>>().join(", "),
                    f.qual_name(),
                ),
                is_new: false,
            });
        }
    }

    // ---- panic-reach: transitive classification of public API fns. ----
    for (e, f) in graph.fns.iter().enumerate() {
        if f.is_test
            || !f.is_pub
            || !in_panic_scope(&f.file)
            || sig_allowed(&f.file, f.line, "panic-reach")
        {
            continue;
        }
        let parent = graph.reach_forward(&[e]);
        // First offender in deterministic (file, position) order.
        let offender = (0..graph.fns.len())
            .filter(|&v| v != e && parent[v].is_some() && !panics[v].is_empty())
            .min_by_key(|&v| (&graph.fns[v].file, graph.fns[v].line));
        if let Some(v) = offender {
            let o = &graph.fns[v];
            let chain = graph.chain_to(&parent, v).join(" -> ");
            let what = panics[v][0].what;
            findings.push(Finding {
                rule: "panic-reach",
                file: f.file.clone(),
                line: f.line,
                function: f.qual_name(),
                detail: format!("via {}@{}", o.qual_name(), o.file),
                message: format!(
                    "pub fn `{}` can transitively reach `{what}` in `{}` ({}:{}); chain: {chain}",
                    f.qual_name(),
                    o.qual_name(),
                    o.file,
                    panics[v][0].line,
                ),
                is_new: false,
            });
        }
    }

    // ---- hot-alloc: allocation discipline under the hot roots. ----
    let mut roots = Vec::new();
    let mut roots_missing = Vec::new();
    for (ty, name) in HOT_ROOTS {
        let ids = graph.find_methods(ty, name);
        let live: Vec<usize> = ids.into_iter().filter(|&i| !graph.fns[i].is_test).collect();
        if live.is_empty() {
            roots_missing.push(format!("{ty}::{name}"));
        } else {
            roots.extend(live);
        }
    }
    let parent = graph.reach_forward(&roots);
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || parent[i].is_none() || allocs[i].is_empty() {
            continue;
        }
        let chain = graph.chain_to(&parent, i).join(" -> ");
        let mut by_what: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for a in &allocs[i] {
            by_what.entry(a.what.as_str()).or_default().push(a.line);
        }
        for (what, mut ls) in by_what {
            ls.sort_unstable();
            findings.push(Finding {
                rule: "hot-alloc",
                file: f.file.clone(),
                line: ls[0],
                function: f.qual_name(),
                detail: format!("alloc {what}"),
                message: format!(
                    "`{what}` x{} (line{} {}) in `{}` on the announcement hot path ({chain}); hoist the allocation or justify it with an allow marker",
                    ls.len(),
                    if ls.len() == 1 { "" } else { "s" },
                    ls.iter().map(u32::to_string).collect::<Vec<_>>().join(", "),
                    f.qual_name(),
                ),
                is_new: false,
            });
        }
    }

    // ---- unbounded-growth: insert-side fields with no evict side. ----
    for fd in &graph.fields {
        if fd.is_test || sig_allowed(&fd.file, fd.line, "unbounded-growth") {
            continue;
        }
        let mut inserts: BTreeSet<&str> = BTreeSet::new();
        let mut evicts = false;
        for f in &graph.fns {
            if f.is_test || f.crate_name != fd.crate_name {
                continue;
            }
            let owns = f.self_ty.as_deref() == Some(fd.owner.as_str());
            for op in &f.field_ops {
                if op.field != fd.name {
                    continue;
                }
                // Direct `self.<field>` ops are attributed to the owner;
                // nested `self.a.<field>` paths have an unknown owner
                // and count only as same-crate evict-side evidence (an
                // over-approximated insert would fabricate findings, an
                // over-approximated evict merely tempers one).
                if op.nested {
                    evicts |= EVICT_OPS.contains(&op.op.as_str());
                } else if owns {
                    if INSERT_OPS.contains(&op.op.as_str()) {
                        inserts.insert(op.op.as_str());
                    }
                    evicts |= EVICT_OPS.contains(&op.op.as_str());
                }
            }
        }
        if !inserts.is_empty() && !evicts {
            findings.push(Finding {
                rule: "unbounded-growth",
                file: fd.file.clone(),
                line: fd.line,
                function: format!("{}::{}", fd.owner, fd.name),
                detail: "insert-without-evict".to_string(),
                message: format!(
                    "{} field `{}::{}` grows via {} but no method of `{}` ever removes from it; a long-running directory leaks — add an eviction path or justify with an allow marker",
                    fd.collection,
                    fd.owner,
                    fd.name,
                    inserts
                        .iter()
                        .map(|o| format!("`{o}`"))
                        .collect::<Vec<_>>()
                        .join("/"),
                    fd.owner,
                ),
                is_new: false,
            });
        }
    }

    // ---- dataflow tier: wire-taint, hot-path-scan, read-path-purity ----
    let ctx = crate::dataflow::Ctx::new(files);
    findings.extend(crate::dataflow::run(&graph, &ctx));

    // ---- deterministic order + baseline diff. ----
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.function, &a.detail).cmp(&(
            b.rule,
            &b.file,
            b.line,
            &b.function,
            &b.detail,
        ))
    });
    let baseline_keys: BTreeSet<String> = baseline
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for f in &mut findings {
        let k = f.key();
        f.is_new = !baseline_keys.contains(&k);
        seen.insert(k);
    }
    let stale: Vec<String> = baseline_keys.difference(&seen).cloned().collect();

    Report {
        findings,
        stale,
        stats: graph.stats.clone(),
        files_scanned: files.len(),
        fn_count: graph.fns.len(),
        roots_missing,
        baseline_entries: baseline_keys.len(),
    }
}

// ---------------------------------------------------------------------
// Seeded-mutant self-test corpus: each analysis is proven to fire on a
// planted violation, to respect a justified suppression, and to stay
// quiet on clean code.  Fixtures live in crates/xtask/fixtures/semantic
// so they are reviewable files, not string soup.
// ---------------------------------------------------------------------
#[cfg(test)]
mod tests {
    use super::*;

    const PANIC_MUTANT: &str = include_str!("../fixtures/semantic/panic_mutant.rs");
    const HOT_ALLOC_MUTANT: &str = include_str!("../fixtures/semantic/hot_alloc_mutant.rs");
    const UNBOUNDED_MUTANT: &str = include_str!("../fixtures/semantic/unbounded_mutant.rs");
    const SUPPRESSED: &str = include_str!("../fixtures/semantic/suppressed.rs");
    const CLEAN: &str = include_str!("../fixtures/semantic/clean.rs");

    fn run(files: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: (*rel).to_string(),
                source: (*src).to_string(),
            })
            .collect();
        analyze(&files, None)
    }

    #[test]
    fn panic_mutant_fires_direct_and_transitive() {
        let r = run(&[("crates/core/src/panic_mutant.rs", PANIC_MUTANT)]);
        let direct: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "panic-reach" && f.detail.starts_with("direct"))
            .collect();
        assert!(
            direct
                .iter()
                .any(|f| f.function == "resolve_slot" && f.detail == "direct unwrap"),
            "{:?}",
            r.findings
        );
        let transitive: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "panic-reach" && f.detail.starts_with("via "))
            .collect();
        assert!(
            transitive
                .iter()
                .any(|f| f.function == "acquire" && f.message.contains("acquire -> resolve_slot")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn hot_alloc_mutant_fires_below_root() {
        let r = run(&[("crates/sap/src/hot_alloc_mutant.rs", HOT_ALLOC_MUTANT)]);
        assert!(r.roots_missing.is_empty(), "{:?}", r.roots_missing);
        let hits: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "hot-alloc")
            .collect();
        assert!(
            hits.iter().any(|f| {
                f.function == "SessionDirectory::record"
                    && f.detail == "alloc format!"
                    && f.message.contains("on_packet -> ")
            }),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn unbounded_mutant_fires_on_leaky_field_only() {
        let r = run(&[("crates/rr/src/unbounded_mutant.rs", UNBOUNDED_MUTANT)]);
        let hits: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "unbounded-growth")
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", r.findings);
        assert_eq!(hits[0].function, "PendingTable::pending");
        // `done` has a retain() evict side and must not be flagged.
        assert!(!r.findings.iter().any(|f| f.function.contains("done")));
    }

    #[test]
    fn nested_evict_path_tempers_unbounded_growth() {
        // `queue` is drained through a two-level `self.sim.queue.pop()`
        // path in another type's method: evict-side evidence, no finding.
        let src = "pub struct Inner { queue: Vec<u64> }\nimpl Inner { pub fn add(&mut self, v: u64) { self.queue.push(v); } }\npub struct Outer { sim: Inner }\nimpl Outer { pub fn step(&mut self) { self.sim.queue.pop(); } }\n";
        let r = run(&[("crates/sim/src/m.rs", src)]);
        assert!(
            !r.findings.iter().any(|f| f.rule == "unbounded-growth"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn suppressed_fixture_is_quiet() {
        let r = run(&[("crates/core/src/suppressed.rs", SUPPRESSED)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn clean_fixture_is_quiet_and_fully_resolved() {
        let r = run(&[("crates/core/src/clean.rs", CLEAN)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.stats.unresolved, 0, "{:?}", r.stats.top_unresolved);
    }

    #[test]
    fn bare_allow_does_not_suppress() {
        // Same planted unwrap, but the marker has no justification: the
        // finding must survive (and the lexical allow-justification rule
        // separately flags the marker itself).
        let src =
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint:allow(panic-reach)\n}\n";
        let r = run(&[("crates/core/src/m.rs", src)]);
        assert!(
            r.findings.iter().any(|f| f.detail == "direct unwrap"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn fn_level_allow_waives_entry_point() {
        let src = "pub fn boot() { helper() } // lint:allow(panic-reach): startup-only, exercised before serving\nfn helper() { inner() }\nfn inner() { panic!(\"x\") }\n";
        let r = run(&[("crates/core/src/m.rs", src)]);
        // The entry is waived, but inner's direct finding remains.
        assert!(
            !r.findings.iter().any(|f| f.function == "boot"),
            "{:?}",
            r.findings
        );
        assert!(r.findings.iter().any(|f| f.function == "inner"));
    }

    #[test]
    fn comment_line_allow_above_signature_waives_fn() {
        let src = "// lint:allow(hot-alloc): builds the owned result this fn exists to produce\npub fn render() -> String { format!(\"x\") }\npub struct SessionDirectory;\nimpl SessionDirectory {\n    pub fn on_timer(&mut self) { render(); }\n    pub fn on_packet(&mut self) {}\n    pub fn next_deadline(&self) {}\n}\npub struct AnnouncementCache;\nimpl AnnouncementCache {\n    pub fn purge_expired(&mut self) {}\n    pub fn purge_stale(&mut self) {}\n}\npub struct SapPacket;\nimpl SapPacket {\n    pub fn decode() {}\n}\n";
        let r = run(&[("crates/sap/src/m.rs", src)]);
        assert!(
            !r.findings.iter().any(|f| f.rule == "hot-alloc"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn baseline_filters_known_findings_and_reports_stale() {
        let r = run(&[("crates/core/src/panic_mutant.rs", PANIC_MUTANT)]);
        let mut baseline = r.baseline_text();
        baseline.push_str("panic-reach|crates/core/src/gone.rs|ghost|direct unwrap\n");
        let files = [("crates/core/src/panic_mutant.rs", PANIC_MUTANT)];
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: (*rel).to_string(),
                source: (*src).to_string(),
            })
            .collect();
        let r2 = analyze(&files, Some(&baseline));
        assert_eq!(r2.new_findings().count(), 0, "{:?}", r2.findings);
        assert_eq!(
            r2.stale,
            vec!["panic-reach|crates/core/src/gone.rs|ghost|direct unwrap"]
        );
        assert!(!r2.findings.is_empty());
    }

    #[test]
    fn gate_fails_on_new_findings_and_budget() {
        let r = run(&[("crates/core/src/panic_mutant.rs", PANIC_MUTANT)]);
        let fails = r.gate_failures(20_000, 10_000);
        assert!(fails.iter().any(|m| m.contains("new finding")), "{fails:?}");
        assert!(fails.iter().any(|m| m.contains("budget")), "{fails:?}");
        assert!(fails.iter().any(|m| m.contains("root")), "{fails:?}");
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let r = run(&[("crates/core/src/panic_mutant.rs", PANIC_MUTANT)]);
        let j = r.to_json(42);
        assert!(j.contains("\"ruleId\": \"panic-reach\""));
        assert!(j.contains("\"elapsed_ms\": 42"));
        assert!(j.contains("\"baseline\": \"new\""));
        // Balanced braces/brackets (a cheap structural sanity check,
        // string contents are escaped so they cannot unbalance it).
        let opens = j.matches('{').count() + j.matches('[').count();
        let closes = j.matches('}').count() + j.matches(']').count();
        assert_eq!(opens, closes, "{j}");
    }

    #[test]
    fn report_is_deterministic() {
        let files = [
            ("crates/core/src/panic_mutant.rs", PANIC_MUTANT),
            ("crates/rr/src/unbounded_mutant.rs", UNBOUNDED_MUTANT),
            ("crates/sap/src/hot_alloc_mutant.rs", HOT_ALLOC_MUTANT),
        ];
        let a = run(&files);
        let b = run(&files);
        assert_eq!(a.to_json(0), b.to_json(0));
        assert_eq!(a.baseline_text(), b.baseline_text());
    }

    #[test]
    fn fixture_tokens_round_trip() {
        // Lexer sanity on a real fixture file: spans are ordered,
        // in-bounds, and slice back to non-empty text.
        let toks = crate::lexer::tokenize(CLEAN);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlapping spans");
            assert!(t.end <= CLEAN.len());
            assert!(!t.text(CLEAN).is_empty());
            prev_end = t.end;
        }
        assert!(toks.len() > 20);
    }
}
