//! The custom source lint pass.
//!
//! Four rules, all scoped to where their failure mode actually bites:
//!
//! * **panic-path** — `.unwrap()`, `.expect(`, `panic!`, `todo!` and
//!   `unimplemented!` are banned in the non-test code of the protocol
//!   and allocator crates (`crates/core`, `crates/sap`, `crates/rr`).
//!   A session directory is a long-running daemon; an allocator that
//!   panics on a malformed announcement takes the whole agent down.
//!   `unreachable!` stays legal: it documents a statically impossible
//!   branch rather than an unhandled input.
//! * **rng-discipline** — non-deterministic RNG construction
//!   (`thread_rng`, `OsRng`, `from_entropy`, `rand::random`) is banned
//!   everywhere except `crates/sim/src/rng.rs`.  Every simulation result
//!   in the paper reproduction must be replayable from a seed.
//! * **truncating-cast** — `as u8` / `as u16` / `as u32` are banned in
//!   the address-arithmetic files (`addr.rs`, `partition_map.rs`), where
//!   a silent truncation corrupts an address instead of crashing.
//! * **wall-clock** — `Instant::now` / `SystemTime::now` are banned
//!   everywhere except the real UDP transport (`crates/sap/src/net.rs`)
//!   and the benchmark harness (`crates/bench/`).  The protocol engines
//!   are wake-on-deadline state machines over [`SimTime`]; a stray wall
//!   clock reading silently breaks seed-replayable traces.
//! * **print-ban** — `println!` / `eprintln!` are banned in the library
//!   crates (`crates/core`, `crates/sap`, `crates/rr`, `crates/sim`).
//!   Observability goes through the telemetry subsystem (metrics +
//!   trace events + flight recorder), which is deterministic and
//!   machine-readable; ad-hoc prints from a library are neither, and
//!   they corrupt the stdout of any binary embedding it.
//!
//! The scanner is deliberately lexical: it masks comments, string and
//! character literals (preserving line structure), skips `#[cfg(test)]`
//! regions by brace matching, and then applies substring rules per
//! line.  A `lint:allow(<rule>)` marker in a comment on the offending
//! line suppresses a finding — grep-able, and loud in review.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test source must be panic-free (directory prefixes,
/// workspace-relative).  `sim` and `topology` joined the original
/// protocol/allocator trio once the model-checking tier started driving
/// them as libraries: a panic in a substrate crate takes the checker —
/// and any long-running agent built on it — down with it.
const PANIC_FREE: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
    "crates/topology/src/",
    // The chaos harness drives fault scenarios for hours at a time; a
    // panic mid-matrix loses the whole report.
    "crates/experiments/src/chaos.rs",
];

/// Files where truncating `as` casts are banned: address arithmetic,
/// plus the topology id constructors (a node/link/zone count silently
/// wrapped to 32 bits aliases two different graph elements).
const CAST_CHECKED: &[&str] = &[
    "crates/core/src/addr.rs",
    "crates/core/src/partition_map.rs",
    "crates/topology/src/graph.rs",
    "crates/topology/src/admin.rs",
];

/// The one file allowed to construct RNG state from the environment.
const RNG_EXEMPT: &[&str] = &["crates/sim/src/rng.rs"];

/// Paths (file or directory prefixes) allowed to read the wall clock:
/// the real UDP transport needs packet timestamps, and the benchmark
/// harness measures elapsed wall time by definition.
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/sap/src/net.rs", "crates/bench/"];

/// Library crates whose non-test source must not print: observability
/// goes through `sdalloc_telemetry`, not stdout/stderr.
const PRINT_BANNED: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panicking calls in protocol/allocator code paths.
    PanicPath,
    /// Unseeded / non-deterministic RNG construction.
    RngDiscipline,
    /// Truncating `as` casts in address arithmetic.
    TruncatingCast,
    /// Wall-clock reads outside the real transport and bench harness.
    WallClock,
    /// `println!`/`eprintln!` in library crates.
    PrintBan,
}

impl Rule {
    /// The name used in reports and in `lint:allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicPath => "panic-path",
            Rule::RngDiscipline => "rng-discipline",
            Rule::TruncatingCast => "truncating-cast",
            Rule::WallClock => "wall-clock",
            Rule::PrintBan => "print-ban",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Run the lint pass over every `.rs` file under `<root>/crates`.
/// Returns the findings plus the number of files scanned.
pub fn run(root: &Path) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0;
    for path in files {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        scanned += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &source));
    }
    (findings, scanned)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scan one file's source; `rel` is its workspace-relative path.
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    let masked = mask_comments_and_strings(source);
    let in_test = test_region_lines(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();

    let panic_scoped = PANIC_FREE.iter().any(|p| rel.starts_with(p));
    let cast_scoped = CAST_CHECKED.contains(&rel);
    let rng_scoped = !RNG_EXEMPT.contains(&rel);
    let clock_scoped = !WALL_CLOCK_EXEMPT.iter().any(|p| rel.starts_with(p));
    let print_scoped = PRINT_BANNED.iter().any(|p| rel.starts_with(p));

    let mut findings = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let allowed = |rule: Rule| raw.contains(&format!("lint:allow({})", rule.name()));
        let mut push = |rule: Rule, message: String| {
            if !allowed(rule) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule,
                    message,
                });
            }
        };

        if panic_scoped {
            for pat in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
                if line.contains(pat) {
                    push(
                        Rule::PanicPath,
                        format!("`{pat}` in protocol/allocator code (use Option/Result; `unreachable!` is allowed for impossible branches)"),
                    );
                }
            }
        }
        if rng_scoped {
            for pat in ["thread_rng", "OsRng", "from_entropy", "rand::random"] {
                if line.contains(pat) {
                    push(
                        Rule::RngDiscipline,
                        format!("`{pat}` constructs a non-deterministic RNG; seed a SimRng instead (only crates/sim/src/rng.rs may touch entropy)"),
                    );
                }
            }
        }
        if clock_scoped {
            for pat in ["Instant::now", "SystemTime::now"] {
                if line.contains(pat) {
                    push(
                        Rule::WallClock,
                        format!("`{pat}` reads the wall clock; protocol code runs on SimTime so traces stay seed-replayable (only the net transport and bench harness may)"),
                    );
                }
            }
        }
        if print_scoped {
            // Whole-token match: `eprintln!` contains `println!` as a
            // substring, so `println!` only counts when not preceded by
            // an identifier character.
            for pat in ["println!", "eprintln!"] {
                if contains_cast(line, pat) {
                    push(
                        Rule::PrintBan,
                        format!("`{pat}` in a library crate; record through sdalloc_telemetry (metrics/trace events) instead of printing"),
                    );
                }
            }
        }
        if cast_scoped {
            for pat in ["as u8", "as u16", "as u32"] {
                if contains_cast(line, pat) {
                    push(
                        Rule::TruncatingCast,
                        format!("truncating `{pat}` in address arithmetic; use `try_from` or restructure to the narrow type"),
                    );
                }
            }
        }
    }
    findings
}

/// Whether `line` contains `pat` as a whole token (not embedded in a
/// longer identifier on either side) — used for `as uN` casts and for
/// the print macros, where `eprintln!` contains `println!`.
fn contains_cast(line: &str, pat: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(pat) {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + pat.len();
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Replace the contents of comments and string/char literals with
/// spaces, preserving newlines so line numbers survive.
pub fn mask_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r'
                    && matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    && !prev_is_ident(&out)
                {
                    // r"..." or r#"..."# raw string.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.resize(out.len() + (j - i + 1), b' ');
                        i = j + 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' && is_char_literal(bytes, i) {
                    state = State::CharLit;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        out.resize(out.len() + (j - i), b' ');
                        i = j;
                        continue;
                    }
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            State::CharLit => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    // Masked output is byte-for-byte positionally aligned ASCII-safe.
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether the masked output so far ends in an identifier character
/// (distinguishes the raw-string prefix `r"` from an identifier ending
/// in `r`).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Whether the `'` at `bytes[i]` starts a char literal (vs a lifetime).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => {
            // 'x' is a char literal; 'x followed by anything else is a
            // lifetime.  Multibyte chars: scan to the closing quote
            // within a few bytes.
            bytes[i + 1..].iter().take(5).skip(1).any(|&b| b == b'\'')
        }
        None => false,
    }
}

/// Per-line flags: `true` where the line falls inside a `#[cfg(test)]`
/// item (the attribute line through the item's closing brace).
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut flags = vec![false; line_count];
    // Byte offset of each line start, for offset→line translation.
    let mut line_starts = vec![0usize];
    for (i, b) in masked.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| -> usize {
        match line_starts.binary_search(&off) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };

    let mut search_from = 0;
    while let Some(pos) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + pos;
        let after = attr_at + "#[cfg(test)]".len();
        // The guarded item runs to the matching close of the first `{`
        // opened after the attribute (or to the first `;` if none —
        // e.g. `#[cfg(test)] use ...;`).
        let bytes = masked.as_bytes();
        let mut j = after;
        let mut depth = 0usize;
        let mut end = masked.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let (start_line, end_line) = (line_of(attr_at), line_of(end.min(masked.len() - 1)));
        for flag in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        search_from = end.min(masked.len());
        if search_from <= attr_at {
            break;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(rel: &str, src: &str) -> Vec<Finding> {
        scan_source(rel, src)
    }

    #[test]
    fn unwrap_in_core_flagged() {
        let f = find(
            "crates/core/src/alloc.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicPath);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn expect_and_panic_flagged() {
        let src = "fn f() { g().expect(\"boom\"); }\nfn h() { panic!(\"no\"); }\n";
        let f = find("crates/sap/src/directory.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[1].line), (1, 2));
    }

    #[test]
    fn unwrap_outside_scoped_crates_ignored() {
        // The experiment harness is the one crate allowed to panic
        // freely (it is a batch driver, not library/protocol code).
        let f = find(
            "crates/experiments/src/harness.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let f = find(
            "crates/core/src/hier.rs",
            "fn f() { lock().unwrap_or_else(PoisonError::into_inner); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unreachable_allowed() {
        let f = find("crates/core/src/adaptive.rs", "fn f() { unreachable!() }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn test_module_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap() }\n}\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_test_module_still_scanned() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap() }\n}\nfn g() { y.unwrap(); }\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn comments_and_strings_masked() {
        let src = "// calls .unwrap() freely\nfn f() { log(\"never .unwrap() here\"); }\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() { x.unwrap() } // lint:allow(panic-path): startup only\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty());
    }

    #[test]
    fn rng_discipline_flags_entropy_sources() {
        for pat in [
            "rand::thread_rng()",
            "OsRng.next_u64()",
            "SmallRng::from_entropy()",
        ] {
            let src = format!("fn f() {{ let r = {pat}; }}\n");
            let f = find("crates/experiments/src/main.rs", &src);
            assert_eq!(f.len(), 1, "{pat}");
            assert_eq!(f[0].rule, Rule::RngDiscipline);
        }
    }

    #[test]
    fn rng_exempt_file_ignored() {
        let f = find("crates/sim/src/rng.rs", "fn f() { from_entropy(); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn truncating_cast_flagged_in_addr_files() {
        let f = find(
            "crates/core/src/partition_map.rs",
            "fn f(x: u32) -> u8 { x as u8 }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::TruncatingCast);
    }

    #[test]
    fn widening_cast_not_flagged() {
        let f = find(
            "crates/core/src/addr.rs",
            "fn f(x: u8) -> u64 { x as u64 + 1 }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn cast_in_other_files_ignored() {
        let f = find(
            "crates/core/src/analytic.rs",
            "fn f(x: u64) -> u32 { x as u32 }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn wall_clock_flagged_in_protocol_code() {
        for pat in ["Instant::now()", "SystemTime::now()"] {
            let src = format!("fn f() {{ let t = {pat}; }}\n");
            let f = find("crates/sim/src/engine.rs", &src);
            assert_eq!(f.len(), 1, "{pat}");
            assert_eq!(f[0].rule, Rule::WallClock);
        }
    }

    #[test]
    fn wall_clock_exempt_paths_ignored() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for rel in [
            "crates/sap/src/net.rs",
            "crates/bench/src/bin/directory_scale.rs",
        ] {
            let f = find(rel, src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    #[test]
    fn masking_preserves_line_count() {
        let src = "fn a() {}\n/* multi\nline\ncomment */\nfn b() { \"s\ntring\"; }\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(src.lines().count(), masked.lines().count());
    }

    #[test]
    fn lifetimes_do_not_confuse_masking() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { y.unwrap(); }\n";
        let f = find("crates/core/src/view.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn char_literals_masked() {
        let src = "fn f() { let q = '\"'; let n = '\\n'; x.unwrap(); }\n";
        let f = find("crates/core/src/view.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn raw_strings_masked() {
        let src = "fn f() { let s = r#\".unwrap() panic!\"#; }\n";
        let f = find("crates/core/src/view.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn print_macros_flagged_in_library_crates() {
        for rel in [
            "crates/core/src/clash.rs",
            "crates/sap/src/directory.rs",
            "crates/rr/src/sim.rs",
            "crates/sim/src/engine.rs",
        ] {
            let f = find(rel, "fn f() { println!(\"x\"); }\n");
            assert_eq!(f.len(), 1, "{rel}: {f:?}");
            assert_eq!(f[0].rule, Rule::PrintBan);
        }
    }

    #[test]
    fn eprintln_reported_once_not_twice() {
        // `eprintln!` contains `println!` as a substring; the
        // whole-token matcher must not double-count it.
        let f = find("crates/sap/src/net.rs", "fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PrintBan);
    }

    #[test]
    fn prints_allowed_outside_library_crates() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        for rel in [
            "crates/experiments/src/main.rs",
            "crates/bench/src/bin/directory_scale.rs",
            "crates/xtask/src/main.rs",
        ] {
            let f = find(rel, src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    #[test]
    fn prints_in_tests_and_strings_ignored() {
        let src = "fn doc() { log(\"println! is banned\"); }\n#[cfg(test)]\nmod tests {\n    fn f() { println!(\"dbg\"); }\n}\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn print_allow_marker_suppresses() {
        let src =
            "fn f() { eprintln!(\"fatal\"); } // lint:allow(print-ban): pre-abort diagnostics\n";
        let f = find("crates/sim/src/engine.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn chaos_module_is_panic_scoped() {
        // The chaos harness is linted file-by-file; its siblings in the
        // experiments crate are not.
        let f = find(
            "crates/experiments/src/chaos.rs",
            "fn f() { x.unwrap(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let f = find("crates/experiments/src/main.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
