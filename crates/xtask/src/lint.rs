//! The custom source lint pass (the *lexical* tier — the semantic,
//! call-graph-based tier lives in `semantic.rs`).
//!
//! Five rules, all scoped to where their failure mode actually bites:
//!
//! * **rng-discipline** — non-deterministic RNG construction
//!   (`thread_rng`, `OsRng`, `from_entropy`, `rand::random`) is banned
//!   everywhere except `crates/sim/src/rng.rs`.  Every simulation result
//!   in the paper reproduction must be replayable from a seed.
//! * **truncating-cast** — `as u8` / `as u16` / `as u32` are banned in
//!   the address-arithmetic and wire/schedule files, where a silent
//!   truncation corrupts an address (or a packet field) instead of
//!   crashing; additionally, narrowing a usize-valued length
//!   (`.len()`/`.count()`/`.capacity()` `as u8/u16/u32`) is banned
//!   across all library crates — a collection size silently wrapped is
//!   the classic million-session bug.
//! * **wall-clock** — `Instant::now` / `SystemTime::now` are banned
//!   everywhere except the real UDP transport (`crates/sap/src/net.rs`)
//!   and the benchmark harness (`crates/bench/`).  The protocol engines
//!   are wake-on-deadline state machines over [`SimTime`]; a stray wall
//!   clock reading silently breaks seed-replayable traces.
//! * **print-ban** — `println!` / `eprintln!` are banned in the library
//!   crates (`crates/core`, `crates/sap`, `crates/rr`, `crates/sim`).
//!   Observability goes through the telemetry subsystem (metrics +
//!   trace events + flight recorder), which is deterministic and
//!   machine-readable; ad-hoc prints from a library are neither, and
//!   they corrupt the stdout of any binary embedding it.
//! * **allow-justification** — every suppression marker must carry a
//!   reason: `lint:allow(<rule>): <why>`.  A bare marker does not
//!   suppress anything and is itself a finding, as is a marker naming
//!   a rule that does not exist (typo protection).
//!
//! The old **panic-path** rule was superseded in PR 6 by the semantic
//! `panic-reach` analysis (`semantic.rs`), which catches the same
//! tokens plus slice/array indexing and panics reached transitively
//! through helpers.
//!
//! The scanner is deliberately lexical: it masks comments, string and
//! character literals (preserving line structure), skips `#[cfg(test)]`
//! regions by brace matching, and then applies substring rules per
//! line.  A justified `lint:allow(<rule>): <reason>` marker in a
//! comment on the offending line suppresses a finding — grep-able, and
//! loud in review.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Files where truncating `as` casts are banned: address arithmetic,
/// the topology id constructors (a node/link/zone count silently
/// wrapped to 32 bits aliases two different graph elements), and since
/// PR 6 the SAP wire codec and announce scheduler (a packet length or
/// interval wrapped on encode corrupts the datagram instead of
/// failing).
const CAST_CHECKED: &[&str] = &[
    "crates/core/src/addr.rs",
    "crates/core/src/partition_map.rs",
    "crates/topology/src/graph.rs",
    "crates/topology/src/admin.rs",
    "crates/sap/src/wire.rs",
    "crates/sap/src/schedule.rs",
];

/// Library crates where narrowing a usize-valued size expression
/// (`.len()`/`.count()`/`.capacity()` followed by `as u8/u16/u32`) is
/// banned even outside the CAST_CHECKED files.
const NARROW_CHECKED: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
    "crates/topology/src/",
    "crates/telemetry/src/",
];

/// The one file allowed to construct RNG state from the environment.
const RNG_EXEMPT: &[&str] = &["crates/sim/src/rng.rs"];

/// Paths (file or directory prefixes) allowed to read the wall clock:
/// the real UDP transport needs packet timestamps, the benchmark
/// harness measures elapsed wall time by definition, the xtask checker
/// times its own CI budget (semantic tier: <10s), and the runtime
/// *driver* files bridge wall time to `SimTime` (that is their job).
/// The runtime's snapshot module is deliberately absent: the read path
/// is pure protocol-state projection and must stay replayable.
const WALL_CLOCK_EXEMPT: &[&str] = &[
    "crates/sap/src/net.rs",
    "crates/bench/",
    "crates/xtask/",
    "crates/runtime/src/clock.rs",
    "crates/runtime/src/bus.rs",
    "crates/runtime/src/driver.rs",
    "crates/runtime/src/soak.rs",
];

/// Library crates whose non-test source must not print: observability
/// goes through `sdalloc_telemetry`, not stdout/stderr.
const PRINT_BANNED: &[&str] = &[
    "crates/core/src/",
    "crates/sap/src/",
    "crates/rr/src/",
    "crates/sim/src/",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Unseeded / non-deterministic RNG construction.
    RngDiscipline,
    /// Truncating `as` casts in address arithmetic / wire codecs.
    TruncatingCast,
    /// Wall-clock reads outside the real transport and bench harness.
    WallClock,
    /// `println!`/`eprintln!` in library crates.
    PrintBan,
    /// `lint:allow` markers without a justification (or naming an
    /// unknown rule).
    AllowJustification,
}

impl Rule {
    /// The name used in reports and in `lint:allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RngDiscipline => "rng-discipline",
            Rule::TruncatingCast => "truncating-cast",
            Rule::WallClock => "wall-clock",
            Rule::PrintBan => "print-ban",
            Rule::AllowJustification => "allow-justification",
        }
    }
}

/// Every rule name a `lint:allow(...)` marker may legally reference —
/// the lexical rules above plus the semantic tier's rules.
const KNOWN_RULES: &[&str] = &[
    "rng-discipline",
    "truncating-cast",
    "wall-clock",
    "print-ban",
    "allow-justification",
    "panic-reach",
    "hot-alloc",
    "unbounded-growth",
    "wire-taint",
    "hot-path-scan",
    "read-path-purity",
];

/// Whether `line` carries a *justified* suppression for `rule_name`:
/// `lint:allow(<rule>): <non-empty reason>`.  Shared with the semantic
/// tier, which uses the same marker syntax.
pub fn allow_marker(line: &str, rule_name: &str) -> bool {
    let pat = format!("lint:allow({rule_name})");
    let Some(pos) = line.find(&pat) else {
        return false;
    };
    let rest = &line[pos + pat.len()..];
    // Mandatory `: reason` with visible text after the colon.
    rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty())
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Run the lint pass over every `.rs` file under `<root>/crates`.
/// Returns the findings plus the number of files scanned.
pub fn run(root: &Path) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0;
    for path in files {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        scanned += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &source));
    }
    (findings, scanned)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scan one file's source; `rel` is its workspace-relative path.
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    let masked = mask_comments_and_strings(source);
    let in_test = test_region_lines(&masked);
    let raw_lines: Vec<&str> = source.lines().collect();

    let cast_scoped = CAST_CHECKED.contains(&rel);
    let narrow_scoped = NARROW_CHECKED.iter().any(|p| rel.starts_with(p));
    let rng_scoped = !RNG_EXEMPT.contains(&rel);
    let clock_scoped = !WALL_CLOCK_EXEMPT.iter().any(|p| rel.starts_with(p));
    let print_scoped = PRINT_BANNED.iter().any(|p| rel.starts_with(p));

    let mut findings = Vec::new();
    for (i, line) in masked.lines().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let allowed = |rule: Rule| allow_marker(raw, rule.name());
        let mut push = |rule: Rule, message: String| {
            if !allowed(rule) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule,
                    message,
                });
            }
        };

        // Audit every suppression marker on the raw line: a bare
        // marker suppresses nothing and is itself a finding; so is a
        // marker naming a rule that does not exist.  Placeholder text
        // like `lint:allow(<rule>)` in docs is skipped because `<` is
        // not a legal rule-name character.
        let mut from = 0;
        while let Some(p) = raw[from..].find("lint:allow(") {
            let at = from + p + "lint:allow(".len();
            from = at;
            let Some(close) = raw[at..].find(')') else {
                break;
            };
            let name = &raw[at..at + close];
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                continue; // doc placeholder, not a marker
            }
            if !KNOWN_RULES.contains(&name) {
                push(
                    Rule::AllowJustification,
                    format!(
                        "`lint:allow({name})` names an unknown rule (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                );
            } else if !allow_marker(raw, name) {
                push(
                    Rule::AllowJustification,
                    format!("bare `lint:allow({name})` — suppressions must carry a reason: `lint:allow({name}): <why>`"),
                );
            }
        }

        if rng_scoped {
            for pat in ["thread_rng", "OsRng", "from_entropy", "rand::random"] {
                if line.contains(pat) {
                    push(
                        Rule::RngDiscipline,
                        format!("`{pat}` constructs a non-deterministic RNG; seed a SimRng instead (only crates/sim/src/rng.rs may touch entropy)"),
                    );
                }
            }
        }
        if clock_scoped {
            for pat in ["Instant::now", "SystemTime::now"] {
                if line.contains(pat) {
                    push(
                        Rule::WallClock,
                        format!("`{pat}` reads the wall clock; protocol code runs on SimTime so traces stay seed-replayable (only the net transport and bench harness may)"),
                    );
                }
            }
        }
        if print_scoped {
            // Whole-token match: `eprintln!` contains `println!` as a
            // substring, so `println!` only counts when not preceded by
            // an identifier character.
            for pat in ["println!", "eprintln!"] {
                if contains_cast(line, pat) {
                    push(
                        Rule::PrintBan,
                        format!("`{pat}` in a library crate; record through sdalloc_telemetry (metrics/trace events) instead of printing"),
                    );
                }
            }
        }
        if cast_scoped {
            for pat in ["as u8", "as u16", "as u32"] {
                if contains_cast(line, pat) {
                    push(
                        Rule::TruncatingCast,
                        format!("truncating `{pat}` in address/wire arithmetic; use `try_from` or restructure to the narrow type"),
                    );
                }
            }
        }
        if narrow_scoped && !cast_scoped {
            // Narrowing a usize-valued size expression: the classic
            // million-session wraparound.  (CAST_CHECKED files are
            // covered by the blanket rule above.)
            for src in [".len()", ".count()", ".capacity()"] {
                for target in ["u8", "u16", "u32"] {
                    let pat = format!("{src} as {target}");
                    if line.contains(&pat) {
                        push(
                            Rule::TruncatingCast,
                            format!("narrowing `{pat}` silently wraps a collection size; use `{target}::try_from` with an explicit saturation/error policy"),
                        );
                    }
                }
            }
        }
    }
    findings
}

/// Whether `line` contains `pat` as a whole token (not embedded in a
/// longer identifier on either side) — used for `as uN` casts and for
/// the print macros, where `eprintln!` contains `println!`.
fn contains_cast(line: &str, pat: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(pat) {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let end = at + pat.len();
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Replace the contents of comments and string/char literals with
/// spaces, preserving newlines so line numbers survive.
pub fn mask_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r'
                    && matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    && !prev_is_ident(&out)
                {
                    // r"..." or r#"..."# raw string.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.resize(out.len() + (j - i + 1), b' ');
                        i = j + 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' && is_char_literal(bytes, i) {
                    state = State::CharLit;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        out.resize(out.len() + (j - i), b' ');
                        i = j;
                        continue;
                    }
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            State::CharLit => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    // Masked output is byte-for-byte positionally aligned ASCII-safe.
    String::from_utf8_lossy(&out).into_owned()
}

/// Whether the masked output so far ends in an identifier character
/// (distinguishes the raw-string prefix `r"` from an identifier ending
/// in `r`).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Whether the `'` at `bytes[i]` starts a char literal (vs a lifetime).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => {
            // 'x' is a char literal; 'x followed by anything else is a
            // lifetime.  Multibyte chars: scan to the closing quote
            // within a few bytes.
            bytes[i + 1..].iter().take(5).skip(1).any(|&b| b == b'\'')
        }
        None => false,
    }
}

/// Per-line flags: `true` where the line falls inside a `#[cfg(test)]`
/// item (the attribute line through the item's closing brace).
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut flags = vec![false; line_count];
    // Byte offset of each line start, for offset→line translation.
    let mut line_starts = vec![0usize];
    for (i, b) in masked.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| -> usize {
        match line_starts.binary_search(&off) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };

    let mut search_from = 0;
    while let Some(pos) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + pos;
        let after = attr_at + "#[cfg(test)]".len();
        // The guarded item runs to the matching close of the first `{`
        // opened after the attribute (or to the first `;` if none —
        // e.g. `#[cfg(test)] use ...;`).
        let bytes = masked.as_bytes();
        let mut j = after;
        let mut depth = 0usize;
        let mut end = masked.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let (start_line, end_line) = (line_of(attr_at), line_of(end.min(masked.len() - 1)));
        for flag in flags.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
        search_from = end.min(masked.len());
        if search_from <= attr_at {
            break;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(rel: &str, src: &str) -> Vec<Finding> {
        scan_source(rel, src)
    }

    #[test]
    fn test_module_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { println!(\"dbg\") }\n}\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_test_module_still_scanned() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { println!(\"a\") }\n}\nfn g() { println!(\"b\"); }\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn comments_and_strings_masked() {
        let src = "// calls println! freely\nfn f() { log(\"never println! here\"); }\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn justified_allow_marker_suppresses() {
        let src = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock): boot banner only, never in protocol state\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_allow_marker_is_a_finding_and_does_not_suppress() {
        let src = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock)\n";
        let f = find("crates/core/src/alloc.rs", src);
        // The wall-clock finding survives AND the bare marker is flagged.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == Rule::WallClock));
        assert!(f.iter().any(|x| x.rule == Rule::AllowJustification));
    }

    #[test]
    fn unknown_rule_in_allow_marker_flagged() {
        let src = "fn f() {} // lint:allow(panic-pathz): typo'd rule name\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AllowJustification);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn doc_placeholder_marker_not_flagged() {
        let src = "//! Suppress with a `lint:allow(<rule>): <reason>` comment.\nfn f() {}\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn semantic_rule_names_are_legal_in_markers() {
        let src = "fn f() {} // lint:allow(panic-reach): fixture for the semantic tier\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rng_discipline_flags_entropy_sources() {
        for pat in [
            "rand::thread_rng()",
            "OsRng.next_u64()",
            "SmallRng::from_entropy()",
        ] {
            let src = format!("fn f() {{ let r = {pat}; }}\n");
            let f = find("crates/experiments/src/main.rs", &src);
            assert_eq!(f.len(), 1, "{pat}");
            assert_eq!(f[0].rule, Rule::RngDiscipline);
        }
    }

    #[test]
    fn rng_exempt_file_ignored() {
        let f = find("crates/sim/src/rng.rs", "fn f() { from_entropy(); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn truncating_cast_flagged_in_addr_files() {
        let f = find(
            "crates/core/src/partition_map.rs",
            "fn f(x: u32) -> u8 { x as u8 }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::TruncatingCast);
    }

    #[test]
    fn widening_cast_not_flagged() {
        let f = find(
            "crates/core/src/addr.rs",
            "fn f(x: u8) -> u64 { x as u64 + 1 }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn cast_in_other_files_ignored() {
        let f = find(
            "crates/core/src/analytic.rs",
            "fn f(x: u64) -> u32 { x as u32 }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn wall_clock_flagged_in_protocol_code() {
        for pat in ["Instant::now()", "SystemTime::now()"] {
            let src = format!("fn f() {{ let t = {pat}; }}\n");
            let f = find("crates/sim/src/engine.rs", &src);
            assert_eq!(f.len(), 1, "{pat}");
            assert_eq!(f[0].rule, Rule::WallClock);
        }
    }

    #[test]
    fn wall_clock_exempt_paths_ignored() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for rel in [
            "crates/sap/src/net.rs",
            "crates/bench/src/bin/directory_scale.rs",
        ] {
            let f = find(rel, src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    #[test]
    fn masking_preserves_line_count() {
        let src = "fn a() {}\n/* multi\nline\ncomment */\nfn b() { \"s\ntring\"; }\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(src.lines().count(), masked.lines().count());
    }

    #[test]
    fn lifetimes_do_not_confuse_masking() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { println!(\"x\"); }\n";
        let f = find("crates/core/src/view.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn char_literals_masked() {
        let src = "fn f() { let q = '\"'; let n = '\\n'; println!(\"x\"); }\n";
        let f = find("crates/core/src/view.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn raw_strings_masked() {
        let src = "fn f() { let s = r#\"println! Instant::now()\"#; }\n";
        let f = find("crates/core/src/view.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn print_macros_flagged_in_library_crates() {
        for rel in [
            "crates/core/src/clash.rs",
            "crates/sap/src/directory.rs",
            "crates/rr/src/sim.rs",
            "crates/sim/src/engine.rs",
        ] {
            let f = find(rel, "fn f() { println!(\"x\"); }\n");
            assert_eq!(f.len(), 1, "{rel}: {f:?}");
            assert_eq!(f[0].rule, Rule::PrintBan);
        }
    }

    #[test]
    fn eprintln_reported_once_not_twice() {
        // `eprintln!` contains `println!` as a substring; the
        // whole-token matcher must not double-count it.
        let f = find("crates/sap/src/net.rs", "fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PrintBan);
    }

    #[test]
    fn prints_allowed_outside_library_crates() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        for rel in [
            "crates/experiments/src/main.rs",
            "crates/bench/src/bin/directory_scale.rs",
            "crates/xtask/src/main.rs",
        ] {
            let f = find(rel, src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    #[test]
    fn prints_in_tests_and_strings_ignored() {
        let src = "fn doc() { log(\"println! is banned\"); }\n#[cfg(test)]\nmod tests {\n    fn f() { println!(\"dbg\"); }\n}\n";
        let f = find("crates/core/src/alloc.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn print_allow_marker_suppresses() {
        let src =
            "fn f() { eprintln!(\"fatal\"); } // lint:allow(print-ban): pre-abort diagnostics\n";
        let f = find("crates/sim/src/engine.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wire_and_schedule_files_are_cast_scoped() {
        let src = "fn f(x: usize) -> u8 { x as u8 }\n";
        for rel in ["crates/sap/src/wire.rs", "crates/sap/src/schedule.rs"] {
            let f = find(rel, src);
            assert_eq!(f.len(), 1, "{rel}: {f:?}");
            assert_eq!(f[0].rule, Rule::TruncatingCast);
        }
    }

    #[test]
    fn narrowing_len_cast_flagged_in_library_crates() {
        let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n";
        let f = find("crates/core/src/hier.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TruncatingCast);
        assert!(f[0].message.contains("narrowing"));
        // Counting iterators narrows the same way.
        let f = find(
            "crates/topology/src/mbone.rs",
            "fn g(it: impl Iterator<Item = u8>) -> u16 { it.count() as u16 }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn narrowing_len_cast_ignored_outside_library_crates() {
        let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n";
        for rel in [
            "crates/experiments/src/main.rs",
            "crates/bench/src/bin/directory_scale.rs",
            "crates/xtask/src/model.rs",
        ] {
            let f = find(rel, src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    #[test]
    fn widening_len_cast_not_flagged() {
        let f = find(
            "crates/core/src/hier.rs",
            "fn f(v: &[u8]) -> u64 { v.len() as u64 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
