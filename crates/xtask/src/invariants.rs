//! The invariant verifier: constructs real artifacts — partition maps,
//! allocators over the full 224/4 multicast space, the clash responder
//! state machine — and checks the properties the paper's correctness
//! argument rests on.
//!
//! Every check is a pure function returning `Result<(), String>` so the
//! unit tests can feed seeded violations and prove the verifier would
//! actually catch them.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdalloc_core::{
    AdaptiveIpr, Addr, AddrSpace, ClashAction, ClashPolicy, ClashResponder, Incumbent,
    PartitionMap, SessionId, StaticIpr, TtlPartition, View, VisibleSession,
};
use sdalloc_sim::{SimRng, SimTime};

/// The full IPv4 multicast space 224.0.0.0/4: 2^28 addresses.
const FULL_MCAST: u32 = 1 << 28;

/// Outcome of the verifier: how many checks ran and which failed.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of individual invariant checks executed.
    pub checks: usize,
    /// Human-readable descriptions of the failures.
    pub failures: Vec<String>,
}

impl Report {
    fn record(&mut self, what: &str, result: Result<(), String>) {
        self.checks += 1;
        if let Err(e) = result {
            self.failures.push(format!("{what}: {e}"));
        }
    }
}

/// Run every invariant check against freshly constructed artifacts.
pub fn run() -> Report {
    let mut report = Report::default();

    // --- PartitionMap: coverage, non-overlap, monotone widening -----
    for margin in 1..=4u32 {
        let map = PartitionMap::new(margin);
        report.record(
            &format!("partition-map(m={margin}) tiling"),
            check_partition_tiling(map.partitions()),
        );
        report.record(
            &format!("partition-map(m={margin}) lookup"),
            check_partition_lookup(&map),
        );
        report.record(
            &format!("partition-map(m={margin}) monotone widening"),
            check_monotone_widening(map.partitions()),
        );
    }
    report.record(
        "partition-map paper default has 55 partitions",
        match PartitionMap::paper_default().len() {
            55 => Ok(()),
            n => Err(format!("expected 55 partitions, got {n}")),
        },
    );

    // --- Static IPR bands tile the full 224/4 space -----------------
    for ipr in [StaticIpr::three_band(), StaticIpr::seven_band()] {
        let ranges: Vec<(u32, u32)> = (0..ipr.bands())
            .map(|b| ipr.band_range(b, FULL_MCAST))
            .collect();
        report.record(
            &format!("{} tiles 224/4", ipr_label(&ipr)),
            check_range_tiling(&ranges, FULL_MCAST),
        );
        report.record(
            &format!("{} band_of total", ipr_label(&ipr)),
            check_band_of_total(&ipr),
        );
    }

    // --- Adaptive IPR: per-band ranges disjoint over 224/4 ----------
    let space = AddrSpace::new(Ipv4Addr::new(224, 0, 0, 0), FULL_MCAST);
    let empty = Vec::new();
    let populated = synthetic_sessions();
    for alloc in [
        AdaptiveIpr::aipr1(),
        AdaptiveIpr::aipr2(),
        AdaptiveIpr::aipr3(),
        AdaptiveIpr::aipr4(),
        AdaptiveIpr::hybrid(),
    ] {
        for (view_name, sessions) in [("empty", &empty), ("populated", &populated)] {
            let name = alloc_label(&alloc);
            report.record(
                &format!("{name} disjoint bands ({view_name} view)"),
                adaptive_band_ranges(&alloc, &space, sessions).and_then(|ranges| {
                    check_disjoint(&ranges)?;
                    check_within(&ranges, space.size())
                }),
            );
        }
    }

    // --- Clash protocol: exhaustive state × event transitions -------
    report.record("clash-protocol transitions", check_clash_transitions());

    report
}

fn ipr_label(ipr: &StaticIpr) -> String {
    format!("static-ipr {}-band", ipr.bands())
}

fn alloc_label(a: &AdaptiveIpr) -> String {
    format!(
        "adaptive-ipr[{} bands, gap {:.0}%]",
        a.band_map().len(),
        a.gap_fraction() * 100.0
    )
}

/// A plausible Mbone population: sessions at each canonical TTL class.
fn synthetic_sessions() -> Vec<VisibleSession> {
    let mut sessions = Vec::new();
    let mut next = 0u32;
    for (ttl, count) in [
        (1u8, 40u32),
        (15, 60),
        (31, 25),
        (47, 30),
        (63, 80),
        (127, 120),
        (191, 50),
        (255, 10),
    ] {
        for _ in 0..count {
            sessions.push(VisibleSession::new(Addr(next), ttl));
            next += 1;
        }
    }
    sessions
}

/// Partitions must start at TTL 0, end at 255, and be contiguous with
/// no overlap: `next.lo == prev.hi + 1` throughout.
pub fn check_partition_tiling(parts: &[TtlPartition]) -> Result<(), String> {
    if parts.is_empty() {
        return Err("no partitions".into());
    }
    if parts[0].lo != 0 {
        return Err(format!(
            "first partition starts at TTL {}, not 0",
            parts[0].lo
        ));
    }
    for w in parts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.hi < a.lo {
            return Err(format!("inverted partition {a:?}"));
        }
        if u16::from(b.lo) != u16::from(a.hi) + 1 {
            return Err(format!("gap or overlap between {a:?} and {b:?}"));
        }
    }
    let last = parts[parts.len() - 1];
    if last.hi != 255 {
        return Err(format!("last partition ends at TTL {}, not 255", last.hi));
    }
    Ok(())
}

/// The O(1) lookup table must agree with the partition ranges: every
/// TTL maps to a partition that contains it.
pub fn check_partition_lookup(map: &PartitionMap) -> Result<(), String> {
    for ttl in 0..=255u8 {
        let idx = map.partition_of(ttl);
        if idx >= map.len() {
            return Err(format!("TTL {ttl} maps to out-of-range partition {idx}"));
        }
        let p = map.partition(ttl);
        if !p.contains(ttl) {
            return Err(format!(
                "TTL {ttl} maps to partition {p:?} which excludes it"
            ));
        }
    }
    Ok(())
}

/// Partition widths must be non-decreasing with TTL — the paper's
/// n = ceil(32t/255m) rule: single-TTL partitions at the bottom,
/// widening toward the top.  The final partition is exempt: its upper
/// edge is clamped to TTL 255, which can cut it short.
pub fn check_monotone_widening(parts: &[TtlPartition]) -> Result<(), String> {
    let width = |p: TtlPartition| u16::from(p.hi) - u16::from(p.lo) + 1;
    let unclamped = &parts[..parts.len().saturating_sub(1)];
    for w in unclamped.windows(2) {
        if width(w[1]) < width(w[0]) {
            return Err(format!(
                "partition {:?} is narrower than its predecessor {:?}",
                w[1], w[0]
            ));
        }
    }
    Ok(())
}

/// Half-open ranges must exactly tile `[0, size)` in order.
pub fn check_range_tiling(ranges: &[(u32, u32)], size: u32) -> Result<(), String> {
    let mut cursor = 0u32;
    for &(lo, hi) in ranges {
        if lo != cursor {
            return Err(format!("range starts at {lo}, expected {cursor}"));
        }
        if hi < lo {
            return Err(format!("inverted range [{lo},{hi})"));
        }
        cursor = hi;
    }
    if cursor != size {
        return Err(format!("ranges cover [0,{cursor}), space is [0,{size})"));
    }
    Ok(())
}

/// Every TTL must map to a valid band, monotonically in TTL.
fn check_band_of_total(ipr: &StaticIpr) -> Result<(), String> {
    let mut prev = 0usize;
    for ttl in 0..=255u8 {
        let band = ipr.band_of(ttl);
        if band >= ipr.bands() {
            return Err(format!("TTL {ttl} maps to band {band} of {}", ipr.bands()));
        }
        if band < prev {
            return Err(format!("band_of not monotone at TTL {ttl}"));
        }
        prev = band;
    }
    Ok(())
}

/// Compute the adaptive allocator's band range for every TTL and check
/// determinism: all TTLs in one band must agree on the geometry.
/// Returns the distinct per-band ranges.
fn adaptive_band_ranges(
    alloc: &AdaptiveIpr,
    space: &AddrSpace,
    sessions: &[VisibleSession],
) -> Result<Vec<(u32, u32)>, String> {
    let view = View::new(sessions);
    let mut by_band: BTreeMap<usize, (u32, u32)> = BTreeMap::new();
    for ttl in 0..=255u8 {
        let band = alloc.band_map().band_of(ttl);
        let range = alloc
            .band_range(space, ttl, &view)
            .ok_or_else(|| format!("TTL {ttl}: band range exhausted in the full 224/4 space"))?;
        // NOTE: bands above the target may legitimately differ between
        // TTLs of *different* bands; within one band all TTLs with the
        // same >=-TTL session multiset must agree.  TTLs sharing a band
        // can still see different >= multisets, so only identical-TTL
        // agreement is guaranteed in general — but with the fixed views
        // used here, the per-band geometry must at least nest inside
        // the band's own slot, which pairwise disjointness below
        // verifies via the widest observed range per band.
        let entry = by_band.entry(band).or_insert(range);
        entry.0 = entry.0.min(range.0);
        entry.1 = entry.1.max(range.1);
    }
    Ok(by_band.into_values().collect())
}

/// Half-open ranges must be pairwise disjoint.
pub fn check_disjoint(ranges: &[(u32, u32)]) -> Result<(), String> {
    let mut sorted: Vec<(u32, u32)> = ranges.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b.0 < a.1 {
            return Err(format!(
                "ranges [{},{}) and [{},{}) overlap",
                a.0, a.1, b.0, b.1
            ));
        }
    }
    Ok(())
}

/// Every range must lie within `[0, size)`.
pub fn check_within(ranges: &[(u32, u32)], size: u32) -> Result<(), String> {
    for &(lo, hi) in ranges {
        if hi < lo || hi > size {
            return Err(format!("range [{lo},{hi}) escapes the space of {size}"));
        }
    }
    Ok(())
}

/// Exhaustively drive the clash responder through every incumbent
/// state × event pair and verify the documented three-phase behaviour,
/// including that all four [`ClashAction`] variants are reachable.
pub fn check_clash_transitions() -> Result<(), String> {
    let policy = ClashPolicy::default();
    let now = SimTime::from_secs(100);
    let recent = SimTime::from_secs(95); // within the 10 s window
    let old = SimTime::from_secs(0);
    let sid = SessionId { site: 1, seq: 1 };
    let addr = Addr(7);

    #[derive(PartialEq, Debug)]
    enum Kind {
        DefendOwn,
        ModifyOwn,
        ThirdPartyArmed,
    }
    let kind_of = |a: &ClashAction| match a {
        ClashAction::DefendOwn { .. } => Kind::DefendOwn,
        ClashAction::ModifyOwn { .. } => Kind::ModifyOwn,
        ClashAction::ThirdPartyArmed { .. } => Kind::ThirdPartyArmed,
        ClashAction::DefendThirdParty { .. } => {
            unreachable!("on_clash never fires a third-party defence directly")
        }
    };

    // Every incumbent state the cache can be in when a clash arrives,
    // with the phase the paper mandates.
    let cases = [
        (
            "ours+recent+wins",
            Incumbent::Ours {
                announced_at: recent,
                wins_tiebreak: true,
            },
            Kind::ModifyOwn,
        ),
        (
            "ours+recent+loses",
            Incumbent::Ours {
                announced_at: recent,
                wins_tiebreak: false,
            },
            Kind::ModifyOwn,
        ),
        (
            "ours+old+wins",
            Incumbent::Ours {
                announced_at: old,
                wins_tiebreak: true,
            },
            Kind::DefendOwn,
        ),
        (
            "ours+old+loses",
            Incumbent::Ours {
                announced_at: old,
                wins_tiebreak: false,
            },
            Kind::ModifyOwn,
        ),
        ("cached", Incumbent::Cached, Kind::ThirdPartyArmed),
    ];
    let mut rng = SimRng::new(0xC1A5);
    for (name, incumbent, expected) in cases {
        let mut r = ClashResponder::new(policy.clone());
        let action = r.on_clash(now, addr, sid, incumbent, &mut rng);
        let got = kind_of(&action);
        if got != expected {
            return Err(format!("state {name}: expected {expected:?}, got {got:?}"));
        }
        if let ClashAction::ThirdPartyArmed { fire_at, .. } = &action {
            let lo = now + policy.d1;
            let hi = now + policy.d2;
            if *fire_at < lo || *fire_at > hi {
                return Err(format!(
                    "third-party timer {fire_at:?} outside [now+D1, now+D2]"
                ));
            }
        }
    }

    // Event coverage on an armed third party: fire, suppress-by-
    // announcement, suppress-by-resolution.
    let arm = |rng: &mut SimRng| {
        let mut r = ClashResponder::new(policy.clone());
        r.on_clash(now, addr, sid, Incumbent::Cached, rng);
        r
    };

    let mut r = arm(&mut rng);
    let deadline = r.next_deadline().ok_or("armed responder has no deadline")?;
    if !r.poll(now).is_empty() {
        return Err("timer fired before its deadline".into());
    }
    let fired = r.poll(deadline);
    if fired != vec![ClashAction::DefendThirdParty { session: sid }] {
        return Err(format!(
            "expected third-party defence at deadline, got {fired:?}"
        ));
    }
    if r.pending_count() != 0 {
        return Err("fired defence still pending".into());
    }

    let mut r = arm(&mut rng);
    r.on_announcement_seen(sid);
    if r.pending_count() != 0 || !r.poll(deadline).is_empty() {
        return Err("announcement did not suppress the armed defence".into());
    }

    let mut r = arm(&mut rng);
    r.on_clash_resolved(addr);
    if r.pending_count() != 0 || !r.poll(deadline).is_empty() {
        return Err("clash resolution did not suppress the armed defence".into());
    }

    // Unrelated events must NOT suppress.
    let mut r = arm(&mut rng);
    r.on_announcement_seen(SessionId { site: 9, seq: 9 });
    r.on_clash_resolved(Addr(999));
    if r.pending_count() != 1 {
        return Err("unrelated events suppressed an armed defence".into());
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_tree_passes() {
        let report = run();
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.checks >= 25, "only {} checks ran", report.checks);
    }

    // Seeded violations: prove the checks would actually fire.

    #[test]
    fn overlapping_partitions_caught() {
        let parts = [
            TtlPartition { lo: 0, hi: 10 },
            TtlPartition { lo: 5, hi: 255 }, // overlaps the first
        ];
        assert!(check_partition_tiling(&parts).is_err());
    }

    #[test]
    fn partition_gap_caught() {
        let parts = [
            TtlPartition { lo: 0, hi: 10 },
            TtlPartition { lo: 12, hi: 255 }, // TTL 11 unmapped
        ];
        assert!(check_partition_tiling(&parts).is_err());
    }

    #[test]
    fn incomplete_coverage_caught() {
        let parts = [TtlPartition { lo: 0, hi: 254 }];
        assert!(check_partition_tiling(&parts).is_err());
    }

    #[test]
    fn narrowing_partitions_caught() {
        let parts = [
            TtlPartition { lo: 0, hi: 7 },
            TtlPartition { lo: 8, hi: 9 }, // narrower than its predecessor
            TtlPartition { lo: 10, hi: 255 },
        ];
        assert!(check_monotone_widening(&parts).is_err());
        // The final clamped partition alone may be narrow.
        let clamped = [
            TtlPartition { lo: 0, hi: 99 },
            TtlPartition { lo: 100, hi: 254 },
            TtlPartition { lo: 255, hi: 255 },
        ];
        assert!(check_monotone_widening(&clamped).is_ok());
    }

    #[test]
    fn range_overlap_caught() {
        assert!(check_disjoint(&[(0, 10), (5, 15)]).is_err());
        assert!(check_disjoint(&[(0, 10), (10, 15)]).is_ok());
    }

    #[test]
    fn range_gap_caught() {
        assert!(check_range_tiling(&[(0, 10), (11, 20)], 20).is_err());
        assert!(check_range_tiling(&[(0, 10), (10, 20)], 20).is_ok());
        assert!(check_range_tiling(&[(0, 10), (10, 19)], 20).is_err());
    }

    #[test]
    fn range_escape_caught() {
        assert!(check_within(&[(0, 21)], 20).is_err());
        assert!(check_within(&[(0, 20)], 20).is_ok());
    }

    #[test]
    fn clash_transition_table_holds() {
        assert_eq!(check_clash_transitions(), Ok(()));
    }
}
