//! Bounded model of the Section 3 clash protocol.
//!
//! A small fixed set of allocator sites contend for one address under an
//! adversarial network, driving the *real* transition function
//! [`sdalloc_core::clash_step`] — the same code the SAP directory runs.
//! The model owns everything the pure step function does not: the
//! clock, the network and the delay sampling.
//!
//! **Finite-time abstraction.**  The step function takes real
//! [`SimTime`]s, so the model pins them to constants: every delivery
//! happens at `T_NOW`; a "recent" session was announced at `T_NOW`
//! (zero age, inside the recency window) and a "long-standing" one at
//! time zero (age `T_NOW`, far outside it); third-party delays are the
//! policy's `D1`, and timers fire via `Poll` at `T_FIRE > T_NOW + D1`.
//! Constant times keep [`ClashState`] finite without touching the
//! protocol logic under test, which only compares ages and deadlines.
//!
//! **Adversary.**  In-flight announcements form a multiset; any copy
//! may be delivered (in any order), dropped (bounded by `drop_budget`)
//! or duplicated (bounded by `dup_budget`).  Each site with a live
//! session re-announces spontaneously up to `announce_budget` times —
//! the model's rendering of SAP's periodic re-announcement.  With
//! `announce_budget > drop_budget` the adversary cannot starve a
//! contender of the incumbent's claim, which is what makes the
//! quiescence property a *bounded-liveness* result: with fewer losses
//! than announcements, every clash is detected and resolved.
//!
//! **Properties.**
//! * `no-duplicate-address` (terminal): live sessions hold pairwise
//!   distinct addresses once the network is quiet.
//! * `single-defense-timer` (every state): a site never holds two armed
//!   third-party defences for the same `(session, addr)` — two timers
//!   would fire two authoritative responses for one clash.
//! * `protected-incumbent` (terminal): the long-standing tiebreak
//!   winner never modified its session ("existing sessions will not be
//!   disrupted by new sessions").
//! * `move-bound` (every state): no site moved more often than the
//!   scenario's fresh-address pool allows (a livelock canary).

use sdalloc_core::Addr;
use sdalloc_core::{ClashAction, ClashEvent, ClashPolicy, ClashState, Incumbent, SessionId};
use sdalloc_sim::{SimDuration, SimTime};

use super::driver::Model;

/// The pinned "current time" of every delivery.
fn t_now() -> SimTime {
    SimTime::from_secs(1000)
}

/// When `Poll` runs: after any armed deadline.
fn t_fire(policy: &ClashPolicy) -> SimTime {
    t_now() + policy.d2 + SimDuration::from_secs(1)
}

/// A step-compatible transition function; tests swap in mutants.
pub type ClashStepFn = fn(&ClashPolicy, &ClashState, &ClashEvent) -> (ClashState, Vec<ClashAction>);

/// Whether a site's session predates the recency window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Age {
    /// Announced just now — a clash looks like propagation delay.
    Recent,
    /// Long-standing — defends its address (subject to the tiebreak).
    Old,
}

/// One contending or observing site in the scenario.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// `Some((addr, age))` for an allocator holding a live session;
    /// `None` for a pure observer (third party).
    pub session: Option<(u32, Age)>,
    /// How many announcements the site may transmit in total
    /// (spontaneous re-announcements, defences and moved re-announcements
    /// all draw from this).
    pub announce_budget: u8,
    /// Sessions pre-seeded in the site's directory cache, as
    /// `(origin site, addr)` — how a third party knows the incumbent.
    pub cached: &'static [(u8, u32)],
}

/// A complete clash scenario.
pub struct ClashScenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// The sites, indexed by position.
    pub sites: &'static [SiteConfig],
    /// Total messages the adversary may drop.
    pub drop_budget: u8,
    /// Total messages the adversary may duplicate.
    pub dup_budget: u8,
    /// Fresh addresses available per site for `ModifyOwn` moves.
    pub fresh_per_site: u8,
}

/// The model: a scenario plus the transition function under test.
pub struct ClashModel {
    /// The scenario to explore.
    pub scenario: ClashScenario,
    /// Normally [`sdalloc_core::clash_step`]; mutated in
    /// seeded-violation tests.
    pub step: ClashStepFn,
}

/// An in-flight announcement copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Message {
    /// Receiving site.
    dest: u8,
    /// The announced session.
    session: SessionId,
    /// The address it claims.
    addr: Addr,
}

/// One site's model-level state (wrapping the real `ClashState`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct SiteState {
    /// Current address of our live session, if any.
    own_addr: Option<Addr>,
    /// Whether our session counts as recently announced.
    recent: bool,
    /// `ModifyOwn` moves taken so far (names the next fresh address).
    moves: u8,
    /// Announcements still permitted.
    budget: u8,
    /// Last-heard claim per foreign session, sorted by session.
    cache: Vec<(SessionId, Addr)>,
    /// The real protocol state under test.
    clash: ClashState,
}

/// The global model state: all sites plus the adversarial network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClashModelState {
    sites: Vec<SiteState>,
    /// In-flight multiset, sorted by message (canonical form).
    in_flight: Vec<(Message, u8)>,
    drops_left: u8,
    dups_left: u8,
}

/// The session originated by site `i` (one per site in every scenario).
fn session_of(i: usize) -> SessionId {
    SessionId {
        site: i as u32,
        seq: 0,
    }
}

/// The `m`-th fresh address for site `i`: disjoint from every contended
/// address (low numbers) and every other site's pool.
fn fresh_addr(i: usize, m: u8) -> Addr {
    Addr(1000 + (i as u32) * 100 + u32::from(m))
}

impl ClashModelState {
    fn add_message(&mut self, msg: Message) {
        match self.in_flight.iter_mut().find(|(m, _)| *m == msg) {
            Some((_, n)) => *n += 1,
            None => {
                self.in_flight.push((msg, 1));
                self.in_flight.sort_unstable();
            }
        }
    }

    fn remove_message(&mut self, msg: Message) {
        if let Some(pos) = self.in_flight.iter().position(|(m, _)| *m == msg) {
            if self.in_flight[pos].1 > 1 {
                self.in_flight[pos].1 -= 1;
            } else {
                self.in_flight.remove(pos);
            }
        }
    }
}

impl ClashModel {
    fn policy(&self) -> ClashPolicy {
        ClashPolicy::default()
    }

    /// Broadcast `session`'s claim of `addr` from site `from`, if the
    /// site still has transmit budget (one unit per announcement, like
    /// one SAP packet).  Without budget the announcement is silently
    /// skipped — the address move itself, being local, still happens.
    fn announce(&self, state: &mut ClashModelState, from: usize, session: SessionId, addr: Addr) {
        if state.sites[from].budget == 0 {
            return;
        }
        state.sites[from].budget -= 1;
        for dest in 0..state.sites.len() {
            if dest != from {
                state.add_message(Message {
                    dest: dest as u8,
                    session,
                    addr,
                });
            }
        }
    }

    /// Apply the actions `clash_step` asked for at site `i`.
    fn apply_actions(&self, state: &mut ClashModelState, i: usize, actions: &[ClashAction]) {
        for action in actions {
            match *action {
                ClashAction::DefendOwn { session } => {
                    if let Some(addr) = state.sites[i].own_addr {
                        self.announce(state, i, session, addr);
                    }
                }
                ClashAction::ModifyOwn { session, .. } => {
                    let moves = state.sites[i].moves;
                    let addr = fresh_addr(i, moves);
                    state.sites[i].own_addr = Some(addr);
                    state.sites[i].recent = true;
                    state.sites[i].moves = moves.saturating_add(1);
                    self.announce(state, i, session, addr);
                }
                ClashAction::ThirdPartyArmed { .. } => {
                    // State change already applied by the step function.
                }
                ClashAction::DefendThirdParty { session } => {
                    // Re-announce the cached session on its originator's
                    // behalf, at the address our cache records for it.
                    if let Some(&(_, addr)) =
                        state.sites[i].cache.iter().find(|(s, _)| *s == session)
                    {
                        self.announce(state, i, session, addr);
                    }
                }
            }
        }
    }

    /// Run one step-function event at site `i` and apply its actions.
    fn feed(&self, state: &mut ClashModelState, i: usize, event: &ClashEvent) {
        let (next, actions) = (self.step)(&self.policy(), &state.sites[i].clash, event);
        state.sites[i].clash = next;
        self.apply_actions(state, i, &actions);
    }

    /// Deliver one copy of `msg` to its destination: the model-level
    /// rendering of the SAP directory's announcement handler.
    fn deliver(&self, state: &mut ClashModelState, msg: Message) {
        state.remove_message(msg);
        let i = msg.dest as usize;

        // Hearing any announcement of a session suppresses our pending
        // third-party defence of it (its originator is alive, or another
        // third party beat us).
        self.feed(
            state,
            i,
            &ClashEvent::AnnouncementSeen {
                session: msg.session,
            },
        );

        // If the session moved off an address we recorded, the clash on
        // that address is resolved.
        let prior = state.sites[i]
            .cache
            .iter()
            .find(|(s, _)| *s == msg.session)
            .map(|&(_, a)| a);
        if let Some(old) = prior {
            if old != msg.addr {
                self.feed(state, i, &ClashEvent::ClashResolved { addr: old });
            }
        }

        // Update the cache (foreign sessions only — a defence of our own
        // session is not cached back onto ourselves).
        if msg.session != session_of(i) {
            match state.sites[i]
                .cache
                .iter_mut()
                .find(|(s, _)| *s == msg.session)
            {
                Some(entry) => entry.1 = msg.addr,
                None => {
                    state.sites[i].cache.push((msg.session, msg.addr));
                    state.sites[i].cache.sort_unstable();
                }
            }
        } else {
            return; // our own session needs no clash check against itself
        }

        // Clash detection, mirroring the directory: our own live session
        // first, then cached third-party sessions.
        let own = state.sites[i].own_addr;
        if own == Some(msg.addr) {
            let recent = state.sites[i].recent;
            let announced_at = if recent { t_now() } else { SimTime::ZERO };
            self.feed(
                state,
                i,
                &ClashEvent::Clash {
                    now: t_now(),
                    addr: msg.addr,
                    incumbent_session: session_of(i),
                    incumbent: Incumbent::Ours {
                        announced_at,
                        // Total order over session ids: lowest keeps the
                        // address (same rule the responder documents).
                        wins_tiebreak: session_of(i) < msg.session,
                    },
                    third_party_delay: SimDuration::ZERO,
                },
            );
        } else if let Some(&(incumbent, _)) = state.sites[i]
            .cache
            .iter()
            .find(|&&(s, a)| a == msg.addr && s != msg.session)
        {
            self.feed(
                state,
                i,
                &ClashEvent::Clash {
                    now: t_now(),
                    addr: msg.addr,
                    incumbent_session: incumbent,
                    incumbent: Incumbent::Cached,
                    third_party_delay: self.policy().d1,
                },
            );
        }
    }
}

impl Model for ClashModel {
    type State = ClashModelState;

    fn name(&self) -> String {
        format!("clash/{}", self.scenario.name)
    }

    fn initial_states(&self) -> Vec<ClashModelState> {
        let sites = self
            .scenario
            .sites
            .iter()
            .map(|cfg| {
                let mut cache: Vec<(SessionId, Addr)> = cfg
                    .cached
                    .iter()
                    .map(|&(origin, addr)| (session_of(origin as usize), Addr(addr)))
                    .collect();
                cache.sort_unstable();
                SiteState {
                    own_addr: cfg.session.map(|(a, _)| Addr(a)),
                    recent: matches!(cfg.session, Some((_, Age::Recent))),
                    moves: 0,
                    budget: cfg.announce_budget,
                    cache,
                    clash: ClashState::new(),
                }
            })
            .collect();
        vec![ClashModelState {
            sites,
            in_flight: Vec::new(),
            drops_left: self.scenario.drop_budget,
            dups_left: self.scenario.dup_budget,
        }]
    }

    fn successors(&self, state: &ClashModelState, out: &mut Vec<(String, ClashModelState)>) {
        // Adversary moves on each distinct in-flight message.
        for &(msg, _) in &state.in_flight {
            let mut next = state.clone();
            self.deliver(&mut next, msg);
            out.push((
                format!(
                    "deliver s{}@{} to {}",
                    msg.session.site, msg.addr.0, msg.dest
                ),
                next,
            ));

            if state.drops_left > 0 {
                let mut next = state.clone();
                next.remove_message(msg);
                next.drops_left -= 1;
                out.push((
                    format!("drop s{}@{} to {}", msg.session.site, msg.addr.0, msg.dest),
                    next,
                ));
            }
            if state.dups_left > 0 {
                let mut next = state.clone();
                next.add_message(msg);
                next.dups_left -= 1;
                out.push((
                    format!("dup s{}@{} to {}", msg.session.site, msg.addr.0, msg.dest),
                    next,
                ));
            }
        }

        // Spontaneous periodic re-announcement by live-session sites.
        for i in 0..state.sites.len() {
            if state.sites[i].budget > 0 {
                if let Some(addr) = state.sites[i].own_addr {
                    let mut next = state.clone();
                    self.announce(&mut next, i, session_of(i), addr);
                    out.push((format!("announce by {i}"), next));
                }
            }
        }

        // Timer expiry: a site with armed defences polls past every
        // deadline, firing them all (constant times make them equal).
        for i in 0..state.sites.len() {
            if state.sites[i].clash.pending_count() > 0 {
                let mut next = state.clone();
                self.feed(
                    &mut next,
                    i,
                    &ClashEvent::Poll {
                        now: t_fire(&self.policy()),
                    },
                );
                out.push((format!("timer fires at {i}"), next));
            }
        }
    }

    fn violations(&self, state: &ClashModelState, terminal: bool, out: &mut Vec<(String, String)>) {
        // single-defense-timer: no site may hold two armed defences for
        // one (session, addr) — the double-arm bug the idempotence fix
        // in `clash_step` closed.
        for (i, site) in state.sites.iter().enumerate() {
            let pending = site.clash.pending();
            for (a, pa) in pending.iter().enumerate() {
                for pb in &pending[a + 1..] {
                    if pa.session == pb.session && pa.addr == pb.addr {
                        out.push((
                            "single-defense-timer".to_string(),
                            format!(
                                "site {i} armed two defences for s{}@{}",
                                pa.session.site, pa.addr.0
                            ),
                        ));
                    }
                }
            }
        }

        // move-bound: a site cycling through more fresh addresses than
        // the pool allows indicates a modify livelock.
        for (i, site) in state.sites.iter().enumerate() {
            if site.moves > self.scenario.fresh_per_site {
                out.push((
                    "move-bound".to_string(),
                    format!("site {i} moved {} times", site.moves),
                ));
            }
        }

        if !terminal {
            return;
        }

        // no-duplicate-address: quiescent live sessions are distinct.
        for i in 0..state.sites.len() {
            for j in i + 1..state.sites.len() {
                if let (Some(a), Some(b)) = (state.sites[i].own_addr, state.sites[j].own_addr) {
                    if a == b {
                        out.push((
                            "no-duplicate-address".to_string(),
                            format!("sites {i} and {j} both quiesced holding {}", a.0),
                        ));
                    }
                }
            }
        }

        // protected-incumbent: the long-standing tiebreak winner (the
        // lowest session id among Old sites) must never have moved.
        let winner = self
            .scenario
            .sites
            .iter()
            .enumerate()
            .filter(|(_, cfg)| matches!(cfg.session, Some((_, Age::Old))))
            .map(|(i, _)| i)
            .min();
        if let Some(w) = winner {
            if state.sites[w].moves > 0 {
                out.push((
                    "protected-incumbent".to_string(),
                    format!("long-standing winner {w} was forced to move"),
                ));
            }
        }
    }
}

/// The scenarios the `cargo xtask model` command explores.  All use the
/// real [`sdalloc_core::clash_step`]; the seeded-violation tests rebuild
/// them around mutants.
pub fn scenarios(smoke: bool) -> Vec<ClashScenario> {
    // The acceptance configuration: two allocators, one contended
    // address, the adversary may lose two messages and duplicate one.
    // announce_budget = drop_budget + 1, the bounded-liveness threshold.
    let two_site = |name: &'static str, sites: &'static [SiteConfig]| ClashScenario {
        name,
        sites,
        drop_budget: 2,
        dup_budget: 1,
        fresh_per_site: 2,
    };
    const OLD_OLD: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
        },
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
        },
    ];
    const OLD_RECENT: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
        },
    ];
    const RECENT_RECENT: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
        },
    ];
    // Third-party coverage: an observer that knows the incumbent's
    // session from its cache defends it if the incumbent stays silent.
    const THIRD_PARTY: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 2,
            cached: &[],
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 2,
            cached: &[],
        },
        SiteConfig {
            session: None,
            announce_budget: 2,
            cached: &[(0, 0)],
        },
    ];

    if smoke {
        // Depth-limited smoke slice: the post-partition heal scenario,
        // exercising phases 1 and 2 plus the adversary.
        return vec![two_site("2-site heal (smoke)", OLD_OLD)];
    }
    vec![
        two_site("2-site partition heal (old vs old)", OLD_OLD),
        two_site("2-site newcomer vs incumbent", OLD_RECENT),
        two_site("2-site simultaneous allocation", RECENT_RECENT),
        ClashScenario {
            name: "3-site third-party defense",
            sites: THIRD_PARTY,
            drop_budget: 1,
            dup_budget: 1,
            fresh_per_site: 2,
        },
    ]
}
