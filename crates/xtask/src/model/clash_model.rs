//! Bounded model of the Section 3 clash protocol.
//!
//! A small fixed set of allocator sites contend for one address under an
//! adversarial network, driving the *real* transition function
//! [`sdalloc_core::clash_step`] — the same code the SAP directory runs.
//! The model owns everything the pure step function does not: the
//! clock, the network and the delay sampling.
//!
//! **Finite-time abstraction.**  The step function takes real
//! [`SimTime`]s, so the model pins them to constants: every delivery
//! happens at `T_NOW`; a "recent" session was announced at `T_NOW`
//! (zero age, inside the recency window) and a "long-standing" one at
//! time zero (age `T_NOW`, far outside it); third-party delays are the
//! policy's `D1`, and timers fire via `Poll` at `T_FIRE > T_NOW + D1`.
//! Constant times keep [`ClashState`] finite without touching the
//! protocol logic under test, which only compares ages and deadlines.
//!
//! **Adversary.**  In-flight messages form a multiset; any copy may be
//! delivered (in any order), dropped (bounded by `drop_budget`) or
//! duplicated (bounded by `dup_budget`).  Each site with a live
//! session re-announces spontaneously up to `announce_budget` times —
//! the model's rendering of SAP's periodic re-announcement.  With
//! `announce_budget > drop_budget` the adversary cannot starve a
//! contender of the incumbent's claim, which is what makes the
//! quiescence property a *bounded-liveness* result: with fewer losses
//! than announcements, every clash is detected and resolved.
//!
//! **Reconciliation.**  Scenarios may mark a site `restarted`: it has
//! lost its cache and opens the anti-entropy exchange by broadcasting a
//! [`Message::Digest`] (budgeted by `digest_budget`).  Where the
//! implementation compares seeded FNV bucket digests, the model carries
//! the digested *knowledge* itself — the sorted (session, addr) view —
//! and compares for equality, which is the same predicate without the
//! hash.  A live peer answers a rebuilding digest with its own; the
//! rebuilder diffs and sends a [`Message::Request`] for what it is
//! missing (budgeted by `request_budget`); the peer re-announces the
//! requested sessions through the ordinary announcement path, so every
//! recon-triggered re-announce faces the same clash detection the
//! safety properties below constrain.  [`ReconMutant`] plants bugs in
//! exactly this handling for the seeded-violation tests.
//!
//! **Properties.**
//! * `no-duplicate-address` (terminal): live sessions hold pairwise
//!   distinct addresses once the network is quiet.
//! * `single-defense-timer` (every state): a site never holds two armed
//!   third-party defences for the same `(session, addr)` — two timers
//!   would fire two authoritative responses for one clash.
//! * `protected-incumbent` (terminal): the long-standing tiebreak
//!   winner never modified its session ("existing sessions will not be
//!   disrupted by new sessions").
//! * `move-bound` (every state): no site moved more often than the
//!   scenario's fresh-address pool allows (a livelock canary).

use sdalloc_core::Addr;
use sdalloc_core::{ClashAction, ClashEvent, ClashPolicy, ClashState, Incumbent, SessionId};
use sdalloc_sim::{SimDuration, SimTime};

use super::driver::Model;

/// The pinned "current time" of every delivery.
fn t_now() -> SimTime {
    SimTime::from_secs(1000)
}

/// When `Poll` runs: after any armed deadline.
fn t_fire(policy: &ClashPolicy) -> SimTime {
    t_now() + policy.d2 + SimDuration::from_secs(1)
}

/// A step-compatible transition function; tests swap in mutants.
pub type ClashStepFn = fn(&ClashPolicy, &ClashState, &ClashEvent) -> (ClashState, Vec<ClashAction>);

/// Whether a site's session predates the recency window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Age {
    /// Announced just now — a clash looks like propagation delay.
    Recent,
    /// Long-standing — defends its address (subject to the tiebreak).
    Old,
}

/// One contending or observing site in the scenario.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// `Some((addr, age))` for an allocator holding a live session;
    /// `None` for a pure observer (third party).
    pub session: Option<(u32, Age)>,
    /// How many announcements the site may transmit in total
    /// (spontaneous re-announcements, defences, moved re-announcements
    /// and recon-triggered re-announcements all draw from this).
    pub announce_budget: u8,
    /// Sessions pre-seeded in the site's directory cache, as
    /// `(origin site, addr)` — how a third party knows the incumbent.
    pub cached: &'static [(u8, u32)],
    /// Whether the site starts freshly restarted: cache lost, in the
    /// *Rebuilding* phase, opening the digest exchange.
    pub restarted: bool,
    /// Digest messages the site may send (broadcast openers while
    /// rebuilding, plus unicast replies to rebuilding peers).
    pub digest_budget: u8,
    /// Reconcile requests the site may send.
    pub request_budget: u8,
}

/// A complete clash scenario.
pub struct ClashScenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// The sites, indexed by position.
    pub sites: &'static [SiteConfig],
    /// Total messages the adversary may drop.
    pub drop_budget: u8,
    /// Total messages the adversary may duplicate.
    pub dup_budget: u8,
    /// Fresh addresses available per site for `ModifyOwn` moves.
    pub fresh_per_site: u8,
}

/// Planted bug in the model's reconciliation handling, for the
/// seeded-violation tests: the checker must catch each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconMutant {
    /// Faithful rendering of the implementation.
    None,
    /// A rebuilding site *adopts* heard sessions as its own (the refill
    /// writes into the session table instead of the cache), so recovery
    /// steals a live address — `no-duplicate-address` must fire.
    AdoptOwnership,
    /// A site treats digest divergence as a clash against itself and
    /// moves its own session, disrupting the long-standing incumbent —
    /// `protected-incumbent` must fire.
    DefensiveMove,
}

/// The model: a scenario plus the transition function under test.
pub struct ClashModel {
    /// The scenario to explore.
    pub scenario: ClashScenario,
    /// Normally [`sdalloc_core::clash_step`]; mutated in
    /// seeded-violation tests.
    pub step: ClashStepFn,
    /// Normally [`ReconMutant::None`]; the seeded-violation tests plant
    /// bugs in the reconciliation handling here.
    pub recon_mutant: ReconMutant,
}

/// An in-flight message copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Message {
    /// An announcement of `session`'s claim of `addr` (spontaneous,
    /// defence, move or recon-triggered re-announce — indistinguishable
    /// on the wire, exactly like SAP).
    Announce {
        /// Receiving site.
        dest: u8,
        /// The announced session.
        session: SessionId,
        /// The address it claims.
        addr: Addr,
    },
    /// A cache-digest summary (the wire `CacheDigest`'s model
    /// rendering): the sender's scope view carried literally.
    Digest {
        /// Receiving site.
        dest: u8,
        /// Originating site.
        from: u8,
        /// Whether the sender is in the rebuilding phase.
        rebuilding: bool,
        /// The sender's sorted (session, addr) view at send time.
        knowledge: Vec<(SessionId, Addr)>,
    },
    /// A targeted fetch (the wire `ReconcileRequest`'s model
    /// rendering): "re-announce these, I am missing them".
    Request {
        /// Receiving site.
        dest: u8,
        /// Originating (rebuilding) site.
        from: u8,
        /// The entries the sender is missing.
        missing: Vec<(SessionId, Addr)>,
    },
}

impl Message {
    /// Transition label for counterexample traces.
    fn label(&self, verb: &str) -> String {
        match self {
            Message::Announce {
                dest,
                session,
                addr,
            } => format!("{verb} s{}@{} to {}", session.site, addr.0, dest),
            Message::Digest {
                dest,
                from,
                rebuilding,
                ..
            } => format!(
                "{verb} digest from {from}{} to {dest}",
                if *rebuilding { " (rebuilding)" } else { "" }
            ),
            Message::Request { dest, from, .. } => {
                format!("{verb} recon-request from {from} to {dest}")
            }
        }
    }
}

/// One site's model-level state (wrapping the real `ClashState`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct SiteState {
    /// Current address of our live session, if any.
    own_addr: Option<Addr>,
    /// Whether our session counts as recently announced.
    recent: bool,
    /// `ModifyOwn` moves taken so far (names the next fresh address).
    moves: u8,
    /// Announcements still permitted.
    budget: u8,
    /// Whether the site is in the post-restart rebuilding phase.
    rebuilding: bool,
    /// Digest sends still permitted.
    digest_budget: u8,
    /// Reconcile-request sends still permitted.
    request_budget: u8,
    /// Last-heard claim per foreign session, sorted by session.
    cache: Vec<(SessionId, Addr)>,
    /// The real protocol state under test.
    clash: ClashState,
}

/// The global model state: all sites plus the adversarial network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClashModelState {
    sites: Vec<SiteState>,
    /// In-flight multiset, sorted by message (canonical form).
    in_flight: Vec<(Message, u8)>,
    drops_left: u8,
    dups_left: u8,
}

/// The session originated by site `i` (one per site in every scenario).
fn session_of(i: usize) -> SessionId {
    SessionId {
        site: i as u32,
        seq: 0,
    }
}

/// The `m`-th fresh address for site `i`: disjoint from every contended
/// address (low numbers) and every other site's pool.
fn fresh_addr(i: usize, m: u8) -> Addr {
    Addr(1000 + (i as u32) * 100 + u32::from(m))
}

impl ClashModelState {
    fn add_message(&mut self, msg: Message) {
        match self.in_flight.iter_mut().find(|(m, _)| *m == msg) {
            Some((_, n)) => *n += 1,
            None => {
                self.in_flight.push((msg, 1));
                self.in_flight.sort_unstable();
            }
        }
    }

    fn remove_message(&mut self, msg: Message) {
        if let Some(pos) = self.in_flight.iter().position(|(m, _)| *m == msg) {
            if self.in_flight[pos].1 > 1 {
                self.in_flight[pos].1 -= 1;
            } else {
                self.in_flight.remove(pos);
            }
        }
    }
}

impl ClashModel {
    fn policy(&self) -> ClashPolicy {
        ClashPolicy::default()
    }

    /// Broadcast `session`'s claim of `addr` from site `from`, if the
    /// site still has transmit budget (one unit per announcement, like
    /// one SAP packet).  Without budget the announcement is silently
    /// skipped — the address move itself, being local, still happens.
    fn announce(&self, state: &mut ClashModelState, from: usize, session: SessionId, addr: Addr) {
        if state.sites[from].budget == 0 {
            return;
        }
        state.sites[from].budget -= 1;
        for dest in 0..state.sites.len() {
            if dest != from {
                state.add_message(Message::Announce {
                    dest: dest as u8,
                    session,
                    addr,
                });
            }
        }
    }

    /// Site `i`'s scope view: its cache plus its own live session, sorted
    /// — the model rendering of what the implementation digests.
    fn view(state: &ClashModelState, i: usize) -> Vec<(SessionId, Addr)> {
        let mut v = state.sites[i].cache.clone();
        if let Some(addr) = state.sites[i].own_addr {
            v.push((session_of(i), addr));
        }
        v.sort_unstable();
        v
    }

    /// Broadcast site `i`'s digest to every peer, if it still has digest
    /// budget.  `knowledge` carries the view literally; receivers compare
    /// for equality where the implementation compares FNV digests.
    fn send_digest(&self, state: &mut ClashModelState, i: usize) {
        if state.sites[i].digest_budget == 0 {
            return;
        }
        state.sites[i].digest_budget -= 1;
        let knowledge = Self::view(state, i);
        let rebuilding = state.sites[i].rebuilding;
        for dest in 0..state.sites.len() {
            if dest != i {
                state.add_message(Message::Digest {
                    dest: dest as u8,
                    from: i as u8,
                    rebuilding,
                    knowledge: knowledge.clone(),
                });
            }
        }
    }

    /// Apply the actions `clash_step` asked for at site `i`.
    fn apply_actions(&self, state: &mut ClashModelState, i: usize, actions: &[ClashAction]) {
        for action in actions {
            match *action {
                ClashAction::DefendOwn { session } => {
                    if let Some(addr) = state.sites[i].own_addr {
                        self.announce(state, i, session, addr);
                    }
                }
                ClashAction::ModifyOwn { session, .. } => {
                    let moves = state.sites[i].moves;
                    let addr = fresh_addr(i, moves);
                    state.sites[i].own_addr = Some(addr);
                    state.sites[i].recent = true;
                    state.sites[i].moves = moves.saturating_add(1);
                    self.announce(state, i, session, addr);
                }
                ClashAction::ThirdPartyArmed { .. } => {
                    // State change already applied by the step function.
                }
                ClashAction::DefendThirdParty { session } => {
                    // Re-announce the cached session on its originator's
                    // behalf, at the address our cache records for it.
                    if let Some(&(_, addr)) =
                        state.sites[i].cache.iter().find(|(s, _)| *s == session)
                    {
                        self.announce(state, i, session, addr);
                    }
                }
            }
        }
    }

    /// Run one step-function event at site `i` and apply its actions.
    fn feed(&self, state: &mut ClashModelState, i: usize, event: &ClashEvent) {
        let (next, actions) = (self.step)(&self.policy(), &state.sites[i].clash, event);
        state.sites[i].clash = next;
        self.apply_actions(state, i, &actions);
    }

    /// Deliver one copy of `msg` to its destination.
    fn deliver(&self, state: &mut ClashModelState, msg: Message) {
        state.remove_message(msg.clone());
        match msg {
            Message::Announce {
                dest,
                session,
                addr,
            } => self.deliver_announce(state, dest as usize, session, addr),
            Message::Digest {
                dest,
                from,
                rebuilding,
                knowledge,
            } => self.deliver_digest(state, dest as usize, from as usize, rebuilding, &knowledge),
            Message::Request { dest, missing, .. } => {
                self.deliver_request(state, dest as usize, &missing);
            }
        }
    }

    /// Announcement delivery: the model-level rendering of the SAP
    /// directory's announcement handler.
    fn deliver_announce(
        &self,
        state: &mut ClashModelState,
        i: usize,
        session: SessionId,
        addr: Addr,
    ) {
        // Hearing any announcement of a session suppresses our pending
        // third-party defence of it (its originator is alive, or another
        // third party beat us).
        self.feed(state, i, &ClashEvent::AnnouncementSeen { session });

        // If the session moved off an address we recorded, the clash on
        // that address is resolved.
        let prior = state.sites[i]
            .cache
            .iter()
            .find(|(s, _)| *s == session)
            .map(|&(_, a)| a);
        if let Some(old) = prior {
            if old != addr {
                self.feed(state, i, &ClashEvent::ClashResolved { addr: old });
            }
        }

        // Update the cache (foreign sessions only — a defence of our own
        // session is not cached back onto ourselves).
        if session != session_of(i) {
            match state.sites[i].cache.iter_mut().find(|(s, _)| *s == session) {
                Some(entry) => entry.1 = addr,
                None => {
                    state.sites[i].cache.push((session, addr));
                    state.sites[i].cache.sort_unstable();
                }
            }
        } else {
            return; // our own session needs no clash check against itself
        }

        // Seeded bug: the rebuilding refill writes heard sessions into
        // the session table instead of the cache — the site silently
        // adopts the announced address as its own.
        if self.recon_mutant == ReconMutant::AdoptOwnership && state.sites[i].rebuilding {
            state.sites[i].own_addr = Some(addr);
            state.sites[i].recent = true;
            return;
        }

        // Clash detection, mirroring the directory: our own live session
        // first, then cached third-party sessions.
        let own = state.sites[i].own_addr;
        if own == Some(addr) {
            let recent = state.sites[i].recent;
            let announced_at = if recent { t_now() } else { SimTime::ZERO };
            self.feed(
                state,
                i,
                &ClashEvent::Clash {
                    now: t_now(),
                    addr,
                    incumbent_session: session_of(i),
                    incumbent: Incumbent::Ours {
                        announced_at,
                        // Total order over session ids: lowest keeps the
                        // address (same rule the responder documents).
                        wins_tiebreak: session_of(i) < session,
                    },
                    third_party_delay: SimDuration::ZERO,
                },
            );
        } else if let Some(&(incumbent, _)) = state.sites[i]
            .cache
            .iter()
            .find(|&&(s, a)| a == addr && s != session)
        {
            self.feed(
                state,
                i,
                &ClashEvent::Clash {
                    now: t_now(),
                    addr,
                    incumbent_session: incumbent,
                    incumbent: Incumbent::Cached,
                    third_party_delay: self.policy().d1,
                },
            );
        }
    }

    /// Digest delivery: compare views; a match ends the receiver's
    /// rebuild, a mismatch drives the reply/request half of the
    /// anti-entropy exchange.
    fn deliver_digest(
        &self,
        state: &mut ClashModelState,
        i: usize,
        from: usize,
        sender_rebuilding: bool,
        knowledge: &[(SessionId, Addr)],
    ) {
        let my_view = Self::view(state, i);
        if my_view == knowledge {
            // In-sync peers: a rebuilding receiver is caught up.
            state.sites[i].rebuilding = false;
            return;
        }

        // Seeded bug: digest divergence is treated as a clash against
        // our own session, so the site abandons its address — disrupting
        // even the long-standing incumbent.
        if self.recon_mutant == ReconMutant::DefensiveMove && state.sites[i].own_addr.is_some() {
            let moves = state.sites[i].moves;
            let addr = fresh_addr(i, moves);
            state.sites[i].own_addr = Some(addr);
            state.sites[i].recent = true;
            state.sites[i].moves = moves.saturating_add(1);
            self.announce(state, i, session_of(i), addr);
        }

        // Answer a rebuilding peer with our own digest so it can diff.
        if sender_rebuilding && state.sites[i].digest_budget > 0 {
            state.sites[i].digest_budget -= 1;
            let rebuilding = state.sites[i].rebuilding;
            state.add_message(Message::Digest {
                dest: from as u8,
                from: i as u8,
                rebuilding,
                knowledge: my_view.clone(),
            });
        }

        // If we are the rebuilder, request whatever the peer knows that
        // we do not (diffing by session, like the bucket diff).
        if state.sites[i].rebuilding && state.sites[i].request_budget > 0 {
            let missing: Vec<(SessionId, Addr)> = knowledge
                .iter()
                .filter(|(s, _)| *s != session_of(i) && !my_view.iter().any(|(mine, _)| mine == s))
                .copied()
                .collect();
            if !missing.is_empty() {
                state.sites[i].request_budget -= 1;
                state.add_message(Message::Request {
                    dest: from as u8,
                    from: i as u8,
                    missing,
                });
            }
        }
    }

    /// Request delivery: re-announce every requested session we hold —
    /// our own at its *current* address, cached ones at the cached
    /// address — through the ordinary announcement path, so the refill
    /// faces the same clash detection as any other packet.
    fn deliver_request(
        &self,
        state: &mut ClashModelState,
        i: usize,
        missing: &[(SessionId, Addr)],
    ) {
        for &(session, _) in missing {
            if session == session_of(i) {
                if let Some(addr) = state.sites[i].own_addr {
                    self.announce(state, i, session, addr);
                }
            } else if let Some(&(_, addr)) =
                state.sites[i].cache.iter().find(|(s, _)| *s == session)
            {
                self.announce(state, i, session, addr);
            }
        }
    }
}

impl Model for ClashModel {
    type State = ClashModelState;

    fn name(&self) -> String {
        format!("clash/{}", self.scenario.name)
    }

    fn initial_states(&self) -> Vec<ClashModelState> {
        let sites = self
            .scenario
            .sites
            .iter()
            .map(|cfg| {
                let mut cache: Vec<(SessionId, Addr)> = cfg
                    .cached
                    .iter()
                    .map(|&(origin, addr)| (session_of(origin as usize), Addr(addr)))
                    .collect();
                cache.sort_unstable();
                SiteState {
                    own_addr: cfg.session.map(|(a, _)| Addr(a)),
                    recent: matches!(cfg.session, Some((_, Age::Recent))),
                    moves: 0,
                    budget: cfg.announce_budget,
                    rebuilding: cfg.restarted,
                    digest_budget: cfg.digest_budget,
                    request_budget: cfg.request_budget,
                    cache,
                    clash: ClashState::new(),
                }
            })
            .collect();
        vec![ClashModelState {
            sites,
            in_flight: Vec::new(),
            drops_left: self.scenario.drop_budget,
            dups_left: self.scenario.dup_budget,
        }]
    }

    fn successors(&self, state: &ClashModelState, out: &mut Vec<(String, ClashModelState)>) {
        // Adversary moves on each distinct in-flight message.
        for (msg, _) in &state.in_flight {
            let mut next = state.clone();
            self.deliver(&mut next, msg.clone());
            out.push((msg.label("deliver"), next));

            if state.drops_left > 0 {
                let mut next = state.clone();
                next.remove_message(msg.clone());
                next.drops_left -= 1;
                out.push((msg.label("drop"), next));
            }
            if state.dups_left > 0 {
                let mut next = state.clone();
                next.add_message(msg.clone());
                next.dups_left -= 1;
                out.push((msg.label("dup"), next));
            }
        }

        // Spontaneous periodic re-announcement by live-session sites.
        for i in 0..state.sites.len() {
            if state.sites[i].budget > 0 {
                if let Some(addr) = state.sites[i].own_addr {
                    let mut next = state.clone();
                    self.announce(&mut next, i, session_of(i), addr);
                    out.push((format!("announce by {i}"), next));
                }
            }
        }

        // A rebuilding site opens (or retries) the anti-entropy exchange
        // by broadcasting its digest — the model's rendering of the
        // rebuild-cadence Reconcile timer.
        for i in 0..state.sites.len() {
            if state.sites[i].rebuilding && state.sites[i].digest_budget > 0 {
                let mut next = state.clone();
                self.send_digest(&mut next, i);
                out.push((format!("digest broadcast by {i}"), next));
            }
        }

        // Timer expiry: a site with armed defences polls past every
        // deadline, firing them all (constant times make them equal).
        for i in 0..state.sites.len() {
            if state.sites[i].clash.pending_count() > 0 {
                let mut next = state.clone();
                self.feed(
                    &mut next,
                    i,
                    &ClashEvent::Poll {
                        now: t_fire(&self.policy()),
                    },
                );
                out.push((format!("timer fires at {i}"), next));
            }
        }
    }

    fn violations(&self, state: &ClashModelState, terminal: bool, out: &mut Vec<(String, String)>) {
        // single-defense-timer: no site may hold two armed defences for
        // one (session, addr) — the double-arm bug the idempotence fix
        // in `clash_step` closed.
        for (i, site) in state.sites.iter().enumerate() {
            let pending = site.clash.pending();
            for (a, pa) in pending.iter().enumerate() {
                for pb in &pending[a + 1..] {
                    if pa.session == pb.session && pa.addr == pb.addr {
                        out.push((
                            "single-defense-timer".to_string(),
                            format!(
                                "site {i} armed two defences for s{}@{}",
                                pa.session.site, pa.addr.0
                            ),
                        ));
                    }
                }
            }
        }

        // move-bound: a site cycling through more fresh addresses than
        // the pool allows indicates a modify livelock.
        for (i, site) in state.sites.iter().enumerate() {
            if site.moves > self.scenario.fresh_per_site {
                out.push((
                    "move-bound".to_string(),
                    format!("site {i} moved {} times", site.moves),
                ));
            }
        }

        if !terminal {
            return;
        }

        // no-duplicate-address: quiescent live sessions are distinct.
        for i in 0..state.sites.len() {
            for j in i + 1..state.sites.len() {
                if let (Some(a), Some(b)) = (state.sites[i].own_addr, state.sites[j].own_addr) {
                    if a == b {
                        out.push((
                            "no-duplicate-address".to_string(),
                            format!("sites {i} and {j} both quiesced holding {}", a.0),
                        ));
                    }
                }
            }
        }

        // protected-incumbent: the long-standing tiebreak winner (the
        // lowest session id among Old sites) must never have moved.
        let winner = self
            .scenario
            .sites
            .iter()
            .enumerate()
            .filter(|(_, cfg)| matches!(cfg.session, Some((_, Age::Old))))
            .map(|(i, _)| i)
            .min();
        if let Some(w) = winner {
            if state.sites[w].moves > 0 {
                out.push((
                    "protected-incumbent".to_string(),
                    format!("long-standing winner {w} was forced to move"),
                ));
            }
        }
    }
}

/// The scenarios the `cargo xtask model` command explores.  All use the
/// real [`sdalloc_core::clash_step`]; the seeded-violation tests rebuild
/// them around mutants.
pub fn scenarios(smoke: bool) -> Vec<ClashScenario> {
    // The acceptance configuration: two allocators, one contended
    // address, the adversary may lose two messages and duplicate one.
    // announce_budget = drop_budget + 1, the bounded-liveness threshold.
    let two_site = |name: &'static str, sites: &'static [SiteConfig]| ClashScenario {
        name,
        sites,
        drop_budget: 2,
        dup_budget: 1,
        fresh_per_site: 2,
    };
    const OLD_OLD: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
    ];
    const OLD_RECENT: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
    ];
    const RECENT_RECENT: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 3,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
    ];
    // Third-party coverage: an observer that knows the incumbent's
    // session from its cache defends it if the incumbent stays silent.
    const THIRD_PARTY: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 2,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
        SiteConfig {
            session: Some((0, Age::Recent)),
            announce_budget: 2,
            cached: &[],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
        SiteConfig {
            session: None,
            announce_budget: 2,
            cached: &[(0, 0)],
            restarted: false,
            digest_budget: 0,
            request_budget: 0,
        },
    ];
    // Reconciliation coverage: a long-standing incumbent plus a freshly
    // restarted observer rebuilding its cache through the digest
    // exchange.  The incumbent's announce budget also feeds the
    // recon-triggered re-announcements.
    const DIGEST_REBUILD: &[SiteConfig] = &[
        SiteConfig {
            session: Some((0, Age::Old)),
            announce_budget: 2,
            cached: &[],
            restarted: false,
            digest_budget: 1,
            request_budget: 0,
        },
        SiteConfig {
            session: None,
            announce_budget: 0,
            cached: &[],
            restarted: true,
            digest_budget: 1,
            request_budget: 1,
        },
    ];

    let digest_rebuild = |name: &'static str| ClashScenario {
        name,
        sites: DIGEST_REBUILD,
        drop_budget: 1,
        dup_budget: 1,
        fresh_per_site: 2,
    };

    if smoke {
        // Depth-limited smoke slice: the post-partition heal scenario
        // plus the anti-entropy rebuild, exercising phases 1 and 2, the
        // adversary and the reconciliation message types.
        return vec![
            two_site("2-site heal (smoke)", OLD_OLD),
            digest_rebuild("2-site digest rebuild (smoke)"),
        ];
    }
    vec![
        two_site("2-site partition heal (old vs old)", OLD_OLD),
        two_site("2-site newcomer vs incumbent", OLD_RECENT),
        two_site("2-site simultaneous allocation", RECENT_RECENT),
        ClashScenario {
            name: "3-site third-party defense",
            sites: THIRD_PARTY,
            drop_budget: 1,
            dup_budget: 1,
            fresh_per_site: 2,
        },
        digest_rebuild("2-site digest rebuild after restart"),
    ]
}
