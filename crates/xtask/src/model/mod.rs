//! `cargo xtask model` — a bounded explicit-state model checker for the
//! protocols whose correctness the paper argues informally.
//!
//! Two protocol models are explored exhaustively over small
//! configurations (2–4 sites, one address in contention) under an
//! adversarial network that may reorder, drop and duplicate a bounded
//! number of messages:
//!
//! * [`clash_model`] — the Section 3 three-phase clash
//!   detection/recovery protocol, driving the real
//!   [`sdalloc_core::clash_step`];
//! * [`rr_model`] — the Section 5 request–response suppression
//!   exchange, driving the real [`sdalloc_rr::responder_step`].
//!
//! Both protocol implementations are *pure transition functions*, so
//! the exact code the simulations execute is the code the checker
//! explores — there is no separate specification to drift.  The driver
//! ([`driver`]) is a plain breadth-first search over canonicalised
//! states with counterexample-trace reconstruction.
//!
//! The seeded-violation tests in this module re-run the same scenarios
//! with deliberately broken transition functions (the pre-fix
//! double-arm, an inverted tiebreak, a tie-suppressing responder, …)
//! and assert the checker reports each planted bug — evidence the
//! properties have teeth.

pub mod clash_model;
pub mod driver;
pub mod rr_model;

use driver::{explore, SearchLimits, SearchReport};

/// Print one search report; returns whether it was clean.
fn print_report(report: &SearchReport, allow_truncation: bool) -> bool {
    let status = if !report.violations.is_empty() {
        "VIOLATIONS"
    } else if report.truncated && !allow_truncation {
        "TRUNCATED"
    } else if report.truncated {
        "ok (depth-bounded)"
    } else {
        "ok"
    };
    println!(
        "  {:<42} {:>9} states {:>10} transitions {:>6} terminal  depth {:>3}  {status}",
        report.model,
        report.states,
        report.transitions,
        report.terminal_states,
        report.max_depth_reached,
    );
    for v in &report.violations {
        println!("    property `{}` violated: {}", v.property, v.detail);
        println!("    counterexample ({} steps):", v.trace.len());
        for step in &v.trace {
            println!("      - {step}");
        }
    }
    if allow_truncation {
        report.violations.is_empty()
    } else {
        report.clean()
    }
}

/// Run the full (or smoke) model-checking pass.  Returns `true` when
/// every scenario is explored without violations.
pub fn run(smoke: bool) -> bool {
    let limits = if smoke {
        // The smoke slice must stay under half a minute on a laptop:
        // bound the depth and accept the truncation that implies.
        SearchLimits {
            max_depth: Some(14),
            max_states: 2_000_000,
        }
    } else {
        SearchLimits::default()
    };
    let mut ok = true;

    println!("model: clash protocol (driving sdalloc_core::clash_step)");
    for scenario in clash_model::scenarios(smoke) {
        let model = clash_model::ClashModel {
            scenario,
            step: sdalloc_core::clash_step,
            recon_mutant: clash_model::ReconMutant::None,
        };
        let report = explore(&model, &limits);
        ok &= print_report(&report, smoke);
    }

    println!("model: request-response suppression (driving sdalloc_rr::responder_step)");
    for scenario in rr_model::scenarios(smoke) {
        let model = rr_model::RrModel {
            scenario,
            step: sdalloc_rr::responder_step,
        };
        let report = explore(&model, &limits);
        ok &= print_report(&report, smoke);
    }

    if ok {
        println!("model: OK");
    } else {
        println!("model: FAILED");
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::clash_model::{
        scenarios as clash_scenarios, ClashModel, ClashScenario, ReconMutant,
    };
    use super::driver::{explore, SearchLimits, SearchReport};
    use super::rr_model::{scenarios as rr_scenarios, RrModel, RrScenario};
    use sdalloc_core::{
        clash_step, ClashAction, ClashEvent, ClashPolicy, ClashState, Incumbent, PendingDefense,
    };
    use sdalloc_rr::{responder_step, ResponderState, RrEvent, RrOutput};
    use sdalloc_sim::SimDuration;

    fn limits() -> SearchLimits {
        SearchLimits::default()
    }

    fn clash_report(
        scenario: ClashScenario,
        step: super::clash_model::ClashStepFn,
    ) -> SearchReport {
        clash_report_mutated(scenario, step, ReconMutant::None)
    }

    fn clash_report_mutated(
        scenario: ClashScenario,
        step: super::clash_model::ClashStepFn,
        recon_mutant: ReconMutant,
    ) -> SearchReport {
        explore(
            &ClashModel {
                scenario,
                step,
                recon_mutant,
            },
            &limits(),
        )
    }

    fn rr_report(scenario: RrScenario, step: super::rr_model::RrStepFn) -> SearchReport {
        explore(&RrModel { scenario, step }, &limits())
    }

    fn scenario_named(name_part: &str) -> ClashScenario {
        clash_scenarios(false)
            .into_iter()
            .find(|s| s.name.contains(name_part))
            .unwrap_or_else(|| panic!("no scenario matching {name_part:?}"))
    }

    fn has_violation(report: &SearchReport, property: &str) -> bool {
        report.violations.iter().any(|v| v.property == property)
    }

    // ---- the real protocols are clean -------------------------------

    #[test]
    fn real_clash_protocol_has_no_violations() {
        for scenario in clash_scenarios(false) {
            let name = scenario.name;
            let report = clash_report(scenario, clash_step);
            assert!(
                report.clean(),
                "{name}: {:?} (truncated={})",
                report.violations,
                report.truncated
            );
            assert!(report.terminal_states > 0, "{name}: no quiescent states");
        }
    }

    #[test]
    fn real_rr_protocol_has_no_violations() {
        for scenario in rr_scenarios(false) {
            let name = scenario.name;
            let report = rr_report(scenario, responder_step);
            assert!(
                report.clean(),
                "{name}: {:?} (truncated={})",
                report.violations,
                report.truncated
            );
            assert!(report.terminal_states > 0, "{name}: no quiescent states");
        }
    }

    // ---- seeded violations: clash ------------------------------------

    /// The pre-fix bug: arming a third-party defence without the
    /// per-(session, addr) idempotence check, so a duplicated clash
    /// announcement arms two timers.
    fn buggy_double_arm(
        policy: &ClashPolicy,
        state: &ClashState,
        event: &ClashEvent,
    ) -> (ClashState, Vec<ClashAction>) {
        if let ClashEvent::Clash {
            now,
            addr,
            incumbent_session,
            incumbent: Incumbent::Cached,
            third_party_delay,
        } = *event
        {
            let mut next = state.clone();
            let fire_at = now + third_party_delay;
            next.arm_unchecked(PendingDefense {
                session: incumbent_session,
                addr,
                fire_at,
            });
            return (
                next,
                vec![ClashAction::ThirdPartyArmed {
                    session: incumbent_session,
                    fire_at,
                }],
            );
        }
        clash_step(policy, state, event)
    }

    #[test]
    fn seeded_double_arm_is_caught() {
        let report = clash_report(scenario_named("third-party"), buggy_double_arm);
        assert!(
            has_violation(&report, "single-defense-timer"),
            "expected single-defense-timer violation, got {:?}",
            report.violations
        );
    }

    /// Mutated transition table: the long-standing tiebreak *loser*
    /// defends instead of moving, recreating the mutual-defence
    /// stalemate the total order exists to prevent.
    fn buggy_tiebreak_loser_defends(
        policy: &ClashPolicy,
        state: &ClashState,
        event: &ClashEvent,
    ) -> (ClashState, Vec<ClashAction>) {
        if let ClashEvent::Clash {
            now,
            incumbent_session,
            incumbent:
                Incumbent::Ours {
                    announced_at,
                    wins_tiebreak: false,
                },
            ..
        } = *event
        {
            if now.saturating_since(announced_at) > policy.recent_window {
                return (
                    state.clone(),
                    vec![ClashAction::DefendOwn {
                        session: incumbent_session,
                    }],
                );
            }
        }
        clash_step(policy, state, event)
    }

    #[test]
    fn seeded_tiebreak_stalemate_is_caught() {
        let report = clash_report(scenario_named("old vs old"), buggy_tiebreak_loser_defends);
        assert!(
            has_violation(&report, "no-duplicate-address"),
            "expected no-duplicate-address violation, got {:?}",
            report.violations
        );
    }

    /// Mutated transition table: the tiebreak *winner* yields, so a new
    /// session evicts a long-standing one.
    fn buggy_winner_yields(
        policy: &ClashPolicy,
        state: &ClashState,
        event: &ClashEvent,
    ) -> (ClashState, Vec<ClashAction>) {
        if let ClashEvent::Clash {
            now,
            addr,
            incumbent_session,
            incumbent:
                Incumbent::Ours {
                    announced_at,
                    wins_tiebreak: true,
                },
            ..
        } = *event
        {
            if now.saturating_since(announced_at) > policy.recent_window {
                return (
                    state.clone(),
                    vec![ClashAction::ModifyOwn {
                        session: incumbent_session,
                        old_addr: addr,
                    }],
                );
            }
        }
        clash_step(policy, state, event)
    }

    #[test]
    fn seeded_disrupted_incumbent_is_caught() {
        let report = clash_report(scenario_named("old vs old"), buggy_winner_yields);
        assert!(
            has_violation(&report, "protected-incumbent"),
            "expected protected-incumbent violation, got {:?}",
            report.violations
        );
    }

    // ---- seeded violations: reconciliation ---------------------------

    #[test]
    fn seeded_adopt_ownership_refill_is_caught() {
        // The rebuilding refill writes into the session table instead of
        // the cache: the restarted site ends up claiming the incumbent's
        // address as its own.
        let report = clash_report_mutated(
            scenario_named("digest rebuild"),
            clash_step,
            ReconMutant::AdoptOwnership,
        );
        assert!(
            has_violation(&report, "no-duplicate-address"),
            "expected no-duplicate-address violation, got {:?}",
            report.violations
        );
    }

    #[test]
    fn seeded_defensive_move_on_divergence_is_caught() {
        // Digest divergence misread as a clash: the long-standing
        // incumbent abandons its address just because a restarted peer
        // has an empty cache.
        let report = clash_report_mutated(
            scenario_named("digest rebuild"),
            clash_step,
            ReconMutant::DefensiveMove,
        );
        assert!(
            has_violation(&report, "protected-incumbent"),
            "expected protected-incumbent violation, got {:?}",
            report.violations
        );
    }

    #[test]
    fn move_bound_guard_fires_when_pool_is_zero() {
        // Even the correct protocol trips the livelock canary if the
        // scenario's fresh-address pool is configured too small — the
        // guard itself is exercised, not the protocol.
        let mut scenario = scenario_named("newcomer vs incumbent");
        scenario.fresh_per_site = 0;
        let report = clash_report(scenario, clash_step);
        assert!(
            has_violation(&report, "move-bound"),
            "expected move-bound violation, got {:?}",
            report.violations
        );
    }

    // ---- seeded violations: request-response -------------------------

    /// Double-response responder: a duplicated request re-arms a member
    /// that already answered.
    fn buggy_rearm_after_response(
        state: ResponderState,
        event: RrEvent,
    ) -> (ResponderState, Vec<RrOutput>) {
        if let (ResponderState::Responded { .. }, RrEvent::Request { send_at }) = (state, event) {
            return (
                ResponderState::Scheduled {
                    send_at,
                    heard: None,
                },
                Vec::new(),
            );
        }
        responder_step(state, event)
    }

    #[test]
    fn seeded_double_response_is_caught() {
        let report = rr_report(
            rr_scenarios(false)
                .into_iter()
                .find(|s| s.name.contains("sole"))
                .unwrap_or_else(|| panic!("missing scenario")),
            buggy_rearm_after_response,
        );
        assert!(
            has_violation(&report, "single-response"),
            "expected single-response violation, got {:?}",
            report.violations
        );
    }

    /// Over-eager suppression (ties): an arrival at exactly the send
    /// instant cancels the transmission.
    fn buggy_tie_suppresses(
        state: ResponderState,
        event: RrEvent,
    ) -> (ResponderState, Vec<RrOutput>) {
        if let (
            ResponderState::Scheduled {
                send_at,
                heard: Some(h),
            },
            RrEvent::Deadline,
        ) = (state, event)
        {
            if h <= send_at {
                return (
                    ResponderState::Suppressed {
                        scheduled_at: send_at,
                        heard_at: h,
                    },
                    Vec::new(),
                );
            }
        }
        responder_step(state, event)
    }

    #[test]
    fn seeded_tie_suppression_is_caught() {
        let report = rr_report(
            rr_scenarios(false)
                .into_iter()
                .find(|s| s.name.contains("3 eligible"))
                .unwrap_or_else(|| panic!("missing scenario")),
            buggy_tie_suppresses,
        );
        assert!(
            has_violation(&report, "valid-suppression"),
            "expected valid-suppression violation, got {:?}",
            report.violations
        );
    }

    /// Over-eager suppression (request echo): a duplicated *request*
    /// silences a scheduled responder — which can silence the only
    /// eligible responder there is.
    fn buggy_request_echo_suppresses(
        state: ResponderState,
        event: RrEvent,
    ) -> (ResponderState, Vec<RrOutput>) {
        if let (ResponderState::Scheduled { send_at, .. }, RrEvent::Request { .. }) = (state, event)
        {
            return (
                ResponderState::Suppressed {
                    scheduled_at: send_at,
                    heard_at: SimDuration::ZERO,
                },
                Vec::new(),
            );
        }
        responder_step(state, event)
    }

    #[test]
    fn seeded_sole_responder_suppression_is_caught() {
        let report = rr_report(
            rr_scenarios(false)
                .into_iter()
                .find(|s| s.name.contains("sole"))
                .unwrap_or_else(|| panic!("missing scenario")),
            buggy_request_echo_suppresses,
        );
        assert!(
            has_violation(&report, "some-response"),
            "expected some-response violation, got {:?}",
            report.violations
        );
    }
}
