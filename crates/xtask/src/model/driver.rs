//! The bounded explicit-state search driver.
//!
//! Breadth-first exploration over a [`Model`]'s state graph with a
//! visited-state hash set.  States must be *canonical by construction*
//! (sorted collections, no incidental ordering) so that protocol-equal
//! states collide in the set; every model in this module normalises its
//! multisets before returning successors.
//!
//! The driver records each state's BFS parent and the label of the
//! transition that produced it, so a property violation comes with a
//! full counterexample trace from the initial state.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A finite-state protocol model the driver can explore.
pub trait Model {
    /// One global configuration of the protocol plus its network.
    type State: Clone + Hash + Eq + Ord + Debug;

    /// Short name for reports.
    fn name(&self) -> String;

    /// The initial states (usually one; several when the scenario itself
    /// branches, e.g. over recency assignments).
    fn initial_states(&self) -> Vec<Self::State>;

    /// Append every `(label, successor)` of `state` to `out`.  An empty
    /// set marks `state` as terminal (quiescent).
    fn successors(&self, state: &Self::State, out: &mut Vec<(String, Self::State)>);

    /// Append every property violated in `state` to `out` as
    /// `(property, detail)`.  `terminal` is true when the state has no
    /// successors — quiescence-only properties should check it.
    fn violations(&self, state: &Self::State, terminal: bool, out: &mut Vec<(String, String)>);
}

/// Bounds on the search.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum BFS depth (transitions from an initial state); `None`
    /// means unbounded (the model itself must be finite).
    pub max_depth: Option<usize>,
    /// Hard cap on stored states; exceeding it truncates the search.
    pub max_states: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_depth: None,
            max_states: 20_000_000,
        }
    }
}

/// A property violation plus the transition labels leading to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The property that failed.
    pub property: String,
    /// Human-readable details (which sites/addresses were involved).
    pub detail: String,
    /// Transition labels from the initial state to the violating state.
    pub trace: Vec<String>,
}

/// The outcome of one exhaustive search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The model's name.
    pub model: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones leading to known states).
    pub transitions: u64,
    /// Terminal (quiescent) states found.
    pub terminal_states: usize,
    /// Deepest BFS level reached.
    pub max_depth_reached: usize,
    /// Whether a limit cut the search short (a truncated search proves
    /// nothing about unexplored states).
    pub truncated: bool,
    /// Violations found, first occurrence per property.
    pub violations: Vec<Violation>,
}

impl SearchReport {
    /// True when the search completed without violations.
    pub fn clean(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }
}

/// Exhaustively explore `model` under `limits`.
pub fn explore<M: Model>(model: &M, limits: &SearchLimits) -> SearchReport {
    // Parallel arrays indexed by state id: the state itself, its BFS
    // parent and incoming transition label, and its depth.
    let mut states: Vec<M::State> = Vec::new();
    let mut parent: Vec<Option<(usize, String)>> = Vec::new();
    let mut depth: Vec<usize> = Vec::new();
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let mut report = SearchReport {
        model: model.name(),
        states: 0,
        transitions: 0,
        terminal_states: 0,
        max_depth_reached: 0,
        truncated: false,
        violations: Vec::new(),
    };
    let mut seen_properties: Vec<String> = Vec::new();

    for init in model.initial_states() {
        if let Entry::Vacant(e) = index.entry(init.clone()) {
            e.insert(states.len());
            queue.push_back(states.len());
            states.push(init);
            parent.push(None);
            depth.push(0);
        }
    }

    let mut succ: Vec<(String, M::State)> = Vec::new();
    let mut viols: Vec<(String, String)> = Vec::new();

    while let Some(id) = queue.pop_front() {
        let d = depth[id];
        report.max_depth_reached = report.max_depth_reached.max(d);

        succ.clear();
        let expand = limits.max_depth.is_none_or(|m| d < m);
        if expand {
            model.successors(&states[id], &mut succ);
        } else {
            report.truncated = true;
        }
        let terminal = expand && succ.is_empty();
        if terminal {
            report.terminal_states += 1;
        }

        viols.clear();
        model.violations(&states[id], terminal, &mut viols);
        for (property, detail) in viols.drain(..) {
            // Keep the first (shallowest) counterexample per property.
            if seen_properties.contains(&property) {
                continue;
            }
            seen_properties.push(property.clone());
            report.violations.push(Violation {
                property,
                detail,
                trace: trace_to(&parent, id),
            });
        }

        for (label, next) in succ.drain(..) {
            report.transitions += 1;
            match index.entry(next.clone()) {
                Entry::Occupied(_) => {}
                Entry::Vacant(e) => {
                    if states.len() >= limits.max_states {
                        report.truncated = true;
                        continue;
                    }
                    e.insert(states.len());
                    queue.push_back(states.len());
                    states.push(next);
                    parent.push(Some((id, label)));
                    depth.push(d + 1);
                }
            }
        }
    }

    report.states = states.len();
    report
}

/// Reconstruct the transition labels from the initial state to `id`.
fn trace_to(parent: &[Option<(usize, String)>], mut id: usize) -> Vec<String> {
    let mut labels = Vec::new();
    while let Some((p, label)) = parent.get(id).and_then(|x| x.as_ref()) {
        labels.push(label.clone());
        id = *p;
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that increments or doubles, capped at `max`; violation
    /// when the value is exactly `bad`.
    struct Counter {
        max: u32,
        bad: Option<u32>,
    }

    impl Model for Counter {
        type State = u32;

        fn name(&self) -> String {
            "counter".to_string()
        }

        fn initial_states(&self) -> Vec<u32> {
            vec![1]
        }

        fn successors(&self, s: &u32, out: &mut Vec<(String, u32)>) {
            if *s < self.max {
                out.push(("inc".to_string(), s + 1));
            }
            if s * 2 <= self.max {
                out.push(("dbl".to_string(), s * 2));
            }
        }

        fn violations(&self, s: &u32, _terminal: bool, out: &mut Vec<(String, String)>) {
            if Some(*s) == self.bad {
                out.push(("bad-value".to_string(), format!("reached {s}")));
            }
        }
    }

    #[test]
    fn explores_all_reachable_states() {
        let m = Counter { max: 10, bad: None };
        let r = explore(&m, &SearchLimits::default());
        assert_eq!(r.states, 10, "1..=10 all reachable");
        assert!(r.clean());
        assert_eq!(r.terminal_states, 1, "only 10 is terminal");
    }

    #[test]
    fn violation_comes_with_shortest_trace() {
        let m = Counter {
            max: 10,
            bad: Some(8),
        };
        let r = explore(&m, &SearchLimits::default());
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.property, "bad-value");
        // BFS reaches 8 in three transitions: 1 -> 2 -> 4 -> 8, with the
        // first edge labelled by whichever move was generated first.
        assert_eq!(v.trace.len(), 3);
        assert_eq!(v.trace[1..], ["dbl", "dbl"]);
    }

    #[test]
    fn depth_limit_truncates() {
        let m = Counter {
            max: 100,
            bad: None,
        };
        let r = explore(
            &m,
            &SearchLimits {
                max_depth: Some(3),
                max_states: 1_000_000,
            },
        );
        assert!(r.truncated);
        assert!(!r.clean());
        assert!(r.states < 100);
    }

    #[test]
    fn state_cap_truncates() {
        let m = Counter {
            max: 100,
            bad: None,
        };
        let r = explore(
            &m,
            &SearchLimits {
                max_depth: None,
                max_states: 5,
            },
        );
        assert!(r.truncated);
        assert_eq!(r.states, 5);
    }
}
