//! Bounded model of the request–response suppression exchange.
//!
//! A requester multicasts a request to a small member set; each
//! eligible member runs the *real* pure responder machine
//! [`sdalloc_rr::responder_step`] — the same code the suppression sweep
//! in `sdalloc-rr` drives.  The model supplies what the machine
//! abstracts away: delay sampling (a nondeterministic choice from a
//! finite set), message transport and event ordering.
//!
//! **Time abstraction.**  A member's response instant is its sampled
//! delay (requests nominally arrive at t = 0).  A response transmitted
//! at `s` can reach another member *before* that member's deadline only
//! if `s ≤ send_at` — the adversary picks the arrival instant, and the
//! earliest causally possible one (`s` itself) is also the most
//! suppressive, so only that choice and "too late" (a free no-op) are
//! modelled.  Deadlines fire in `send_at` order (earliest scheduled
//! member first), matching real time.
//!
//! **Adversary.**  Request and response copies may be dropped (bounded)
//! or duplicated (bounded) besides being delivered in any admissible
//! order.
//!
//! **Properties.**
//! * `some-response` (terminal): if any member ever scheduled a
//!   response, at least one member transmits — suppression can never
//!   silence every eligible responder (in particular not the *only*
//!   one).
//! * `single-response` (every state): no member transmits twice for one
//!   request, however often the request is duplicated.
//! * `valid-suppression` (every state): a suppressed member was beaten
//!   strictly — `heard_at < scheduled_at`; ties must transmit.

use sdalloc_rr::{ResponderState, RrEvent, RrOutput};
use sdalloc_sim::SimDuration;

use super::driver::Model;

/// A step-compatible responder function; tests swap in mutants.
pub type RrStepFn = fn(ResponderState, RrEvent) -> (ResponderState, Vec<RrOutput>);

/// A complete request–response scenario.
pub struct RrScenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Eligibility per member: ineligible members absorb the request
    /// without scheduling (they have nothing to answer with).
    pub eligible: &'static [bool],
    /// The response-delay choices (milliseconds) the nondeterministic
    /// sampler picks from when a request arrives.
    pub delays_ms: &'static [u64],
    /// Total messages the adversary may drop.
    pub drop_budget: u8,
    /// Total messages the adversary may duplicate.
    pub dup_budget: u8,
}

/// The model: a scenario plus the responder function under test.
pub struct RrModel {
    /// The scenario to explore.
    pub scenario: RrScenario,
    /// Normally [`sdalloc_rr::responder_step`]; mutated in
    /// seeded-violation tests.
    pub step: RrStepFn,
}

/// An in-flight response copy: transmitted at `sent_at`, headed to
/// member `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ResponseMsg {
    sender: u8,
    sent_at: SimDuration,
    dest: u8,
}

/// One member's model-level state around the real machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MemberState {
    /// The real responder machine state under test.
    st: ResponderState,
    /// Whether the member ever reached `Scheduled`.
    was_scheduled: bool,
    /// Responses transmitted (the `single-response` counter).
    sent: u8,
}

/// The global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RrModelState {
    members: Vec<MemberState>,
    /// In-flight request copies per member (multicast fan-out).
    requests: Vec<u8>,
    /// In-flight response multiset, sorted (canonical form).
    responses: Vec<(ResponseMsg, u8)>,
    drops_left: u8,
    dups_left: u8,
}

impl RrModelState {
    fn add_response(&mut self, msg: ResponseMsg) {
        match self.responses.iter_mut().find(|(m, _)| *m == msg) {
            Some((_, n)) => *n += 1,
            None => {
                self.responses.push((msg, 1));
                self.responses.sort_unstable();
            }
        }
    }

    fn remove_response(&mut self, msg: ResponseMsg) {
        if let Some(pos) = self.responses.iter().position(|(m, _)| *m == msg) {
            if self.responses[pos].1 > 1 {
                self.responses[pos].1 -= 1;
            } else {
                self.responses.remove(pos);
            }
        }
    }
}

impl RrModel {
    /// Feed `event` to member `i`'s machine; transmitted responses fan
    /// out to every other member (the requester's copy needs no model —
    /// properties count transmissions, not receptions).
    fn feed(&self, state: &mut RrModelState, i: usize, event: RrEvent) {
        let (next, outputs) = (self.step)(state.members[i].st, event);
        state.members[i].st = next;
        if matches!(next, ResponderState::Scheduled { .. }) {
            state.members[i].was_scheduled = true;
        }
        for out in outputs {
            let RrOutput::SendResponse { at } = out;
            state.members[i].sent = state.members[i].sent.saturating_add(1);
            for dest in 0..state.members.len() {
                if dest != i {
                    state.add_response(ResponseMsg {
                        sender: i as u8,
                        sent_at: at,
                        dest: dest as u8,
                    });
                }
            }
        }
    }
}

impl Model for RrModel {
    type State = RrModelState;

    fn name(&self) -> String {
        format!("rr/{}", self.scenario.name)
    }

    fn initial_states(&self) -> Vec<RrModelState> {
        let n = self.scenario.eligible.len();
        vec![RrModelState {
            members: vec![
                MemberState {
                    st: ResponderState::Idle,
                    was_scheduled: false,
                    sent: 0,
                };
                n
            ],
            // The requester's multicast puts one request copy in flight
            // per member.
            requests: vec![1; n],
            responses: Vec::new(),
            drops_left: self.scenario.drop_budget,
            dups_left: self.scenario.dup_budget,
        }]
    }

    fn successors(&self, state: &RrModelState, out: &mut Vec<(String, RrModelState)>) {
        // Request copies: deliver (branching over the sampled delay for
        // eligible idle members), drop, duplicate.
        for i in 0..state.members.len() {
            if state.requests[i] == 0 {
                continue;
            }
            if self.scenario.eligible[i] && state.members[i].st == ResponderState::Idle {
                for &ms in self.scenario.delays_ms {
                    let mut next = state.clone();
                    next.requests[i] -= 1;
                    self.feed(
                        &mut next,
                        i,
                        RrEvent::Request {
                            send_at: SimDuration::from_millis(ms),
                        },
                    );
                    out.push((format!("request to {i}, delay {ms}ms"), next));
                }
            } else {
                // Ineligible, or already past Idle: the copy is absorbed
                // (the machine decides what a duplicate means).
                let mut next = state.clone();
                next.requests[i] -= 1;
                self.feed(
                    &mut next,
                    i,
                    RrEvent::Request {
                        send_at: SimDuration::ZERO,
                    },
                );
                out.push((format!("request (dup/ineligible) to {i}"), next));
            }
            if state.drops_left > 0 {
                let mut next = state.clone();
                next.requests[i] -= 1;
                next.drops_left -= 1;
                out.push((format!("drop request to {i}"), next));
            }
            if state.dups_left > 0 {
                let mut next = state.clone();
                next.requests[i] += 1;
                next.dups_left -= 1;
                out.push((format!("dup request to {i}"), next));
            }
        }

        // Response copies: an early arrival (at the causal minimum, the
        // send instant itself) is only possible before the receiver's
        // deadline, i.e. when `sent_at <= send_at`; otherwise delivery
        // is a free no-op removal ("arrives too late to matter").
        for &(msg, _) in &state.responses {
            let dest = msg.dest as usize;
            let early = match state.members[dest].st {
                ResponderState::Scheduled { send_at, .. } => msg.sent_at <= send_at,
                _ => false,
            };
            let mut next = state.clone();
            next.remove_response(msg);
            if early {
                self.feed(&mut next, dest, RrEvent::HearResponse { at: msg.sent_at });
                out.push((
                    format!("deliver response {}→{} early", msg.sender, msg.dest),
                    next,
                ));
            } else {
                out.push((
                    format!("deliver response {}→{} late", msg.sender, msg.dest),
                    next,
                ));
            }
            if state.drops_left > 0 {
                let mut next = state.clone();
                next.remove_response(msg);
                next.drops_left -= 1;
                out.push((format!("drop response {}→{}", msg.sender, msg.dest), next));
            }
            if state.dups_left > 0 {
                let mut next = state.clone();
                next.add_response(msg);
                next.dups_left -= 1;
                out.push((format!("dup response {}→{}", msg.sender, msg.dest), next));
            }
        }

        // Deadlines fire in real-time order: only members holding the
        // minimal scheduled send instant may fire next.
        let min_send = state
            .members
            .iter()
            .filter_map(|m| match m.st {
                ResponderState::Scheduled { send_at, .. } => Some(send_at),
                _ => None,
            })
            .min();
        if let Some(min_send) = min_send {
            for i in 0..state.members.len() {
                if let ResponderState::Scheduled { send_at, .. } = state.members[i].st {
                    if send_at == min_send {
                        let mut next = state.clone();
                        self.feed(&mut next, i, RrEvent::Deadline);
                        out.push((format!("deadline at {i}"), next));
                    }
                }
            }
        }
    }

    fn violations(&self, state: &RrModelState, terminal: bool, out: &mut Vec<(String, String)>) {
        for (i, m) in state.members.iter().enumerate() {
            // single-response: at most one transmission per member.
            if m.sent > 1 {
                out.push((
                    "single-response".to_string(),
                    format!("member {i} transmitted {} responses", m.sent),
                ));
            }
            // valid-suppression: ties and later arrivals must not
            // suppress.
            if let ResponderState::Suppressed {
                scheduled_at,
                heard_at,
            } = m.st
            {
                if heard_at >= scheduled_at {
                    out.push((
                        "valid-suppression".to_string(),
                        format!(
                            "member {i} suppressed by an arrival at {heard_at} \
                             not strictly before its send instant {scheduled_at}"
                        ),
                    ));
                }
            }
        }

        if !terminal {
            return;
        }

        // some-response: suppression never silences every responder.
        let any_scheduled = state.members.iter().any(|m| m.was_scheduled);
        let any_sent = state.members.iter().any(|m| m.sent > 0);
        if any_scheduled && !any_sent {
            out.push((
                "some-response".to_string(),
                "every scheduled responder was suppressed".to_string(),
            ));
        }
    }
}

/// The scenarios the `cargo xtask model` command explores.
pub fn scenarios(smoke: bool) -> Vec<RrScenario> {
    const THREE_ELIGIBLE: RrScenario = RrScenario {
        name: "3 eligible members, 2 delay slots",
        eligible: &[true, true, true],
        delays_ms: &[10, 20],
        drop_budget: 1,
        dup_budget: 1,
    };
    const SOLE_RESPONDER: RrScenario = RrScenario {
        name: "sole eligible responder under duplication",
        eligible: &[true, false, false],
        delays_ms: &[10],
        drop_budget: 1,
        dup_budget: 2,
    };
    if smoke {
        return vec![SOLE_RESPONDER];
    }
    vec![THREE_ELIGIBLE, SOLE_RESPONDER]
}
