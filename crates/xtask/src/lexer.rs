//! A hand-rolled Rust lexer for the semantic lint tier.
//!
//! The workspace is offline/vendored, so we cannot pull in `syn`; the
//! semantic analyses ([`crate::callgraph`], [`crate::semantic`]) instead
//! run over this token stream.  The lexer is deliberately simple — it
//! produces a flat stream of identifiers, literals and single-character
//! punctuation with byte spans and 1-based line numbers — but it is
//! exact about the things a lexical scanner gets wrong: comments
//! (including nested block comments), string/char/byte literals, raw
//! strings with hash fences, and the `'a` lifetime vs `'a'` char-literal
//! ambiguity.
//!
//! Robustness contract: `tokenize` never panics, on any byte sequence
//! (enforced by a proptest).  Unlexable bytes are emitted as one-byte
//! `Punct` tokens and the lexer moves on — the parser downstream treats
//! unknown punctuation as inert.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `Vec`, `r#type`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (int or float, suffixes included).
    Num,
    /// String, raw-string, byte-string or char literal (contents
    /// dropped; only the span is kept).
    Lit,
    /// One ASCII punctuation character.
    Punct(u8),
}

/// One token: kind plus byte span and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the first byte.
    pub line: u32,
}

impl Tok {
    /// The token's source text.  Returns `""` if the span is somehow
    /// out of bounds or splits a UTF-8 sequence (cannot happen for
    /// spans produced by [`tokenize`] on the same source, but the
    /// accessor stays total rather than panicking).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Tokenize Rust source.  Comments and whitespace are dropped; every
/// other byte lands in exactly one token, in source order.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in b[from..to] into `line`.
    macro_rules! advance_lines {
        ($from:expr, $to:expr) => {
            for k in $from..$to.min(b.len()) {
                if b[k] == b'\n' {
                    line = line.saturating_add(1);
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line = line.saturating_add(1);
            }
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            advance_lines!(start, i);
            continue;
        }
        // Identifier / keyword (incl. raw identifiers `r#type`).
        if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 {
            let start = i;
            // `r"`, `r#"`, `br"`, `b"`, `b'` prefixes are literals, not
            // identifiers; check before consuming an ident.
            if let Some(end) = raw_or_byte_literal_end(b, i) {
                advance_lines!(start, end);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    start,
                    end,
                    line: line_of(start, b, line, i),
                });
                i = end;
                continue;
            }
            i += 1;
            // Raw identifier fence.
            if c == b'r' && b.get(i) == Some(&b'#') && is_ident_byte(b.get(i + 1)) {
                i += 1;
            }
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] >= 0x80) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start,
                end: i,
                line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            // Fractional part — but not `1..x` (range) or `1.method()`.
            if b.get(i) == Some(&b'.')
                && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                && b.get(i + 1) != Some(&b'.')
            {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            // Exponent sign: `1e-3` stops the alnum scan at `-`.
            if (b.get(i) == Some(&b'-') || b.get(i) == Some(&b'+'))
                && i > start
                && matches!(b.get(i - 1), Some(&b'e') | Some(&b'E'))
                && b.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                start,
                end: i,
                line,
            });
            continue;
        }
        // String literal.
        if c == b'"' {
            let start = i;
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i = (i + 2).min(b.len()),
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            advance_lines!(start, i);
            toks.push(Tok {
                kind: TokKind::Lit,
                start,
                end: i,
                line: line_of(start, b, line, i),
            });
            continue;
        }
        // `'`: lifetime or char literal.
        if c == b'\'' {
            let start = i;
            if is_char_literal(b, i) {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i = (i + 2).min(b.len()),
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                advance_lines!(start, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    start,
                    end: i,
                    line: line_of(start, b, line, i),
                });
            } else {
                // Lifetime: `'` + ident.
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start,
                    end: i,
                    line,
                });
            }
            continue;
        }
        // Anything else: one punctuation byte.
        toks.push(Tok {
            kind: TokKind::Punct(c),
            start: i,
            end: i + 1,
            line,
        });
        i += 1;
    }
    toks
}

/// The line of `start`, given that `line` is the line of byte `upto`
/// (used when a multi-line literal has already been scanned: the
/// token's line is the line *before* the newlines inside it — since we
/// only ever call this with `start <= upto` and `line` already counts
/// the newlines in `start..upto`, subtract them back out).
fn line_of(start: usize, b: &[u8], line_at_end: u32, upto: usize) -> u32 {
    let n = b[start..upto.min(b.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count() as u32;
    line_at_end.saturating_sub(n)
}

fn is_ident_byte(b: Option<&u8>) -> bool {
    b.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80)
}

/// If the bytes at `i` start a raw string (`r"`, `r#"…`), byte string
/// (`b"`), raw byte string (`br#"…`) or byte char (`b'x'`), return the
/// end offset of the whole literal.
fn raw_or_byte_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let c = b[i];
    // b'x' byte char.
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        let mut j = i + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j = (j + 2).min(b.len()),
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(b.len());
    }
    // b"..." byte string.
    if c == b'b' && b.get(i + 1) == Some(&b'"') {
        let mut j = i + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j = (j + 2).min(b.len()),
                b'"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(b.len());
    }
    // r"..." / r#"..."# / br"..." / br#"..."#.
    let hash_scan_from = if c == b'r' {
        i + 1
    } else if c == b'b' && b.get(i + 1) == Some(&b'r') {
        i + 2
    } else {
        return None;
    };
    let mut j = hash_scan_from;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(b.len())
}

/// Whether the `'` at `b[i]` starts a char literal rather than a
/// lifetime: `'\…'` always, otherwise exactly one character followed by
/// the closing quote.  The check is exact — one ASCII byte or one UTF-8
/// sequence whose length is read off the leading byte — because a
/// lookahead scan for "a quote somewhere nearby" mistakes the *next*
/// lifetime's quote for a closing quote (`<'a,'b>` would lex `'a,'` as
/// a char literal and desync every token after it).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(b'\'') => false, // `''`: empty, treat as a bare lifetime
        Some(&c) if c < 0x80 => b.get(i + 2) == Some(&b'\''),
        Some(&c) => {
            // Multibyte codepoint: UTF-8 length from the leading byte.
            let len = match c {
                0xC0..=0xDF => 2,
                0xE0..=0xEF => 3,
                0xF0..=0xF7 => 4,
                _ => return false, // stray continuation byte
            };
            b.get(i + 1 + len) == Some(&b'\'')
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("fn foo(x: u32) -> u32 { x + 1 }");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokKind::Ident, "foo".into()));
        assert!(ks.contains(&(TokKind::Num, "1".into())));
        assert!(ks.contains(&(TokKind::Punct(b'{'), "{".into())));
    }

    #[test]
    fn comments_dropped_lines_counted() {
        let src = "// line one\n/* block\nspanning */ fn f() {}\n";
        let toks = tokenize(src);
        assert_eq!(toks[0].text(src), "fn");
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* nested */ still comment */ x";
        assert_eq!(idents(src), vec!["x"]);
    }

    #[test]
    fn strings_are_single_tokens() {
        let src = r#"let s = "has .unwrap() and // inside";"#;
        let toks = tokenize(src);
        let lits: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 1);
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"quote \" inside\"#; done";
        assert!(idents(src).contains(&"done".to_string()));
        assert!(!idents(src).contains(&"quote".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"v=\"; let b2 = br#\"x\"#; let c = b'x'; end";
        assert!(idents(src).contains(&"end".to_string()));
        let lits = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = tokenize(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn adjacent_lifetimes_do_not_desync() {
        // `<'a,'b>` without spaces: the `'` of `'b` must not be taken
        // as the closing quote of a char literal starting at `'a`.
        let src = "fn f<'a,'b>(x: &'a str, y: &'b str) { used(); }";
        assert!(idents(src).contains(&"used".to_string()));
        let lifetimes: Vec<_> = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'b", "'a", "'b"]);
    }

    #[test]
    fn multibyte_char_literal_exact() {
        let src = "let e = 'é'; let crab = '\u{1F980}'; done";
        assert!(idents(src).contains(&"done".to_string()));
        let lits = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn char_literals_containing_quote_and_slashes() {
        // `'"'` and `'/'` must be single literals; the `//` after `'/'`
        // here is real comment syntax and must still be dropped.
        let src = "let q = '\"'; let s = '/'; // trailing\nnext";
        assert!(idents(src).contains(&"next".to_string()));
        assert!(!idents(src).contains(&"trailing".to_string()));
        let lits = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn byte_literals_containing_quote_and_comment_markers() {
        let src = "let a = b'\"'; let b2 = b\"has // and \\\" inside\"; tail";
        assert!(idents(src).contains(&"tail".to_string()));
        assert!(!idents(src).contains(&"has".to_string()));
        let lits = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_string_with_comment_markers_and_fenced_quotes() {
        let src = "let s = r##\"quote \"# still // inside\"##; after";
        assert!(idents(src).contains(&"after".to_string()));
        assert!(!idents(src).contains(&"inside".to_string()));
    }

    #[test]
    fn nested_block_comment_containing_string_markers() {
        let src = "/* outer /* \" unclosed quote */ still */ fn g() {}";
        assert_eq!(idents(src), vec!["fn", "g"]);
    }

    #[test]
    fn raw_identifier() {
        let src = "let r#type = 1;";
        assert!(idents(src).contains(&"r#type".to_string()));
    }

    #[test]
    fn range_vs_float() {
        let src = "for i in 0..10 { let f = 1.5; let e = 2e-3; }";
        let nums: Vec<_> = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2e-3"]);
    }

    #[test]
    fn tuple_field_access_not_float() {
        let src = "let x = pair.0; let y = pair.1.len();";
        let nums: Vec<_> = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "1"]);
    }

    #[test]
    fn spans_roundtrip_in_order() {
        // Tokens are in order, non-overlapping, in bounds; re-slicing by
        // span reproduces each token's text.
        let src = "fn f(v: &[u8]) -> Option<u8> { v.get(0).copied() } // tail\n";
        let toks = tokenize(src);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "overlap at {t:?}");
            assert!(t.end <= src.len());
            assert!(t.end > t.start);
            assert!(!t.text(src).is_empty());
            prev_end = t.end;
        }
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let toks = tokenize("let s = \"never closed");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Lit));
    }

    #[test]
    fn non_utf8ish_punct_survives() {
        let toks = tokenize("@#$%^&~?;");
        assert!(toks.iter().all(|t| matches!(t.kind, TokKind::Punct(_))));
    }

    #[test]
    fn line_numbers_exact_across_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nfn f() {}\n";
        let toks = tokenize(src);
        let f = toks.iter().find(|t| t.text(src) == "fn");
        assert_eq!(f.map(|t| t.line), Some(3));
        let lit = toks.iter().find(|t| t.kind == TokKind::Lit);
        assert_eq!(lit.map(|t| t.line), Some(1));
    }
}

/// The lexer is the root of the semantic tier's trust chain: it must be
/// total on arbitrary input (attacker-controlled content never reaches
/// it, but corrupted or exotic source must not take `cargo xtask check`
/// down).  Property: tokenizing any byte soup (lossy-decoded) never
/// panics, and always yields in-order, in-bounds, non-empty spans.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tokenize_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let toks = tokenize(&src);
            let mut prev_end = 0usize;
            for t in &toks {
                prop_assert!(t.start >= prev_end);
                prop_assert!(t.end > t.start);
                prop_assert!(t.end <= src.len());
                prev_end = t.end;
            }
        }

        #[test]
        fn tokenize_never_panics_on_rusty_soup(
            picks in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            // Byte soup biased toward the constructs the lexer special-
            // cases: fences, quotes, comment markers, lifetimes.
            const FRAGMENTS: &[&str] = &[
                "fn", "impl", "struct", "{", "}", "(", ")", "[", "]",
                "\"str", "'a", "'x'", "r#\"", "//", "/*", "*/", "b\"",
                "br#\"", "b'q'", "ident", "0.5", "..", "::", "#", "!",
                "self", ".", "\"", "\\", "\n", "e-", "r#type",
                "'a,'b", "'\"'", "b'\"'", "r##\"", "\"##", "/*\"*/", "'é'",
            ];
            let src: String = picks
                .iter()
                .map(|&p| FRAGMENTS[p as usize % FRAGMENTS.len()])
                .collect::<Vec<_>>()
                .join(" ");
            let _ = tokenize(&src);
        }
    }
}
