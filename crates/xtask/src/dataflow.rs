//! The dataflow tier: three interprocedural analyses over the
//! per-function dataflow summaries that [`crate::callgraph`] extracts
//! (params, binds, call arguments, return expressions, iteration sites,
//! interior-mutability ops).
//!
//! * **wire-taint** — values derived from the wire (a `SapPacket` /
//!   `SessionDescription` typed parameter, or the return of a wire
//!   source: `SapPacket::decode`, the `sdp.rs` parsers, `net.rs`
//!   receive paths) must pass a registered sanitizer before reaching a
//!   sink: allocation-range arithmetic in `core`
//!   (hier/static_ipr/partition_map), a `TimerQueue::schedule`
//!   deadline, or a cache-growth insert on a `self` collection.
//!   Sanitizers are declared with a `lint:sanitizer(wire-taint):
//!   <reason>` marker on (or in the comment block above) the function
//!   signature; a call to one cleanses the value it produces.
//! * **hot-path-scan** — an iteration site (`for` over `self.<field>`,
//!   or `.iter()/.values()/.keys()/.retain()/.drain()` on one) over a
//!   collection-typed field, inside a function reachable from the
//!   event-core hot roots, is an O(n) full scan on a per-packet path.
//!   It is tolerated only with bound evidence: a `lint:bounded:
//!   <reason>` marker on the field declaration (or the comment block
//!   above it) stating why the collection's size is a constant, or a
//!   `lint:allow(hot-path-scan): <reason>` at the site.
//! * **read-path-purity** — every `&self` pub fn on `SessionDirectory`
//!   / `AnnouncementCache` is a query root certified write-free: the
//!   analysis walks self-rooted calls (`self.x.m(…)`, `Self::m(…)`)
//!   from each root and flags any reachable `&mut self` callee, any
//!   mutating `self.<field>` operation, and any interior-mutability op
//!   (`borrow_mut`, `lock`, `store`, `fetch_*`, `compare_exchange`).
//!
//! ## Soundness caveats (documented in DESIGN.md §4g)
//!
//! The taint engine is **flow-insensitive** (a bind taints its name for
//! the whole function body, even before the bind executes — the
//! conservative direction) and has **no alias analysis** (taint through
//! `&mut` out-params, struct-field stores and reborrows is lost: a
//! value stored into `self.<field>` and read back later is clean).
//! Closure bodies are scanned inline as part of the enclosing function,
//! but a closure *called elsewhere* carries no taint edge.  Call
//! resolution is name-based, so a tainted return of `parse` taints
//! every same-named call in functions that also call a wire parser —
//! over-approximation, again the conservative direction.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{Graph, SelfParam, SourceFile};
use crate::semantic::Finding;

/// Type names whose parameters carry wire taint.
const WIRE_TYPES: &[&str] = &["SapPacket", "SessionDescription"];

/// Wire-source functions by location/name: their returns are tainted.
fn is_wire_source(file: &str, name: &str) -> bool {
    (file.ends_with("/wire.rs") && (name == "decode" || name == "parse"))
        || (file.ends_with("/sdp.rs") && name.starts_with("parse"))
        || (file.ends_with("/net.rs") && name.contains("recv"))
        || name == "on_recon_packet"
}

/// Files whose functions are allocation-range sinks.
const ALLOC_RANGE_FILES: &[&str] = &[
    "crates/core/src/hier.rs",
    "crates/core/src/static_ipr.rs",
    "crates/core/src/partition_map.rs",
];

/// Collection methods that grow the receiver (cache-growth sink and
/// purity-relevant mutation).
const INSERT_OPS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "entry",
    "resize",
    "get_or_insert_with",
];

/// Field operations that mutate state (read-path purity).
const MUTATING_OPS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "entry",
    "resize",
    "get_or_insert_with",
    "pop",
    "pop_back",
    "pop_front",
    "remove",
    "remove_entry",
    "swap_remove",
    "clear",
    "retain",
    "retain_mut",
    "drain",
    "truncate",
    "split_off",
    "dedup",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "fill",
    "take-arg",
    "append-arg",
    "replace-arg",
    "=",
];

/// Query-root types for read-path purity.  `DirectorySnapshot` is the
/// runtime's lock-free read surface: every `&self` query on it runs on
/// reader threads concurrent with the writer, so a write sneaking into
/// one would be a data race, not just an impurity.
const QUERY_TYPES: &[&str] = &["SessionDirectory", "AnnouncementCache", "DirectorySnapshot"];

/// Marker scan: `pat: <non-empty reason>` anywhere in `line`.
fn reason_marker(line: &str, pat: &str) -> bool {
    let Some(pos) = line.find(pat) else {
        return false;
    };
    let rest = &line[pos + pat.len()..];
    rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty())
}

/// Everything the three analyses need besides the graph itself.
pub struct Ctx<'a> {
    lines: BTreeMap<&'a str, Vec<&'a str>>,
}

impl<'a> Ctx<'a> {
    pub fn new(files: &'a [SourceFile]) -> Self {
        Ctx {
            lines: files
                .iter()
                .map(|f| (f.rel.as_str(), f.source.lines().collect()))
                .collect(),
        }
    }

    fn line_has(&self, file: &str, line: u32, pat: &str) -> bool {
        line != 0
            && self
                .lines
                .get(file)
                .and_then(|ls| ls.get(line as usize - 1))
                .is_some_and(|l| reason_marker(l, pat))
    }

    /// Declaration-level marker: on the line itself or on the
    /// contiguous comment/attribute block directly above (same search
    /// the `lint:allow` suppression uses).
    fn decl_has(&self, file: &str, line: u32, pat: &str) -> bool {
        if self.line_has(file, line, pat) {
            return true;
        }
        let Some(ls) = self.lines.get(file) else {
            return false;
        };
        if line == 0 {
            return false;
        }
        let mut i = line as usize - 1;
        while i > 0 {
            i -= 1;
            let Some(l) = ls.get(i).map(|l| l.trim_start()) else {
                break;
            };
            if l.starts_with("//") || l.starts_with("#[") {
                if reason_marker(l, pat) {
                    return true;
                }
            } else {
                break;
            }
        }
        false
    }

    fn allowed(&self, file: &str, line: u32, rule: &str) -> bool {
        self.line_has(file, line, &format!("lint:allow({rule})"))
    }

    fn sig_allowed(&self, file: &str, line: u32, rule: &str) -> bool {
        self.decl_has(file, line, &format!("lint:allow({rule})"))
    }
}

/// Run all three dataflow analyses; findings come back unsorted and
/// with `is_new` unset (the caller merges them into the semantic
/// report, which owns ordering and the baseline diff).
pub fn run(graph: &Graph, ctx: &Ctx) -> Vec<Finding> {
    let mut out = Vec::new();
    wire_taint(graph, ctx, &mut out);
    hot_path_scan(graph, ctx, &mut out);
    read_path_purity(graph, ctx, &mut out);
    out
}

// ---------------------------------------------------------------------
// wire-taint
// ---------------------------------------------------------------------

/// Per-function taint state used during the interprocedural fixpoint.
struct TaintState {
    /// `(fn, param index)` → provenance chain for params tainted by a
    /// caller passing a tainted argument.
    param: BTreeMap<(usize, usize), String>,
    /// fn → provenance for functions whose return value is tainted.
    ret: BTreeMap<usize, String>,
}

fn wire_taint(graph: &Graph, ctx: &Ctx, out: &mut Vec<Finding>) {
    // Sanitizer registry: functions carrying the declaration marker.
    let mut sanitizers: BTreeSet<&str> = BTreeSet::new();
    for f in &graph.fns {
        if ctx.decl_has(&f.file, f.line, "lint:sanitizer(wire-taint)") {
            sanitizers.insert(f.name.as_str());
        }
    }
    let clean = |calls: &[String]| calls.iter().any(|c| sanitizers.contains(c.as_str()));

    let mut st = TaintState {
        param: BTreeMap::new(),
        ret: BTreeMap::new(),
    };
    // Seed: wire-source returns.
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.is_test && is_wire_source(&f.file, &f.name) && !sanitizers.contains(f.name.as_str()) {
            st.ret.insert(i, format!("wire source `{}`", f.qual_name()));
        }
    }

    // Interprocedural fixpoint: local propagation feeds tainted returns
    // and tainted call arguments back into the global state.  The
    // lattice is finite ((fns × params) + fns bits, taint only ever
    // added), so this terminates.
    loop {
        let mut changed = false;
        for (i, f) in graph.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let local = local_taint(graph, i, &st, &sanitizers);
            // Return taint.
            if !st.ret.contains_key(&i) && !f.ret_ty.is_empty() && !clean(&f.ret_calls) {
                let via_ident = f
                    .ret_idents
                    .iter()
                    .find_map(|n| local.get(n.as_str()).cloned());
                let via_call = f.ret_calls.iter().find_map(|c| {
                    ret_tainted_call(graph, i, c, &st).map(|p| format!("{p} via `{c}(…)`"))
                });
                if let Some(p) = via_ident.or(via_call) {
                    st.ret.insert(i, p);
                    changed = true;
                }
            }
            // Tainted arguments flow into callee parameters — along
            // type-anchored edges only (see [`trusted_targets`]).
            for (c_idx, call) in f.calls.iter().enumerate() {
                let targets = trusted_targets(graph, i, c_idx);
                if targets.is_empty() {
                    continue;
                }
                for (a_idx, arg) in call.args.iter().enumerate() {
                    let Some(p) = arg_taint(graph, i, arg, &local, &st, &sanitizers) else {
                        continue;
                    };
                    for &t in &targets {
                        if graph.fns[t].is_test
                            || a_idx >= graph.fns[t].params.len()
                            || st.param.contains_key(&(t, a_idx))
                            || sanitizers.contains(graph.fns[t].name.as_str())
                        {
                            continue;
                        }
                        st.param.insert(
                            (t, a_idx),
                            format!(
                                "{p} -> `{}` (arg `{}`)",
                                graph.fns[t].qual_name(),
                                graph.fns[t].params[a_idx].name
                            ),
                        );
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Sink pass.
    let schedule_sinks: BTreeSet<usize> = graph
        .find_methods("TimerQueue", "schedule")
        .into_iter()
        .collect();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || ctx.sig_allowed(&f.file, f.line, "wire-taint") {
            continue;
        }
        let local = local_taint(graph, i, &st, &sanitizers);
        if local.is_empty() {
            continue;
        }
        for (c_idx, call) in f.calls.iter().enumerate() {
            if ctx.allowed(&f.file, call.line, "wire-taint") {
                continue;
            }
            let targets = &graph.call_targets[i][c_idx];
            let is_schedule = targets.iter().any(|t| schedule_sinks.contains(t));
            let alloc_range_target = targets
                .iter()
                .copied()
                .find(|&t| ALLOC_RANGE_FILES.contains(&graph.fns[t].file.as_str()));
            let is_self_insert = call.is_method
                && call.recv_root.as_deref() == Some("self")
                && INSERT_OPS.contains(&call.name.as_str());
            if !is_schedule && alloc_range_target.is_none() && !is_self_insert {
                continue;
            }
            for (a_idx, arg) in call.args.iter().enumerate() {
                if is_schedule && a_idx != 0 {
                    continue; // only the `due` deadline is the sink
                }
                let Some((name, prov)) = arg_taint_named(graph, i, arg, &local, &st, &sanitizers)
                else {
                    continue;
                };
                let (kind, sink_desc) = if is_schedule {
                    (
                        format!("schedule deadline <- `{name}`"),
                        "TimerQueue::schedule deadline".to_string(),
                    )
                } else if let Some(t) = alloc_range_target {
                    let callee = graph.fns[t].qual_name();
                    (
                        format!("alloc-range {callee} <- `{name}`"),
                        format!("allocation-range arithmetic `{callee}`"),
                    )
                } else {
                    let field = f
                        .field_ops
                        .iter()
                        .find(|op| op.line == call.line && op.op == call.name)
                        .map(|op| op.field.clone())
                        .unwrap_or_else(|| "self".to_string());
                    (
                        format!("insert {} <- `{name}`", field),
                        format!("cache-growth insert `{}.{}`", field, call.name),
                    )
                };
                out.push(Finding {
                    rule: "wire-taint",
                    file: f.file.clone(),
                    line: call.line,
                    function: f.qual_name(),
                    detail: kind,
                    message: format!(
                        "`{name}` reaches {sink_desc} in `{}` without a sanitizer; taint: {prov}; validate/clamp it through a fn marked `lint:sanitizer(wire-taint): <reason>` or justify with `lint:allow(wire-taint): <reason>`",
                        f.qual_name(),
                    ),
                    is_new: false,
                });
                break; // one finding per sink call site
            }
        }
    }
}

/// Targets a *taint* edge may follow: only type-anchored resolutions.
/// Reachability keeps the full name-based over-approximation (the safe
/// direction for panic-reach), but a taint chain built on a name
/// collision — slice `get` resolving to `AnnouncementCache::get`, str
/// `parse` to `SessionDescription::parse` — manufactures provenance
/// out of nothing, so taint requires the qualifier or the receiver
/// root to pin the callee's type.  Sink *classification* still uses
/// the full target set: a tainted argument handed to
/// `self.allocator.allocate(…)` is reported at that boundary call.
fn trusted_targets(graph: &Graph, fn_idx: usize, c_idx: usize) -> Vec<usize> {
    let f = &graph.fns[fn_idx];
    let call = &f.calls[c_idx];
    graph.call_targets[fn_idx][c_idx]
        .iter()
        .copied()
        .filter(|&t| {
            let tf = &graph.fns[t];
            if let Some(q) = call.qualifier.as_deref() {
                let q_ty = if q == "Self" {
                    f.self_ty.as_deref().unwrap_or("")
                } else {
                    q
                };
                return match tf.self_ty.as_deref() {
                    Some(ts) => ts == q_ty,
                    None => true, // module-qualified free fn: exact name match
                };
            }
            if call.is_method {
                return match call.recv_root.as_deref() {
                    Some("self") => tf.self_ty == f.self_ty,
                    Some(root) => f.params.iter().any(|p| {
                        p.name == root
                            && tf
                                .self_ty
                                .as_deref()
                                .is_some_and(|ts| p.ty.iter().any(|i| i == ts))
                    }),
                    None => false,
                };
            }
            true // unqualified free call: exact name match
        })
        .collect()
}

/// Does a call to `name` inside `fn_idx` return a tainted value?
/// Resolved through the per-call *trusted* targets of same-named call
/// sites in that function (tighter than a global name match).
fn ret_tainted_call(graph: &Graph, fn_idx: usize, name: &str, st: &TaintState) -> Option<String> {
    for (c_idx, call) in graph.fns[fn_idx].calls.iter().enumerate() {
        if call.name != name {
            continue;
        }
        for t in trusted_targets(graph, fn_idx, c_idx) {
            if let Some(p) = st.ret.get(&t) {
                return Some(p.clone());
            }
        }
    }
    None
}

/// Flow-insensitive local taint: bound names → provenance.
fn local_taint(
    graph: &Graph,
    fn_idx: usize,
    st: &TaintState,
    sanitizers: &BTreeSet<&str>,
) -> BTreeMap<String, String> {
    let f = &graph.fns[fn_idx];
    let mut names: BTreeMap<String, String> = BTreeMap::new();
    for (p_idx, p) in f.params.iter().enumerate() {
        if p.ty.iter().any(|t| WIRE_TYPES.contains(&t.as_str())) {
            names.insert(
                p.name.clone(),
                format!("wire-typed param `{}` of `{}`", p.name, f.qual_name()),
            );
        } else if let Some(prov) = st.param.get(&(fn_idx, p_idx)) {
            names.insert(p.name.clone(), prov.clone());
        }
    }
    // Bind fixpoint (binds can forward-reference under flow
    // insensitivity; the loop is bounded by the bind count).
    loop {
        let mut changed = false;
        for b in &f.binds {
            if b.lhs.iter().all(|n| names.contains_key(n)) {
                continue;
            }
            if b.rhs_calls.iter().any(|c| sanitizers.contains(c.as_str())) {
                continue;
            }
            let via_ident = b.rhs_idents.iter().find_map(|n| names.get(n).cloned());
            let prov = via_ident.or_else(|| {
                b.rhs_calls
                    .iter()
                    .find_map(|c| ret_tainted_call(graph, fn_idx, c, st))
            });
            if let Some(p) = prov {
                for n in &b.lhs {
                    if !names.contains_key(n) {
                        names.insert(n.clone(), p.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    names
}

/// Taint provenance of one call argument, if any.
fn arg_taint(
    graph: &Graph,
    fn_idx: usize,
    arg: &crate::callgraph::ArgInfo,
    local: &BTreeMap<String, String>,
    st: &TaintState,
    sanitizers: &BTreeSet<&str>,
) -> Option<String> {
    arg_taint_named(graph, fn_idx, arg, local, st, sanitizers).map(|(_, p)| p)
}

/// Like [`arg_taint`], also naming the tainted identifier (for stable,
/// line-free finding details).
fn arg_taint_named(
    graph: &Graph,
    fn_idx: usize,
    arg: &crate::callgraph::ArgInfo,
    local: &BTreeMap<String, String>,
    st: &TaintState,
    sanitizers: &BTreeSet<&str>,
) -> Option<(String, String)> {
    if arg.calls.iter().any(|c| sanitizers.contains(c.as_str())) {
        return None; // sanitized at the use site
    }
    for n in &arg.idents {
        if let Some(p) = local.get(n) {
            return Some((n.clone(), p.clone()));
        }
    }
    for c in &arg.calls {
        if let Some(p) = ret_tainted_call(graph, fn_idx, c, st) {
            return Some((format!("{c}(…)"), p));
        }
    }
    None
}

// ---------------------------------------------------------------------
// hot-path-scan
// ---------------------------------------------------------------------

fn hot_path_scan(graph: &Graph, ctx: &Ctx, out: &mut Vec<Finding>) {
    let mut roots = Vec::new();
    for (ty, name) in crate::semantic::HOT_ROOTS {
        roots.extend(
            graph
                .find_methods(ty, name)
                .into_iter()
                .filter(|&i| !graph.fns[i].is_test),
        );
    }
    let parent = graph.reach_forward(&roots);
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test
            || parent[i].is_none()
            || f.iter_sites.is_empty()
            || ctx.sig_allowed(&f.file, f.line, "hot-path-scan")
        {
            continue;
        }
        let chain = graph.chain_to(&parent, i).join(" -> ");
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for site in &f.iter_sites {
            // Only collection-typed fields of this function's own type
            // count — iterating an Option or a fixed array is not a
            // full-collection scan.
            let Some(fd) = graph.fields.iter().find(|fd| {
                fd.name == site.field
                    && Some(fd.owner.as_str()) == f.self_ty.as_deref()
                    && fd.crate_name == f.crate_name
            }) else {
                continue;
            };
            if ctx.decl_has(&fd.file, fd.line, "lint:bounded")
                || ctx.allowed(&f.file, site.line, "hot-path-scan")
                || ctx.sig_allowed(&fd.file, fd.line, "hot-path-scan")
            {
                continue;
            }
            let detail = format!("scan {}.{} ({})", fd.owner, site.field, site.how);
            if !seen.insert(detail.clone()) {
                continue;
            }
            out.push(Finding {
                rule: "hot-path-scan",
                file: f.file.clone(),
                line: site.line,
                function: f.qual_name(),
                detail,
                message: format!(
                    "O(n) scan of {} field `{}.{}` via `{}` on the event hot path ({chain}); index the access, or mark the field `lint:bounded: <why size is constant>`",
                    fd.collection, fd.owner, site.field, site.how,
                ),
                is_new: false,
            });
        }
    }
}

// ---------------------------------------------------------------------
// read-path-purity
// ---------------------------------------------------------------------

fn read_path_purity(graph: &Graph, ctx: &Ctx, out: &mut Vec<Finding>) {
    for (root, rf) in graph.fns.iter().enumerate() {
        let is_root = rf.is_pub
            && !rf.is_test
            && rf.self_param == SelfParam::Ref
            && rf
                .self_ty
                .as_deref()
                .is_some_and(|t| QUERY_TYPES.contains(&t));
        if !is_root || ctx.sig_allowed(&rf.file, rf.line, "read-path-purity") {
            continue;
        }
        // Restricted reachability: follow only self-rooted calls
        // (`self.….m(…)`, `Self::m(…)`) — the paths that can touch the
        // state this query reads.  Name-collision edges to unrelated
        // types are pruned by the receiver-root requirement.
        let mut visited: Vec<usize> = vec![root];
        let mut how: BTreeMap<usize, usize> = BTreeMap::new(); // fn -> caller
        let mut head = 0;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        while head < visited.len() {
            let u = visited[head];
            head += 1;
            let uf = &graph.fns[u];
            for (c_idx, call) in uf.calls.iter().enumerate() {
                let self_rooted = call.recv_root.as_deref() == Some("self")
                    || call.qualifier.as_deref() == Some("Self");
                if !self_rooted {
                    continue;
                }
                for &t in &graph.call_targets[u][c_idx] {
                    let tf = &graph.fns[t];
                    if tf.is_test {
                        continue;
                    }
                    if tf.self_param == SelfParam::RefMut {
                        if ctx.allowed(&uf.file, call.line, "read-path-purity")
                            || ctx.sig_allowed(&tf.file, tf.line, "read-path-purity")
                        {
                            continue;
                        }
                        let detail = format!("calls-mut {}", tf.qual_name());
                        if seen.insert(detail.clone()) {
                            out.push(Finding {
                                rule: "read-path-purity",
                                file: rf.file.clone(),
                                line: call.line,
                                function: rf.qual_name(),
                                detail,
                                message: format!(
                                    "query root `{}` reaches `&mut self` method `{}` (called at {}:{}); the lock-free read path requires write-free queries — split the method or justify with `lint:allow(read-path-purity): <reason>`",
                                    rf.qual_name(),
                                    tf.qual_name(),
                                    uf.file,
                                    call.line,
                                ),
                                is_new: false,
                            });
                        }
                        continue; // flagged; no need to descend
                    }
                    if !visited.contains(&t) {
                        visited.push(t);
                        how.insert(t, u);
                    }
                }
            }
        }
        for &v in &visited {
            let vf = &graph.fns[v];
            if ctx.sig_allowed(&vf.file, vf.line, "read-path-purity") {
                continue;
            }
            for op in &vf.field_ops {
                if !MUTATING_OPS.contains(&op.op.as_str())
                    || ctx.allowed(&vf.file, op.line, "read-path-purity")
                {
                    continue;
                }
                let detail = format!("writes {} in {}", op.field, vf.qual_name());
                if seen.insert(detail.clone()) {
                    out.push(Finding {
                        rule: "read-path-purity",
                        file: rf.file.clone(),
                        line: op.line,
                        function: rf.qual_name(),
                        detail,
                        message: format!(
                            "query root `{}` reaches a write to `self.{}` (`{}` in `{}`, {}:{}); queries must be write-free for the snapshot-reader discipline",
                            rf.qual_name(),
                            op.field,
                            op.op,
                            vf.qual_name(),
                            vf.file,
                            op.line,
                        ),
                        is_new: false,
                    });
                }
            }
            for im in &vf.interior_mut {
                if ctx.allowed(&vf.file, im.line, "read-path-purity") {
                    continue;
                }
                let detail = format!("interior-mut {} in {}", im.what, vf.qual_name());
                if seen.insert(detail.clone()) {
                    out.push(Finding {
                        rule: "read-path-purity",
                        file: rf.file.clone(),
                        line: im.line,
                        function: rf.qual_name(),
                        detail,
                        message: format!(
                            "query root `{}` performs interior mutation `{}` (in `{}`, {}:{}); hidden writes defeat the write-free read path — move the mutation or justify with `lint:allow(read-path-purity): <reason>`",
                            rf.qual_name(),
                            im.what,
                            vf.qual_name(),
                            vf.file,
                            im.line,
                        ),
                        is_new: false,
                    });
                }
            }
        }
        let _ = how;
    }
}

// ---------------------------------------------------------------------
// Seeded-mutant fixtures: each analysis fires on a planted violation
// and stays quiet on the sanitized/bounded/pure twin.
// ---------------------------------------------------------------------
#[cfg(test)]
mod tests {
    use crate::callgraph;
    use crate::semantic::{analyze, Finding, Report};

    const TAINT_MUTANT: &str = include_str!("../fixtures/semantic/taint_mutant.rs");
    const HOT_SCAN_MUTANT: &str = include_str!("../fixtures/semantic/hot_scan_mutant.rs");
    const PURITY_MUTANT: &str = include_str!("../fixtures/semantic/purity_mutant.rs");
    const DATAFLOW_CLEAN: &str = include_str!("../fixtures/semantic/dataflow_clean.rs");

    /// A minimal allocation-range sink crate for the taint fixtures.
    const CORE_SINK: &str = "pub struct StaticIpr;\nimpl StaticIpr {\n    pub fn band_range(&self, band: u32, size: u32) -> u32 { band + size }\n}\n";

    fn run(files: &[(&str, &str)]) -> Report {
        let files: Vec<callgraph::SourceFile> = files
            .iter()
            .map(|(rel, src)| callgraph::SourceFile {
                rel: (*rel).to_string(),
                source: (*src).to_string(),
            })
            .collect();
        analyze(&files, None)
    }

    fn rule<'a>(r: &'a Report, name: &str) -> Vec<&'a Finding> {
        r.findings.iter().filter(|f| f.rule == name).collect()
    }

    #[test]
    fn taint_mutant_fires_on_all_three_sinks() {
        let r = run(&[
            ("crates/sap/src/taint_mutant.rs", TAINT_MUTANT),
            ("crates/core/src/static_ipr.rs", CORE_SINK),
        ]);
        let hits = rule(&r, "wire-taint");
        assert!(
            hits.iter()
                .any(|f| f.detail.starts_with("schedule deadline") && f.message.contains("wire")),
            "{:?}",
            r.findings
        );
        assert!(
            hits.iter()
                .any(|f| f.detail.starts_with("alloc-range StaticIpr::band_range")),
            "{:?}",
            r.findings
        );
        assert!(
            hits.iter().any(|f| f.detail.starts_with("insert seen")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn taint_flows_interprocedurally_with_chain() {
        // on_packet -> helper(pkt-derived) -> schedule: the finding sits
        // in the helper and the provenance names the wire-typed param.
        let r = run(&[("crates/sap/src/taint_mutant.rs", TAINT_MUTANT)]);
        let hits = rule(&r, "wire-taint");
        assert!(
            hits.iter().any(|f| {
                f.function == "SessionDirectory::arm_timer"
                    && f.message.contains("wire-typed param `pkt`")
            }),
            "{:?}",
            hits
        );
    }

    #[test]
    fn hot_scan_mutant_fires_under_root() {
        let r = run(&[("crates/sap/src/hot_scan_mutant.rs", HOT_SCAN_MUTANT)]);
        let hits = rule(&r, "hot-path-scan");
        assert!(
            hits.iter().any(|f| {
                f.function == "SessionDirectory::on_timer"
                    && f.detail == "scan SessionDirectory.sessions (values)"
            }),
            "{:?}",
            r.findings
        );
        // The same scan shape in a cold function stays unflagged.
        assert!(
            !hits.iter().any(|f| f.function.contains("cold_report")),
            "{:?}",
            hits
        );
    }

    #[test]
    fn purity_mutant_fires_on_all_three_impurities() {
        let r = run(&[("crates/sap/src/purity_mutant.rs", PURITY_MUTANT)]);
        let hits = rule(&r, "read-path-purity");
        assert!(
            hits.iter()
                .any(|f| f.detail.starts_with("interior-mut fetch_add")),
            "{:?}",
            r.findings
        );
        assert!(
            hits.iter()
                .any(|f| f.detail.starts_with("calls-mut AnnouncementCache::refresh")),
            "{:?}",
            r.findings
        );
        assert!(
            hits.iter().any(|f| f.detail.starts_with("writes order")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn dataflow_clean_fixture_is_quiet() {
        let r = run(&[
            ("crates/sap/src/dataflow_clean.rs", DATAFLOW_CLEAN),
            ("crates/core/src/static_ipr.rs", CORE_SINK),
        ]);
        let noisy: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| matches!(f.rule, "wire-taint" | "hot-path-scan" | "read-path-purity"))
            .collect();
        assert!(noisy.is_empty(), "{noisy:?}");
    }

    #[test]
    fn sanitizer_must_carry_a_reason() {
        // A bare `lint:sanitizer(wire-taint)` without a reason does not
        // register, so the taint survives.
        let src = "pub struct SapPacket { pub interval: u64 }\n\
                   pub struct TimerQueue;\n\
                   impl TimerQueue { pub fn schedule(&mut self, due: u64, key: u32) {} }\n\
                   pub struct SessionDirectory { timers: TimerQueue }\n\
                   impl SessionDirectory {\n\
                       pub fn on_packet(&mut self, pkt: &SapPacket) {\n\
                           let due = cap(pkt.interval);\n\
                           self.timers.schedule(due, 1);\n\
                       }\n\
                   }\n\
                   // lint:sanitizer(wire-taint)\n\
                   fn cap(v: u64) -> u64 { v }\n";
        let r = run(&[("crates/sap/src/m.rs", src)]);
        assert!(
            r.findings.iter().any(|f| f.rule == "wire-taint"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn allow_markers_suppress_each_rule() {
        let src = "pub struct SapPacket { pub interval: u64 }\n\
                   pub struct TimerQueue;\n\
                   impl TimerQueue { pub fn schedule(&mut self, due: u64, key: u32) {} }\n\
                   pub struct SessionDirectory { timers: TimerQueue }\n\
                   impl SessionDirectory {\n\
                       pub fn on_packet(&mut self, pkt: &SapPacket) {\n\
                           let due = pkt.interval;\n\
                           self.timers.schedule(due, 1); // lint:allow(wire-taint): fixture — deadline clamped upstream\n\
                       }\n\
                   }\n";
        let r = run(&[("crates/sap/src/m.rs", src)]);
        assert!(
            !r.findings.iter().any(|f| f.rule == "wire-taint"),
            "{:?}",
            r.findings
        );
    }
}
