//! Seeded mutant for the wire-taint analysis: wire-derived values
//! reach all three sink kinds (timer deadline, allocation-range
//! arithmetic, cache-growth insert) without passing a sanitizer.
//! `cargo xtask check --semantic` must flag every one.
use std::collections::HashMap;

pub struct SapPacket {
    pub interval: u64,
}

pub struct TimerQueue;

impl TimerQueue {
    pub fn schedule(&mut self, due: u64, key: u32) {}
}

pub struct StaticIpr;

pub struct SessionDirectory {
    timers: TimerQueue,
    seen: HashMap<u64, u32>,
}

impl SessionDirectory {
    /// Sink 1: the deadline fed to `TimerQueue::schedule` is raw wire
    /// data — an attacker-chosen interval drives the event loop.
    pub fn on_packet(&mut self, pkt: &SapPacket) {
        let due = pkt.interval + 5;
        self.timers.schedule(due, 1);
        let h = pkt.interval;
        self.arm_timer(h);
    }

    /// Interprocedural leg: the tainted argument flows in from
    /// `on_packet`, and the sink fires *here* with the full chain.
    fn arm_timer(&mut self, due_raw: u64) {
        self.timers.schedule(due_raw, 2);
    }

    /// Sink 2: allocation-range arithmetic sized by a wire value.
    pub fn pick_range(&mut self, pkt: &SapPacket, ipr: &StaticIpr) -> u32 {
        let want = pkt.interval as u32;
        ipr.band_range(0, want)
    }

    /// Sink 3: cache growth keyed by an unvalidated wire value.
    pub fn remember(&mut self, pkt: &SapPacket) {
        let key = pkt.interval;
        self.seen.insert(key, 1);
    }
}
