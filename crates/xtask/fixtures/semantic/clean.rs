//! Clean control for the seeded-mutant corpus: checked access
//! everywhere (`first()/get()` + `unwrap_or`), a bounded collection
//! with an explicit evict side, and no allocation below any hot root.
//! All three analyses must report nothing here.
//!
//! Not compiled into any crate — analyzed as text by the self-tests in
//! `crates/xtask/src/semantic.rs`.

pub struct Window {
    seen: Vec<u64>,
    cap: usize,
}

impl Window {
    pub fn observe(&mut self, v: u64) {
        self.seen.push(v);
        if self.seen.len() > self.cap {
            self.seen.remove(0);
        }
    }

    pub fn head(&self) -> Option<u64> {
        self.seen.first().copied()
    }
}

pub fn pick(v: &[u8], i: usize) -> u8 {
    v.get(i).copied().unwrap_or(0)
}
