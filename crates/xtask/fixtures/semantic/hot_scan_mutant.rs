//! Seeded mutant for the hot-path-scan analysis: a full `.values()`
//! scan of an unbounded session map inside a hot root.  The identical
//! scan in a cold reporting function must stay unflagged.
use std::collections::HashMap;

pub struct SessionDirectory {
    sessions: HashMap<u64, u64>,
}

impl SessionDirectory {
    /// Hot root: O(n) over every cached session per timer tick — the
    /// exact pattern the 1M-session arc forbids.
    pub fn on_timer(&mut self) -> usize {
        self.sessions.values().count()
    }

    pub fn on_packet(&mut self) {}

    pub fn next_deadline(&self) -> u64 {
        0
    }

    /// Cold: the same scan off the hot path is acceptable.
    pub fn cold_report(&self) -> usize {
        self.sessions.values().count()
    }
}
