//! Seeded mutant with a JUSTIFIED suppression: the planted `.unwrap()`
//! carries a `lint:allow(panic-reach): <reason>` marker, so both the
//! direct finding and the transitive classification of `bootstrap`
//! must stay quiet.  (A bare marker without the reason would NOT
//! suppress — see `bare_allow_does_not_suppress` in semantic.rs.)
//!
//! Not compiled into any crate — analyzed as text by the self-tests in
//! `crates/xtask/src/semantic.rs`.

pub fn bootstrap(config: Option<u32>) -> u32 {
    // A missing config here is a deployment error, not runtime input.
    config.unwrap() // lint:allow(panic-reach): startup-only config load, validated before the daemon serves
}
