//! Clean twin of the dataflow mutants: the same shapes, made
//! legitimate — a registered sanitizer between wire and sink, bound
//! evidence on the iterated field, and a genuinely write-free query.
//! All three dataflow analyses must stay silent here.

pub struct SapPacket {
    pub interval: u64,
}

pub struct TimerQueue;

impl TimerQueue {
    pub fn schedule(&mut self, due: u64, key: u32) {}
}

pub struct SessionDirectory {
    timers: TimerQueue,
    // lint:bounded: one slot per scope tier; the tier set is a compile-time constant
    tiers: Vec<u64>,
}

impl SessionDirectory {
    /// The wire interval passes through the registered sanitizer
    /// before it becomes a deadline: no taint reaches the sink.
    pub fn on_packet(&mut self, pkt: &SapPacket) {
        let due = clamp_interval(pkt.interval);
        self.timers.schedule(due, 1);
    }

    /// Iterating a bounded field on the hot path is fine.
    pub fn on_timer(&mut self) -> u64 {
        let mut sum = 0;
        for t in &self.tiers {
            sum += t;
        }
        sum
    }

    /// Pure query root: reads only.
    pub fn next_deadline(&self) -> u64 {
        self.tiers.len() as u64
    }
}

/// Clamps a wire-derived announce interval into the protocol band.
// lint:sanitizer(wire-taint): caps the wire interval into [5, 600] before it can drive the timer wheel
fn clamp_interval(raw: u64) -> u64 {
    raw.clamp(5, 600)
}
