//! Seeded mutant: `pending` is pushed to but never popped, drained or
//! reassigned anywhere on its owner — an unbounded leak in a
//! long-running daemon.  `done` has a `retain` evict side and must NOT
//! be flagged; the pair proves the `unbounded-growth` analysis
//! distinguishes insert-only fields from properly bounded ones.
//!
//! Not compiled into any crate — analyzed as text by the self-tests in
//! `crates/xtask/src/semantic.rs`.

pub struct PendingTable {
    pending: Vec<u64>,
    done: Vec<u64>,
}

impl PendingTable {
    pub fn note(&mut self, id: u64) {
        self.pending.push(id);
    }

    pub fn finish(&mut self, id: u64) {
        self.done.push(id);
        self.done.retain(|&d| d != id);
    }
}
