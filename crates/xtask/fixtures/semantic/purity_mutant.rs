//! Seeded mutant for the read-path-purity analysis: three `&self` pub
//! query roots on `AnnouncementCache`, each impure a different way —
//! interior mutability, a reachable `&mut self` method, and a field
//! write through a self-rooted helper.  (The helper shapes are what the
//! analysis must catch *statically*; rustc would reject some of them,
//! which is exactly why the lint exists to keep them out.)
use std::sync::atomic::{AtomicU64, Ordering};

pub struct AnnouncementCache {
    hits: AtomicU64,
    order: Vec<u64>,
    entries: Vec<u64>,
}

impl AnnouncementCache {
    /// Impure query 1: interior mutation hidden behind `&self`.
    pub fn users_of(&self) -> usize {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.entries.len()
    }

    /// Impure query 2: reaches a `&mut self` method.
    pub fn visible_sessions(&self) -> usize {
        self.refresh();
        self.entries.len()
    }

    fn refresh(&mut self) {
        self.order.push(1);
    }

    /// Impure query 3: a self-rooted helper writes a field.
    pub fn group_in_use(&self) -> bool {
        self.reorder();
        true
    }

    fn reorder(&self) {
        self.order.sort();
    }
}
