//! Seeded mutant: a public API function that reaches a panic only
//! through a private helper.  The old lexical `panic-path` rule would
//! flag the helper's `.unwrap()` token; the semantic `panic-reach`
//! analysis must ALSO classify `acquire` as transitively panicking and
//! report the `acquire -> resolve_slot` chain.
//!
//! Not compiled into any crate — analyzed as text by the self-tests in
//! `crates/xtask/src/semantic.rs`.

pub struct Lease {
    slot: Option<u32>,
}

pub fn acquire(l: &Lease) -> u32 {
    resolve_slot(l)
}

fn resolve_slot(l: &Lease) -> u32 {
    l.slot.unwrap()
}
