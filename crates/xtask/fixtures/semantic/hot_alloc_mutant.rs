//! Seeded mutant: an allocation (`format!`) hidden one call below
//! `SessionDirectory::on_packet`.  The `hot-alloc` analysis must walk
//! the call graph from the hot-path roots and flag
//! `SessionDirectory::record` with the `on_packet -> record` chain.
//!
//! All nine hot-path roots are present so the self-test also proves the
//! root-discovery logic finds them (a missing root is a gate failure).
//!
//! Not compiled into any crate — analyzed as text by the self-tests in
//! `crates/xtask/src/semantic.rs`.

pub struct SessionDirectory {
    last: u64,
}

impl SessionDirectory {
    pub fn on_packet(&mut self, now: u64) {
        self.record(now);
    }

    pub fn on_timer(&mut self, now: u64) {
        self.last = now;
    }

    pub fn next_deadline(&self) -> u64 {
        self.last
    }

    fn record(&mut self, now: u64) {
        let tag = format!("pkt@{now}");
        let _ = tag;
        self.last = now;
    }
}

pub struct AnnouncementCache {
    high_water: u64,
}

impl AnnouncementCache {
    pub fn purge_expired(&mut self, now: u64) {
        self.high_water = now;
    }

    pub fn purge_stale(&mut self, now: u64) {
        self.high_water = now;
    }

    pub fn observe_announce_ref(&mut self, now: u64) {
        self.high_water = now;
    }
}

pub struct SapPacket;

impl SapPacket {
    pub fn decode(data: &[u8]) -> Option<SapPacket> {
        if data.is_empty() {
            return None;
        }
        Some(SapPacket)
    }
}

pub struct SapFrame;

impl SapFrame {
    pub fn decode(data: &[u8]) -> Option<SapFrame> {
        if data.is_empty() {
            return None;
        }
        Some(SapFrame)
    }
}

pub struct DescRef;

impl DescRef {
    pub fn parse(data: &[u8]) -> Option<DescRef> {
        if data.is_empty() {
            return None;
        }
        Some(DescRef)
    }
}
