//! `experiments report` — fold the telemetry sidecars under
//! `results_full/` into one markdown report.
//!
//! Inputs (all produced by other targets of the same binary or by the
//! bench harness):
//!
//! * `TELEMETRY_chaos.json` — per-node directory/clash metric snapshots
//!   from the instrumented chaos partition-heal run (`experiments
//!   chaos`); feeds the clash-count table and the defence-latency
//!   histogram.
//! * `TELEMETRY_rr.json` — suppression metrics from a deterministic
//!   request–response run.  Regenerated in place when missing, so
//!   `experiments report` works standalone; the observed response
//!   counts are set against the paper's Equation 2–4 predictions.
//! * `BENCH_scale.json` — the cache benchmark's legacy-vs-indexed
//!   timings (`directory_scale`, full mode).
//!
//! The parsing layer is a deliberately small hand-rolled scanner over
//! the known emitter formats (flat `"key": value` pairs, `[u64, ...]`
//! arrays, one level of histogram objects) — the workspace takes no
//! JSON dependency for this.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use sdalloc_rr::analytic::{
    buckets, expected_responses_exponential, expected_responses_naive, expected_responses_uniform,
};
use sdalloc_rr::sim::{DelayDist, Population, RrParams, RrSim, TreeMode};
use sdalloc_sim::{SimDuration, SimRng};
use sdalloc_topology::doar::{generate as doar_generate, DoarParams};
use sdalloc_topology::NodeId;

// ---------------------------------------------------------------------
// Mini JSON scanners (format-specific, not a general parser).
// ---------------------------------------------------------------------

/// The top-level `{...}` object spans inside `s`, by brace depth.
/// String escapes don't matter for our emitters (keys and values never
/// contain braces or quotes beyond the reason field, which replaces
/// `"` with `'`).
fn split_objects(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'{' if !in_str => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' if !in_str => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&s[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// The first `"key": <integer>` value in `obj`.
fn field_i64(obj: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    field_i64(obj, key).and_then(|v| u64::try_from(v).ok())
}

/// The first `"key": [u64, ...]` array in `obj`.
fn field_array(obj: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\": [");
    let at = obj.find(&pat)? + pat.len();
    let end = obj[at..].find(']')? + at;
    let body = &obj[at..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// A histogram snapshot as the metrics registry renders it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HistSnapshot {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

/// The `"name": {"bounds": [...], "buckets": [...], ...}` histogram.
fn field_hist(obj: &str, name: &str) -> Option<HistSnapshot> {
    let pat = format!("\"{name}\": {{");
    let at = obj.find(&pat)? + pat.len();
    let end = obj[at..].find('}')? + at;
    let body = &obj[at..end];
    Some(HistSnapshot {
        bounds: field_array(body, "bounds")?,
        buckets: field_array(body, "buckets")?,
        count: field_u64(body, "count")?,
        sum: field_u64(body, "sum")?,
    })
}

// ---------------------------------------------------------------------
// RR telemetry generation (when the sidecar is missing).
// ---------------------------------------------------------------------

/// Parameters baked into the generated `TELEMETRY_rr.json`, echoed in
/// its `meta` block so the report's Eq 2–4 comparison is self-describing.
const RR_SITES: usize = 200;
const RR_D2_MS: u64 = 800;
const RR_RTT_MS: u64 = 200;
const RR_REPEATS: usize = 64;

/// Run the deterministic request–response exchange matrix and render
/// the telemetry sidecar (meta block + the harness's metric snapshot).
pub fn generate_rr_telemetry(seed: u64) -> String {
    let topo = doar_generate(&DoarParams::new(RR_SITES, seed));
    let mut sim = RrSim::new(&topo);
    let params = RrParams {
        tree: TreeMode::SourceTrees,
        dist: DelayDist::Uniform,
        d1: SimDuration::ZERO,
        d2: SimDuration::from_millis(RR_D2_MS),
        rtt: SimDuration::from_millis(RR_RTT_MS),
        jitter_per_hop: None,
        population: Population::All,
    };
    let mut rng = SimRng::new(seed);
    for _ in 0..RR_REPEATS {
        let requester = NodeId(rng.below(RR_SITES as u64) as u32);
        sim.run_once(&params, requester, &mut rng);
    }
    let mut s = String::from("{\n");
    let _ = write!(
        s,
        "\"meta\": {{\"sites\": {RR_SITES}, \"d2_ms\": {RR_D2_MS}, \"rtt_ms\": {RR_RTT_MS}, \"repeats\": {RR_REPEATS}, \"seed\": {seed}}},\n\"telemetry\": "
    );
    s.push_str(sim.telemetry().snapshot_json().trim_end());
    s.push_str("\n}\n");
    s
}

// ---------------------------------------------------------------------
// Report assembly.
// ---------------------------------------------------------------------

fn chaos_section(out: &mut String, dir: &Path) {
    out.push_str("## Clash activity (TELEMETRY_chaos.json)\n\n");
    let path = dir.join("TELEMETRY_chaos.json");
    let Ok(json) = fs::read_to_string(&path) else {
        let _ = writeln!(
            out,
            "_missing: {} — run `experiments chaos` first._\n",
            path.display()
        );
        return;
    };
    let nodes = split_objects(&json);
    out.push_str("Per-node counters from the instrumented partition-heal run:\n\n");
    out.push_str(
        "| node | created | moved | defend_own | modify_own | 3rd-party armed | 3rd-party fired | announces sent |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    let keys = [
        "dir.sessions_created",
        "dir.moved",
        "clash.defend_own",
        "clash.modify_own",
        "clash.third_party_armed",
        "clash.third_party_fired",
        "announce.sent",
    ];
    let mut merged: Option<HistSnapshot> = None;
    for obj in &nodes {
        let node = field_u64(obj, "node").unwrap_or(0);
        let _ = write!(out, "| {node} |");
        for k in keys {
            let _ = write!(out, " {} |", field_u64(obj, k).unwrap_or(0));
        }
        out.push('\n');
        if let Some(h) = field_hist(obj, "clash.defence_delay_ms") {
            merged = Some(match merged.take() {
                None => h,
                Some(mut m) => {
                    for (b, v) in m.buckets.iter_mut().zip(&h.buckets) {
                        *b += v;
                    }
                    m.count += h.count;
                    m.sum += h.sum;
                    m
                }
            });
        }
    }
    out.push('\n');
    if let Some(h) = merged {
        out.push_str("Defence-delay histogram (`clash.defence_delay_ms`, all nodes):\n\n");
        out.push_str("| bucket (ms) | count |\n|---|---|\n");
        for (i, count) in h.buckets.iter().enumerate() {
            let label = match (i.checked_sub(1).map(|p| h.bounds.get(p)), h.bounds.get(i)) {
                (_, Some(hi)) => format!("<= {hi}"),
                _ => format!("> {}", h.bounds.last().copied().unwrap_or(0)),
            };
            let _ = writeln!(out, "| {label} | {count} |");
        }
        let mean = if h.count > 0 {
            h.sum as f64 / h.count as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "\nobservations: {}, mean {:.1} ms\n", h.count, mean);
    }
}

fn rr_section(out: &mut String, dir: &Path, seed: u64) {
    out.push_str("## Request–response suppression (TELEMETRY_rr.json)\n\n");
    let path = dir.join("TELEMETRY_rr.json");
    let json = match fs::read_to_string(&path) {
        Ok(j) => j,
        Err(_) => {
            let j = generate_rr_telemetry(seed);
            if fs::create_dir_all(dir)
                .and_then(|()| fs::write(&path, j.as_bytes()))
                .is_ok()
            {
                let _ = writeln!(out, "_generated {} (was missing)._\n", path.display());
            }
            j
        }
    };
    let sites = field_u64(&json, "sites").unwrap_or(RR_SITES as u64);
    let d2_ms = field_u64(&json, "d2_ms").unwrap_or(RR_D2_MS);
    let rtt_ms = field_u64(&json, "rtt_ms").unwrap_or(RR_RTT_MS);
    let requests = field_u64(&json, "rr.requests").unwrap_or(0);
    let sent = field_u64(&json, "rr.responses_sent").unwrap_or(0);
    let suppressed = field_u64(&json, "rr.suppressed").unwrap_or(0);
    let _ = writeln!(
        out,
        "{sites} sites, uniform delay over D2 = {d2_ms} ms, RTT = {rtt_ms} ms.\n"
    );
    out.push_str("| metric | value |\n|---|---|\n");
    let _ = writeln!(out, "| requests | {requests} |");
    let _ = writeln!(out, "| responses sent | {sent} |");
    let _ = writeln!(out, "| responses suppressed | {suppressed} |");
    let observed = if requests > 0 {
        sent as f64 / requests as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "| mean responses / request | {observed:.3} |");
    if let Some(h) = field_hist(&json, "rr.first_response_ms") {
        let mean = if h.count > 0 {
            h.sum as f64 / h.count as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "| mean first-response latency | {mean:.0} ms |");
    }
    out.push('\n');

    // The paper's closed forms (Section 3, Equations 2–4): n responders
    // picking one of d = (D2 − D1)/RTT buckets.  The simulated protocol
    // also suppresses *within* a bucket along the routing tree, so the
    // observed mean should sit at or below every model line.
    let n = sites.saturating_sub(1).max(1);
    let d = buckets(d2_ms as f64, rtt_ms as f64);
    let uniform = expected_responses_uniform(n, d);
    let naive = expected_responses_naive(n, &vec![1.0; d as usize]);
    let exponential = expected_responses_exponential(n, d);
    out.push_str(&format!(
        "Upper-bound predictions for n = {n} responders, d = {d} buckets:\n\n"
    ));
    out.push_str("| model | E[responses] | observed / model |\n|---|---|---|\n");
    for (name, model) in [
        ("Eq 2 (uniform, closed form)", uniform),
        ("Eq 2 (uniform, naive sum)", naive),
        ("Eq 3–4 (exponential)", exponential),
    ] {
        let _ = writeln!(out, "| {name} | {model:.3} | {:.2} |", observed / model);
    }
    let _ = writeln!(
        out,
        "\nThe uniform bound ignores in-bucket suppression; the routed\nsimulation suppresses along the tree as well, so a ratio <= 1\nagainst Eq 2 is the expected outcome.\n"
    );
}

fn bench_section(out: &mut String, dir: &Path) {
    out.push_str("## Cache benchmark (BENCH_scale.json)\n\n");
    let path = dir.join("BENCH_scale.json");
    let Ok(json) = fs::read_to_string(&path) else {
        let _ = writeln!(
            out,
            "_missing: {} — run `directory_scale` (full mode) first._\n",
            path.display()
        );
        return;
    };
    out.push_str("| size | workload | legacy (ms) | indexed (ms) | speedup |\n");
    out.push_str("|---|---|---|---|---|\n");
    // The outer object contains one span per result row; skip any
    // object without a workload field (the wrapper itself).
    for obj in split_objects(&json) {
        for row in split_objects(&obj[1..obj.len().saturating_sub(1)]) {
            let Some(at) = row.find("\"workload\": \"") else {
                continue;
            };
            let rest = &row[at + "\"workload\": \"".len()..];
            let workload = rest.split('"').next().unwrap_or("?");
            let size = field_u64(row, "size").unwrap_or(0);
            let legacy = field_u64(row, "legacy_ns").unwrap_or(0);
            let indexed = field_u64(row, "indexed_ns").unwrap_or(0);
            let speedup = legacy as f64 / indexed.max(1) as f64;
            let _ = writeln!(
                out,
                "| {size} | {workload} | {:.3} | {:.3} | {speedup:.1}x |",
                legacy as f64 / 1e6,
                indexed as f64 / 1e6,
            );
        }
    }
    out.push('\n');
}

/// Build the full markdown report from the sidecars in `dir`,
/// generating `TELEMETRY_rr.json` there if missing.
pub fn generate(dir: &Path, seed: u64) -> String {
    let mut out = String::from(
        "# Telemetry report\n\nFolded from the deterministic telemetry sidecars by `experiments report`.\nSame seeds, same sidecars, byte-identical report.\n\n",
    );
    chaos_section(&mut out, dir);
    rr_section(&mut out, dir, seed);
    bench_section(&mut out, dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanners_read_the_emitter_formats() {
        let obj = r#"{"node": 3, "counters": {"a.b": 17, "c": -2},
            "histograms": {"h.ms": {"bounds": [10, 100], "buckets": [1, 2, 3], "count": 6, "sum": 450}}}"#;
        assert_eq!(field_u64(obj, "node"), Some(3));
        assert_eq!(field_u64(obj, "a.b"), Some(17));
        assert_eq!(field_i64(obj, "c"), Some(-2));
        assert_eq!(field_u64(obj, "missing"), None);
        let h = field_hist(obj, "h.ms").expect("histogram parses");
        assert_eq!(h.bounds, vec![10, 100]);
        assert_eq!(h.buckets, vec![1, 2, 3]);
        assert_eq!((h.count, h.sum), (6, 450));
    }

    #[test]
    fn split_objects_finds_top_level_spans() {
        let s = "[\n{\"a\": 1, \"inner\": {\"b\": 2}},\n{\"c\": 3}\n]";
        let objs = split_objects(s);
        assert_eq!(objs.len(), 2);
        assert!(objs[0].contains("\"a\": 1") && objs[0].contains("\"b\": 2"));
        assert!(objs[1].contains("\"c\": 3"));
    }

    #[test]
    fn rr_telemetry_is_deterministic_and_consistent() {
        let a = generate_rr_telemetry(1998);
        let b = generate_rr_telemetry(1998);
        assert_eq!(a, b);
        let requests = field_u64(&a, "rr.requests").expect("requests");
        assert_eq!(requests, RR_REPEATS as u64);
        let sent = field_u64(&a, "rr.responses_sent").expect("sent");
        let suppressed = field_u64(&a, "rr.suppressed").expect("suppressed");
        // Every member either responded or was suppressed, every round.
        assert_eq!(sent + suppressed, (RR_SITES as u64 - 1) * RR_REPEATS as u64);
    }

    #[test]
    fn report_renders_from_a_temp_dir() {
        let dir = std::env::temp_dir().join("sdalloc_report_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let md = generate(&dir, 1998);
        // chaos/bench sidecars are absent; rr was generated in place.
        assert!(md.contains("missing"), "{md}");
        assert!(dir.join("TELEMETRY_rr.json").exists());
        assert!(md.contains("Eq 2 (uniform, closed form)"), "{md}");
        assert!(md.contains("| requests | 64 |"), "{md}");
        // Observed suppression must undercut the uniform upper bound.
        let n = RR_SITES as u64 - 1;
        let d = buckets(RR_D2_MS as f64, RR_RTT_MS as f64);
        let json = fs::read_to_string(dir.join("TELEMETRY_rr.json")).expect("read");
        let observed = field_u64(&json, "rr.responses_sent").expect("sent") as f64
            / field_u64(&json, "rr.requests").expect("req") as f64;
        assert!(
            observed <= expected_responses_uniform(n, d) + 1e-9,
            "observed {observed} above the Eq 2 bound"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
