//! # sdalloc-experiments — the paper's evaluation, regenerated
//!
//! One runner per table and figure of the paper, built on the other
//! workspace crates:
//!
//! | Module | Figures |
//! |---|---|
//! | [`analytic_figs`] | 4 (birthday), 6 (Eq 1), 10 (hop counts + TTL table), 11 (partition map), §2.3 numbers |
//! | [`fill`], [`alloc_figs`] | 5 (fill until clash) |
//! | [`steady`], [`alloc_figs`] | 12, 13 (steady-state adaptive capacity) |
//! | [`rr_figs`] | 14, 15, 16, 18, 19 (request–response suppression) |
//! | [`ext_hier`] | extension E1: §4.1 flat vs hierarchical allocation |
//! | [`eq1_sim`] | Monte-Carlo validation of Equation 1 against the closed form |
//! | [`chaos`] | fault-injection scenario matrix: partition/heal, crash/restart, burst loss, storms, allocator exhaustion |
//! | [`telemetry_report`] | `experiments report`: folds the `TELEMETRY_*.json` / `BENCH_scale.json` sidecars into `REPORT.md` |
//!
//! The `experiments` binary prints each figure's series as aligned
//! tables and optionally CSV; `--quick` (default) uses reduced grids,
//! `--full` the paper-scale ones.

#![warn(missing_docs)]

pub mod alloc_figs;
pub mod analytic_figs;
pub mod chaos;
pub mod eq1_sim;
pub mod ext_hier;
pub mod fill;
pub mod report;
pub mod rr_figs;
pub mod steady;
pub mod telemetry_report;
pub mod world;
