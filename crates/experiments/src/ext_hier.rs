//! Extension experiment E1 (paper Section 4.1): flat vs hierarchical
//! allocation.
//!
//! The paper argues a flat announce/listen allocator cannot use large
//! address spaces effectively and sketches a two-level scheme: dynamic
//! per-locality prefixes at long timescales, flat allocation inside a
//! prefix, and *domain-wide* address-usage announcements ("the
//! lower-level scheme would only need to announce the addresses in use
//! within the local region … increasing the timeliness significantly").
//!
//! This experiment implements that comparison on the Mbone map with
//! countries as domains:
//!
//! * **flat** — one space, Deterministic Adaptive IPRMA, the usual
//!   scope-limited visibility (sessions whose announcements reach you);
//! * **hierarchical** — [`HierarchicalAllocator`] per country over a
//!   shared [`PrefixRegistry`]; the allocating site additionally sees
//!   every address in use in its own country (the region-scoped usage
//!   flood).
//!
//! Metric: sessions allocated before the first clash, sweeping the
//! space size.  The expectation (the paper's claim) is that the flat
//! scheme's yield grows sub-linearly while the hierarchical scheme
//! tracks the space size until prefix-level fragmentation bites.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sdalloc_core::{
    AdaptiveIpr, Addr, AddrSpace, Allocator, HierarchicalAllocator, PrefixRegistry, View,
    VisibleSession,
};
use sdalloc_sim::SimRng;
use sdalloc_topology::mbone::MboneMap;
use sdalloc_topology::workload::{random_scope, TtlDistribution};
use sdalloc_topology::{Scope, ScopeCache};

/// How a fill run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillEnd {
    /// The first address clash occurred.
    Clash,
    /// The allocator reported the space (or its prefixes) exhausted.
    Exhausted,
    /// The configured allocation cap was reached without either.
    Cap,
}

/// Result of one hierarchical fill run.
#[derive(Debug, Clone, Copy)]
pub struct HierFill {
    /// Clash-free allocations made.
    pub allocations: usize,
    /// Why the run stopped.
    pub ended: FillEnd,
}

/// Fill until the first clash (or exhaustion) using the hierarchical
/// scheme with per-country domains.
pub fn hier_fill_until_clash(
    map: &MboneMap,
    scopes: &mut ScopeCache,
    space_size: u32,
    dist: &TtlDistribution,
    rng: &mut SimRng,
    cap: usize,
) -> HierFill {
    let space = AddrSpace::abstract_space(space_size);
    let registry = Arc::new(Mutex::new(PrefixRegistry::new(space_size)));
    let mut allocators: HashMap<u16, HierarchicalAllocator> = HashMap::new();

    let mut sessions: Vec<(Scope, Addr)> = Vec::new();
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();

    for count in 0..cap {
        let scope = random_scope(scopes.topology(), dist, rng);
        let domain = map.node_country[scope.source.index()];
        let alloc = allocators
            .entry(domain)
            .or_insert_with(|| HierarchicalAllocator::new(Arc::clone(&registry), domain as u32));

        // View: everything whose announcement reaches this site, plus
        // the domain-wide usage flood (every session originated in the
        // same country, whatever its TTL).
        let mut view_data: Vec<VisibleSession> = Vec::new();
        for s in &sessions {
            let same_domain = map.node_country[s.0.source.index()] == domain;
            if same_domain || scopes.sees(scope.source, s.0) {
                view_data.push(VisibleSession::new(s.1, s.0.ttl));
            }
        }
        view_data.sort_unstable_by_key(|s| (s.addr, s.ttl));
        let view = View::new(&view_data);

        let Some(addr) = alloc.allocate(&space, scope.ttl, &view, rng) else {
            return HierFill {
                allocations: count,
                ended: FillEnd::Exhausted,
            };
        };
        // Clash check: same address, overlapping scopes.
        if let Some(users) = by_addr.get(&addr) {
            for &i in users {
                if scopes.zones_overlap(sessions[i].0, scope) {
                    return HierFill {
                        allocations: count,
                        ended: FillEnd::Clash,
                    };
                }
            }
        }
        by_addr.entry(addr).or_default().push(sessions.len());
        sessions.push((scope, addr));
    }
    HierFill {
        allocations: cap,
        ended: FillEnd::Cap,
    }
}

/// One comparison point.
#[derive(Debug, Clone)]
pub struct HierPoint {
    /// Scheme label.
    pub scheme: &'static str,
    /// Space size.
    pub space_size: u32,
    /// Mean clash-free allocations.
    pub mean_allocations: f64,
    /// Fraction of runs ending in a clash (vs exhaustion/cap).
    pub clash_fraction: f64,
}

/// Run the flat-vs-hierarchical sweep.
pub fn extension_hier(map: &MboneMap, sizes: &[u32], trials: usize, seed: u64) -> Vec<HierPoint> {
    let dist = TtlDistribution::ds4();
    let mut out = Vec::new();
    let mut scopes = ScopeCache::new(map.topo.clone());

    for &size in sizes {
        // Flat: AIPR-3 through the standard world harness.
        let mut world = crate::world::World::new(map.topo.clone(), AddrSpace::abstract_space(size));
        let flat_alg = AdaptiveIpr::aipr3();
        let mut flat_total = 0usize;
        let mut flat_clashes = 0usize;
        for t in 0..trials {
            let mut rng = SimRng::new(seed ^ (t as u64) << 8 ^ size as u64);
            let n = crate::fill::fill_until_clash(
                &mut world,
                &flat_alg,
                &dist,
                &mut rng,
                size as usize * 4,
            );
            flat_total += n;
            if n < size as usize * 4 {
                flat_clashes += 1;
            }
        }
        out.push(HierPoint {
            scheme: "flat AIPR-3",
            space_size: size,
            mean_allocations: flat_total as f64 / trials as f64,
            clash_fraction: flat_clashes as f64 / trials as f64,
        });

        // Hierarchical.
        let mut hier_total = 0usize;
        let mut hier_clashes = 0usize;
        for t in 0..trials {
            let mut rng = SimRng::new(seed ^ (t as u64) << 8 ^ size as u64 ^ 0xBEEF);
            let r =
                hier_fill_until_clash(map, &mut scopes, size, &dist, &mut rng, size as usize * 4);
            hier_total += r.allocations;
            if r.ended == FillEnd::Clash {
                hier_clashes += 1;
            }
        }
        out.push(HierPoint {
            scheme: "hierarchical",
            space_size: size,
            mean_allocations: hier_total as f64 / trials as f64,
            clash_fraction: hier_clashes as f64 / trials as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdalloc_topology::mbone::MboneParams;

    fn small_map() -> MboneMap {
        MboneMap::generate(&MboneParams {
            seed: 13,
            target_nodes: 200,
        })
    }

    #[test]
    fn hierarchical_never_clashes_under_full_domain_visibility() {
        // With instant announcements the hierarchical scheme's clash
        // classes are all eliminated: runs end by exhaustion or cap.
        let map = small_map();
        let mut scopes = ScopeCache::new(map.topo.clone());
        let dist = TtlDistribution::ds4();
        for t in 0..5 {
            let mut rng = SimRng::new(100 + t);
            let r = hier_fill_until_clash(&map, &mut scopes, 512, &dist, &mut rng, 2_000);
            assert_ne!(r.ended, FillEnd::Clash, "unexpected clash: {r:?}");
            assert!(r.allocations > 50, "too few allocations: {r:?}");
        }
    }

    #[test]
    fn hierarchical_beats_flat_on_large_spaces() {
        let map = small_map();
        let pts = extension_hier(&map, &[2_048], 3, 7);
        let flat = pts.iter().find(|p| p.scheme == "flat AIPR-3").unwrap();
        let hier = pts.iter().find(|p| p.scheme == "hierarchical").unwrap();
        assert!(
            hier.mean_allocations > flat.mean_allocations,
            "hier {} vs flat {}",
            hier.mean_allocations,
            flat.mean_allocations
        );
        assert_eq!(hier.clash_fraction, 0.0);
    }

    #[test]
    fn hierarchical_capacity_tracks_space() {
        let map = small_map();
        let mut scopes = ScopeCache::new(map.topo.clone());
        let dist = TtlDistribution::ds4();
        let mut rng = SimRng::new(5);
        let small = hier_fill_until_clash(&map, &mut scopes, 256, &dist, &mut rng, 10_000);
        let mut rng = SimRng::new(5);
        let large = hier_fill_until_clash(&map, &mut scopes, 1_024, &dist, &mut rng, 10_000);
        assert!(
            large.allocations as f64 > small.allocations as f64 * 2.0,
            "small {:?} large {:?}",
            small,
            large
        );
    }
}
